#ifndef UNILOG_BROKER_BROKER_H_
#define UNILOG_BROKER_BROKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "broker/partition_log.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::broker {

/// Producer acknowledgement levels, as in Kafka.
inline constexpr int kAcksNone = 0;    // fire-and-forget
inline constexpr int kAcksLeader = 1;  // leader append suffices
inline constexpr int kAcksAll = -1;    // every live assigned replica

struct BrokerOptions {
  int num_partitions = 4;
  int replication_factor = 2;
  int acks = kAcksLeader;

  /// acks=all produces are rejected (Unavailable) when fewer than this
  /// many assigned replicas (leader included) are alive to take the write
  /// — the zero-acknowledged-loss guarantee: an acked entry exists on
  /// min_insync_replicas copies before the producer dequeues it.
  int min_insync_replicas = 1;

  /// Bounded in-flight window: once a leader's retained (unconsumed) log
  /// for a partition reaches this many bytes, produces are throttled with
  /// Unavailable instead of dropping oldest. The daemon keeps the entries
  /// queued and backs off — backpressure, not silent loss.
  uint64_t partition_inflight_limit_bytes = 64ull * 1024 * 1024;

  /// Follower catch-up cadence. Below acks=all, replication is
  /// asynchronous: followers periodically fetch from their leader.
  TimeMs replica_fetch_interval_ms = 500;

  /// Sustained per-node produce service rate in bytes/sec (token bucket
  /// with one second of burst); 0 = unlimited. Models the NIC/disk bound
  /// the Kafka paper's sustained-rate benchmarks saturate.
  uint64_t node_service_bytes_per_sec = 0;
};

/// One entry of a produce request.
struct ProduceItem {
  uint64_t seq = 0;  // per-producer, assigned at Log() time, starts at 1
  TimeMs logged_at = 0;
  std::string payload;
};

struct ProduceAck {
  uint64_t accepted = 0;  // acknowledged for the first time by this call
  uint64_t deduped = 0;   // resends of already-acknowledged entries
};

/// A daemon-framed produce batch: `count` records with dense seqs
/// [first_seq, first_seq + count), framed into `body` (one frame per
/// record: varint logged_at, varint payload_len, payload) and compressed
/// once at the producer when `compressed`. The broker stores, replicates,
/// and serves the body opaquely; `record_sizes` carries the per-record
/// uncompressed payload sizes the broker needs for dedup trims and
/// uncompressed-byte accounting without ever touching the blob.
struct ProduceBatchRequest {
  uint64_t first_seq = 0;
  uint32_t count = 0;
  std::string body;
  bool compressed = true;
  std::vector<uint32_t> record_sizes;
};

/// FNV-1a. Partition assignment must be identical across runs and builds
/// (std::hash is not portable), so it is part of the deterministic
/// contract.
uint64_t StableHash(const std::string& s);

// zk layout, rooted per datacenter:
//   /broker/<dc>/brokers/<id>                      ephemeral, data=<id>
//   /broker/<dc>/topics/<category>                 data=<num_partitions>
//   /broker/<dc>/topics/<category>/<p>/candidates/m-<id>-<seq>
//                                 ephemeral-sequential, data=<log end offset>
//   /broker/<dc>/topics/<category>/<p>/state       data=<acked watermark>
//   /broker/<dc>/consumers/<group>/<category>-<p>  data=<committed offset>
std::string BrokerRootPath(const std::string& dc);
std::string BrokersPath(const std::string& dc);
std::string TopicsPath(const std::string& dc);
std::string PartitionPath(const std::string& dc, const std::string& category,
                          int partition);
std::string CandidatesPath(const std::string& dc, const std::string& category,
                           int partition);
std::string StatePath(const std::string& dc, const std::string& category,
                      int partition);
std::string ConsumersPath(const std::string& dc);
std::string OffsetPath(const std::string& dc, const std::string& group,
                       const std::string& category, int partition);

/// Election: reads the candidate znodes of (category, partition) and picks
/// the winner — highest replicated end offset (the candidate's data), ties
/// broken by lowest sequence suffix (earliest registration). Returns
/// NotFound when no candidates are registered.
Result<std::string> ElectLeader(const zk::ZooKeeper& zk, const std::string& dc,
                                const std::string& category, int partition);

/// Highest committed offset for (category, partition) across all consumer
/// groups; 0 when none.
uint64_t MaxCommittedOffset(const zk::ZooKeeper& zk, const std::string& dc,
                            const std::string& category, int partition);

struct BrokerNodeStats {
  uint64_t entries_produced = 0;   // acknowledged to producers
  uint64_t bytes_produced = 0;     // uncompressed payload bytes acked
  uint64_t wire_bytes_produced = 0;  // bytes as shipped (compressed if batched)
  uint64_t entries_duplicate = 0;  // dedup hits on (producer, seq)
  uint64_t entries_replicated = 0;
  uint64_t wire_bytes_replicated = 0;
  uint64_t replication_rounds = 0;  // group-commit rounds (leader side)
  uint64_t produce_calls = 0;       // successful Produce/ProduceBatch calls
  uint64_t entries_lost_failover = 0;
  uint64_t elections_won = 0;
  uint64_t throttled_backpressure = 0;
  uint64_t throttled_rate = 0;
  uint64_t insufficient_replicas = 0;
  uint64_t not_leader_rejects = 0;
  uint64_t log_entries = 0;  // retained, across led+followed partitions
  uint64_t log_bytes = 0;    // retained uncompressed payload bytes
  uint64_t retained_bytes_compressed = 0;    // retained blob bytes
  uint64_t retained_bytes_uncompressed = 0;  // == log_bytes
  uint64_t partitions_led = 0;
};

/// One broker process: hosts replicas of the partitions deterministically
/// assigned to it, campaigns for their leadership through zk
/// ephemeral-sequential candidate znodes, serves produces (with
/// idempotent dedup, ack levels, and backpressure) for partitions it
/// leads, and mirrors partitions it follows.
class BrokerNode {
 public:
  /// Looks up a peer broker by id; the fleet wires this to itself.
  using Resolver = std::function<BrokerNode*(const std::string& id)>;

  BrokerNode(Simulator* sim, zk::ZooKeeper* zk, std::string datacenter,
             std::string id, std::vector<std::string> fleet_ids,
             Resolver resolve, BrokerOptions options,
             obs::MetricsRegistry* metrics = nullptr);

  BrokerNode(const BrokerNode&) = delete;
  BrokerNode& operator=(const BrokerNode&) = delete;

  /// Deterministic replica assignment: `replication` distinct nodes from
  /// `fleet_ids`, rotated by StableHash(category) + partition so load
  /// spreads without coordination.
  static std::vector<std::string> AssignedReplicas(
      const std::vector<std::string>& fleet_ids, const std::string& category,
      int partition, int replication);

  /// Registers in zk and (re-)adopts every assigned replica of every
  /// existing topic. Idempotent; also used to restart after Crash().
  Status Start();

  /// Hard failure: session closed (ephemerals vanish, watches fire) and
  /// every in-memory log wiped. Unreplicated acked entries die here and
  /// are charged to `entries_lost_failover` by whoever wins the election.
  void Crash();

  /// zk session expiry without process death: the old session's ephemerals
  /// vanish mid-election, and the node re-registers under a new session
  /// with its logs intact.
  Status ExpireSession();

  bool alive() const { return alive_; }
  const std::string& id() const { return id_; }

  /// Hosts (category, partition) if assigned: registers a candidate znode
  /// and joins the election. Called by the fleet on topic creation and by
  /// Start() on re-adoption.
  Status AdoptReplica(const std::string& category, int partition);

  bool IsLeader(const std::string& category, int partition) const;

  /// Leader-only. Appends new (producer, seq) entries, dedups resends,
  /// applies the ack level, and reports acceptance. Unavailable =
  /// backpressure or not enough in-sync replicas (retry later, leadership
  /// unchanged); FailedPrecondition = wrong node (rediscover the leader).
  Status Produce(const std::string& category, int partition,
                 const std::string& producer,
                 const std::vector<ProduceItem>& items, ProduceAck* ack);

  /// Leader-only batched produce — the hot path. The framed (and normally
  /// compressed) body is appended as ONE batch entry covering the dense
  /// offset range; a resend partially overlapping already-appended seqs is
  /// head-trimmed in metadata (never decompressed, split, or
  /// double-appended). Same status contract as Produce. Rate-limit cost is
  /// the wire size of `body` — the batched path's throughput lever.
  Status ProduceBatch(const std::string& category, int partition,
                      const std::string& producer, ProduceBatchRequest req,
                      ProduceAck* ack);

  /// Leader-only consumer read: acknowledged records in
  /// [from, acked watermark) appended before `ts_limit`.
  Result<PartitionLog::ReadResult> ConsumerFetch(const std::string& category,
                                                 int partition, uint64_t from,
                                                 TimeMs ts_limit) const;

  /// Replica catch-up read: everything retained from `from`, no watermark
  /// or time limit. `trim_to` reports the leader's begin offset so the
  /// follower mirrors retention.
  Result<PartitionLog::ReadResult> ReplicaFetch(const std::string& category,
                                                int partition, uint64_t from,
                                                uint64_t* trim_to) const;

  /// Offset-commit hook from the fleet: all consumer groups have committed
  /// through `offset`, so a leader may trim its retained log (whole
  /// batches only).
  void NoteConsumedTo(const std::string& category, int partition,
                      uint64_t offset);

  /// Follower-side mirror of whole batch entries (leader push on acks=all
  /// and periodic catch-up both land here). Batches whose range is already
  /// covered locally are skipped; blobs are shared, never copied or
  /// decompressed. Returns false when this node cannot take the write.
  bool MirrorBatches(const std::string& category, int partition,
                     const std::vector<Batch>& batches);

  /// The local end offset of a hosted replica, or UINT64_MAX when this
  /// node does not host (category, partition). Leaders use it to size each
  /// peer's group-commit replication window.
  uint64_t MirrorEndOffset(const std::string& category, int partition) const;

  /// Chaos hook: the next Produce appends and replicates normally but the
  /// acknowledgement is "lost" (Unavailable), leaving the producer to
  /// resend — exercises (producer, seq) idempotence.
  void InjectAckLossOnce() { inject_ack_loss_once_ = true; }

  BrokerNodeStats stats() const;

 private:
  struct Replica {
    std::string category;
    int partition = 0;
    PartitionLog log;
    bool leader = false;
    std::string candidate_path;  // empty = not currently registered
    // Idempotence tables (leader-maintained, rebuilt on election):
    // highest seq acknowledged / appended per producer.
    std::map<std::string, uint64_t> producer_acked;
    std::map<std::string, uint64_t> producer_appended;
    // Producers with appended-but-unacknowledged entries (ack lost): the
    // lowest such offset pins the acked watermark until a resend resolves
    // it, keeping unacked records invisible to consumers.
    std::map<std::string, uint64_t> unacked_min_offset;
  };
  using PartitionKey = std::pair<std::string, int>;

  Replica* FindReplica(const std::string& category, int partition);
  const Replica* FindReplica(const std::string& category,
                             int partition) const;
  uint64_t AckedWatermark(const Replica& r) const;
  /// Leader-side group commit: for every peer, ships EVERYTHING the peer
  /// is missing — the just-appended batch plus any earlier batches the
  /// peer lacks — in one MirrorBatches round, so a produce's replication
  /// round also drains the queue a lagging follower built up.
  void ReplicateToPeers(Replica* r, const std::vector<BrokerNode*>& peers);
  /// Shared produce admission: insync check (acks=all), token-bucket rate
  /// limit on `wire_cost`, and the bounded in-flight window (uncompressed
  /// terms). Charges tokens only on admission.
  Status AdmitProduce(Replica* r, uint64_t wire_cost,
                      std::vector<BrokerNode*>* peers);
  std::vector<BrokerNode*> LivePeers(const std::string& category,
                                     int partition) const;
  Status RegisterCandidate(Replica* r);
  void PublishEndOffset(Replica* r);
  void WatchCandidates(std::string category, int partition);
  void RecomputeLeader(const std::string& category, int partition);
  void BecomeLeader(Replica* r);
  void ScheduleReplicaFetch();
  void FetchFromLeaders();
  void RefillTokens();
  void UpdateGauges();

  Simulator* sim_;
  zk::ZooKeeper* zk_;
  const std::string dc_;
  const std::string id_;
  const std::vector<std::string> fleet_ids_;
  Resolver resolve_;
  const BrokerOptions options_;

  bool alive_ = false;
  zk::SessionId session_ = 0;
  // Bumped on crash/expiry/restart; deferred callbacks from a previous
  // life compare against it and turn into no-ops.
  uint64_t incarnation_ = 0;
  bool inject_ack_loss_once_ = false;

  std::map<PartitionKey, Replica> replicas_;

  double tokens_ = 0;
  TimeMs last_refill_ = 0;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* produced_;
  obs::Counter* bytes_produced_;
  obs::Counter* wire_bytes_produced_;
  obs::Counter* duplicates_;
  obs::Counter* replicated_;
  obs::Counter* wire_bytes_replicated_;
  obs::Counter* replication_rounds_;
  obs::Counter* produce_calls_;
  obs::Counter* lost_failover_;
  obs::Counter* elections_;
  obs::Counter* throttled_backpressure_;
  obs::Counter* throttled_rate_;
  obs::Counter* insufficient_replicas_;
  obs::Counter* not_leader_rejects_;
  obs::Gauge* log_entries_gauge_;
  obs::Gauge* log_bytes_gauge_;
  obs::Gauge* retained_compressed_gauge_;
  obs::Gauge* retained_uncompressed_gauge_;
  obs::Gauge* partitions_led_gauge_;
  obs::Histogram* produce_batch_entries_;
};

}  // namespace unilog::broker

#endif  // UNILOG_BROKER_BROKER_H_
