#ifndef UNILOG_BROKER_PARTITION_LOG_H_
#define UNILOG_BROKER_PARTITION_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace unilog::broker {

/// One decoded record — the unit daemons log and the warehouse lands.
/// Inside the broker tier records travel only as members of a Batch; this
/// struct is what DecodeBatch() materializes for the consumer (the log
/// mover) at warehouse landing. `appended_at` (the leader-append sim time)
/// buckets the record into its warehouse hour; `logged_at` (the daemon's
/// Log() time) feeds the end-to-end latency histogram. The (producer, seq)
/// pair is the idempotence key brokers use to dedup crash-retry resends.
struct Record {
  uint64_t offset = 0;
  std::string producer;
  uint64_t seq = 0;
  TimeMs appended_at = 0;
  TimeMs logged_at = 0;
  std::string payload;
};

/// The storage, replication, and fetch unit of the broker tier: one
/// producer batch, framed and (normally) compressed once at the daemon and
/// carried as an opaque blob from there to warehouse landing. A batch
/// covers the dense offset range [base_offset, base_offset + count) and
/// the dense seq range [first_seq, first_seq + count) of one producer.
///
/// Body format (after decompression when `compressed`): one frame per
/// record, each `varint logged_at, varint payload_len, payload bytes`.
/// The body may carry `skip_frames` extra frames ahead of the first
/// included record — a crash-retried produce that partially overlapped
/// already-appended seqs is head-trimmed in metadata only, because the
/// blob is opaque to the broker. Slices taken by ReadFrom() grow
/// skip_frames the same way instead of rewriting the blob.
///
/// `record_sizes` (uncompressed payload bytes per included record) and the
/// zone-map-style [min_appended_at, max_appended_at] let the broker do
/// byte accounting, dedup trims, and hour-boundary reads without ever
/// decompressing. The body is shared: replication and fetch copy batch
/// metadata, never payload bytes.
struct Batch {
  uint64_t base_offset = 0;
  /// Included records; offsets [base_offset, base_offset + count).
  uint32_t count = 0;
  std::string producer;
  /// Seq of the record at base_offset.
  uint64_t first_seq = 0;
  TimeMs min_appended_at = 0;
  TimeMs max_appended_at = 0;
  /// Leading body frames to discard at decode (dedup head trim / slice).
  uint32_t skip_frames = 0;
  /// Framed body (compressed as one Lz block iff `compressed`). Holds
  /// skip_frames + count frames.
  std::shared_ptr<const std::string> body;
  bool compressed = false;
  /// Uncompressed payload bytes of each included record, in offset order.
  std::vector<uint32_t> record_sizes;
  /// Per-record appended_at when the batch is non-uniform (then size ==
  /// count, non-decreasing); empty means every record carries
  /// min_appended_at. Daemon-produced batches are always uniform (one
  /// leader-append instant); non-uniform batches arise only from tests
  /// that hand-build them.
  std::vector<TimeMs> record_times;
  /// Sum of record_sizes, cached by builders and slicers.
  uint64_t payload_bytes = 0;

  uint64_t end_offset() const { return base_offset + count; }
  uint64_t last_seq() const { return first_seq + count - 1; }
  /// Bytes the blob occupies in the log / on the wire.
  uint64_t stored_bytes() const { return body ? body->size() : 0; }
  /// appended_at of included record `i` (0-based).
  TimeMs appended_at(uint32_t i) const {
    return record_times.empty() ? min_appended_at : record_times[i];
  }
};

/// Appends one record frame to an (uncompressed) batch body.
void AppendBatchFrame(std::string* body, TimeMs logged_at,
                      std::string_view payload);

/// Decodes a batch's included records into `out`, assigning offsets, seqs,
/// and appended times from the batch metadata. Skips the skip_frames head
/// frames and stops after `count` frames: for compressed bodies the tail
/// past the last included frame is never decompressed (token-granular).
/// Returns the number of uncompressed body bytes actually materialized —
/// the probe hour-boundary tests use to assert the excluded tail stayed
/// compressed. Corruption on malformed bodies.
Result<size_t> DecodeBatch(const Batch& batch, std::vector<Record>* out);

/// An offset-addressed in-memory commit log of batch entries for one
/// (category, partition) replica — the Kafka-style storage unit under the
/// Scribe tier. Leaders AppendBatch() densely; followers mirror whole
/// batches with AppendMirror() and may carry gaps (offsets lost with a
/// dead leader), which AdvanceTo() records explicitly so offset arithmetic
/// stays honest after failover.
class PartitionLog {
 public:
  /// Offsets below this have been trimmed (consumed by every group).
  uint64_t begin_offset() const { return begin_; }
  /// One past the highest offset ever observed (next to be assigned).
  uint64_t end_offset() const { return next_offset_; }
  /// Retained records (summed over retained batches).
  size_t entry_count() const { return static_cast<size_t>(record_count_); }
  size_t batch_count() const { return batches_.size(); }
  /// Uncompressed payload bytes retained — the unit the delivery audit,
  /// byte accounting, and in-flight backpressure all use, so batching and
  /// compression never change their meaning.
  uint64_t byte_size() const { return bytes_; }
  /// Blob bytes retained (compressed where batches are compressed).
  uint64_t stored_byte_size() const { return stored_bytes_; }
  bool empty() const { return batches_.empty(); }

  /// Leader path: assigns base_offset = end_offset() and stores the batch.
  /// Returns the stored entry.
  const Batch& AppendBatch(Batch b);

  /// Convenience leader append of a single uncompressed record as a
  /// count-1 batch — the record-at-a-time baseline path.
  const Batch& Append(std::string producer, uint64_t seq, TimeMs appended_at,
                      TimeMs logged_at, std::string payload);

  /// Replication path: stores `b` under its existing base offset. Accepts
  /// only batches starting at or past the local end (mirroring the leader,
  /// gaps included); returns false for ranges already covered locally.
  bool AppendMirror(Batch b);

  /// Raises the end offset without storing records — the explicit gap a
  /// new leader opens when the acked watermark it inherits from zk is
  /// ahead of its own copy of the log (those entries died with the old
  /// leader and are counted as failover loss).
  void AdvanceTo(uint64_t offset);

  /// Drops retained batches whose entire range lies below `offset`
  /// (consumed by all groups). Batch-granular: a batch straddling `offset`
  /// is kept whole — retention never splits a batch. Never lowers
  /// begin_offset().
  void TrimTo(uint64_t offset);

  void Clear();

  struct ReadResult {
    /// Whole or head-sliced batches, in offset order. Slices share the
    /// original body; no payload bytes are copied or decompressed.
    std::vector<Batch> batches;
    /// Offset consumption should resume from: one past the last returned
    /// record, or the offset of the first record excluded by `ts_limit`.
    uint64_t next_offset = 0;
    /// Records covered by `batches`.
    uint64_t record_count = 0;
    /// Blob bytes covered by `batches` (what replication/fetch ships).
    uint64_t stored_bytes = 0;
  };

  /// Records with offset in [from, limit_offset) and appended_at <
  /// ts_limit, as batches. The scan stops at the first record at or past
  /// ts_limit — consumption never skips over an hour boundary, so
  /// next_offset always marks a clean resumption point, even mid-batch
  /// (the batch zone map locates the boundary; non-uniform batches are
  /// cut by their per-record times without touching the blob).
  ReadResult ReadFrom(uint64_t from, uint64_t limit_offset,
                      TimeMs ts_limit) const;

  /// Highest seq per producer over retained records with offset below
  /// `below` — a newly elected leader rebuilds its idempotence tables from
  /// this. Batch-granular arithmetic: seqs are dense within a batch.
  std::map<std::string, uint64_t> ProducerHighWatermarks(uint64_t below) const;

  const std::deque<Batch>& batches() const { return batches_; }

 private:
  /// A view of `b` starting at offset `from` (>= b.base_offset) covering
  /// `take` records. Shares the body; adjusts metadata only.
  static Batch Slice(const Batch& b, uint64_t from, uint32_t take);

  std::deque<Batch> batches_;  // ascending base offsets; may contain gaps
  uint64_t next_offset_ = 0;
  uint64_t begin_ = 0;
  uint64_t bytes_ = 0;
  uint64_t stored_bytes_ = 0;
  uint64_t record_count_ = 0;
};

}  // namespace unilog::broker

#endif  // UNILOG_BROKER_PARTITION_LOG_H_
