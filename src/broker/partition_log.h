#ifndef UNILOG_BROKER_PARTITION_LOG_H_
#define UNILOG_BROKER_PARTITION_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace unilog::broker {

/// One record in a partition's commit log. Offsets are assigned densely by
/// whichever replica currently leads the partition. `appended_at` (the
/// leader-append sim time) buckets the record into its warehouse hour;
/// `logged_at` (the daemon's Log() time) feeds the end-to-end latency
/// histogram. The (producer, seq) pair is the idempotence key brokers use
/// to dedup crash-retry resends.
struct Record {
  uint64_t offset = 0;
  std::string producer;
  uint64_t seq = 0;
  TimeMs appended_at = 0;
  TimeMs logged_at = 0;
  std::string payload;
};

/// An offset-addressed in-memory commit log for one (category, partition)
/// replica — the Kafka-style storage unit under the Scribe tier. Leaders
/// Append() densely; followers mirror with AppendRecord() and may carry
/// gaps (offsets lost with a dead leader), which AdvanceTo() records
/// explicitly so offset arithmetic stays honest after failover.
class PartitionLog {
 public:
  /// Offsets below this have been trimmed (consumed by every group).
  uint64_t begin_offset() const { return begin_; }
  /// One past the highest offset ever observed (next to be assigned).
  uint64_t end_offset() const { return next_offset_; }
  size_t entry_count() const { return records_.size(); }
  uint64_t byte_size() const { return bytes_; }
  bool empty() const { return records_.empty(); }

  /// Leader path: assigns the next dense offset. Returns the stored record.
  const Record& Append(std::string producer, uint64_t seq, TimeMs appended_at,
                       TimeMs logged_at, std::string payload);

  /// Replication path: stores `r` under its existing offset. Accepts only
  /// offsets at or past the local end (mirroring the leader, gaps
  /// included); returns false for offsets already covered locally.
  bool AppendRecord(Record r);

  /// Raises the end offset without storing records — the explicit gap a
  /// new leader opens when the acked watermark it inherits from zk is
  /// ahead of its own copy of the log (those entries died with the old
  /// leader and are counted as failover loss).
  void AdvanceTo(uint64_t offset);

  /// Drops retained records with offset < `offset` (consumed by all
  /// groups). Never lowers begin_offset().
  void TrimTo(uint64_t offset);

  void Clear();

  struct ReadResult {
    std::vector<Record> records;
    /// Offset consumption should resume from: one past the last returned
    /// record, or the offset of the first record excluded by `ts_limit`.
    uint64_t next_offset = 0;
  };

  /// Records with offset in [from, limit_offset) and appended_at <
  /// ts_limit, in offset order. The scan stops at the first record at or
  /// past ts_limit — consumption never skips over an hour boundary, so
  /// next_offset always marks a clean resumption point.
  ReadResult ReadFrom(uint64_t from, uint64_t limit_offset,
                      TimeMs ts_limit) const;

  /// Highest seq per producer over retained records with offset below
  /// `below` — a newly elected leader rebuilds its idempotence tables from
  /// this.
  std::map<std::string, uint64_t> ProducerHighWatermarks(uint64_t below) const;

  const std::deque<Record>& records() const { return records_; }

 private:
  std::deque<Record> records_;  // ascending offsets; may contain gaps
  uint64_t next_offset_ = 0;
  uint64_t begin_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace unilog::broker

#endif  // UNILOG_BROKER_PARTITION_LOG_H_
