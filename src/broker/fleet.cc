#include "broker/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace unilog::broker {

namespace {

uint64_t ParseUint(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

BrokerFleet::BrokerFleet(Simulator* sim, zk::ZooKeeper* zk,
                         std::string datacenter,
                         std::vector<std::string> node_ids,
                         BrokerOptions options, obs::MetricsRegistry* metrics)
    : sim_(sim),
      zk_(zk),
      dc_(std::move(datacenter)),
      options_(options),
      node_ids_(std::move(node_ids)) {
  // Sorted ids make AssignedReplicas deterministic regardless of the order
  // the caller listed the nodes in.
  std::sort(node_ids_.begin(), node_ids_.end());
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  obs::Labels labels{{"dc", dc_}};
  entries_consumed_ = metrics->GetCounter("broker.entries_consumed", labels);
  bytes_consumed_ = metrics->GetCounter("broker.bytes_consumed", labels);
  for (const std::string& id : node_ids_) {
    nodes_.push_back(std::make_unique<BrokerNode>(
        sim_, zk_, dc_, id, node_ids_,
        [this](const std::string& node_id) { return FindNode(node_id); },
        options_, metrics));
  }
}

Status BrokerFleet::Start() {
  admin_session_ = zk_->CreateSession();
  for (const std::string& path :
       {BrokersPath(dc_), TopicsPath(dc_), ConsumersPath(dc_)}) {
    std::string prefix;
    size_t pos = 1;
    while (pos < path.size()) {
      size_t next = path.find('/', pos);
      prefix = next == std::string::npos ? path : path.substr(0, next);
      if (!zk_->Exists(prefix)) {
        auto created = zk_->Create(admin_session_, prefix, "",
                                   zk::CreateMode::kPersistent);
        if (!created.ok() && !created.status().IsAlreadyExists()) {
          return created.status();
        }
      }
      pos = next == std::string::npos ? path.size() : next + 1;
    }
  }
  for (auto& node : nodes_) {
    UNILOG_RETURN_NOT_OK(node->Start());
  }
  return Status::OK();
}

BrokerNode* BrokerFleet::FindNode(const std::string& id) {
  for (auto& node : nodes_) {
    if (node->id() == id) return node.get();
  }
  return nullptr;
}

int BrokerFleet::PartitionFor(const std::string& producer_host,
                              const std::string& category) const {
  uint64_t h = StableHash(producer_host + "|" + category);
  return static_cast<int>(h % static_cast<uint64_t>(
                                  std::max(1, options_.num_partitions)));
}

Status BrokerFleet::EnsureTopic(const std::string& category) {
  std::string topic_path = TopicsPath(dc_) + "/" + category;
  if (!zk_->Exists(topic_path)) {
    auto created =
        zk_->Create(admin_session_, topic_path,
                    std::to_string(options_.num_partitions),
                    zk::CreateMode::kPersistent);
    if (!created.ok() && !created.status().IsAlreadyExists()) {
      return created.status();
    }
  }
  for (int p = 0; p < options_.num_partitions; ++p) {
    std::string part_path = PartitionPath(dc_, category, p);
    for (const std::string& path :
         {part_path, CandidatesPath(dc_, category, p)}) {
      if (!zk_->Exists(path)) {
        auto created =
            zk_->Create(admin_session_, path, "", zk::CreateMode::kPersistent);
        if (!created.ok() && !created.status().IsAlreadyExists()) {
          return created.status();
        }
      }
    }
    std::string state_path = StatePath(dc_, category, p);
    if (!zk_->Exists(state_path)) {
      auto created = zk_->Create(admin_session_, state_path, "0",
                                 zk::CreateMode::kPersistent);
      if (!created.ok() && !created.status().IsAlreadyExists()) {
        return created.status();
      }
    }
    for (const std::string& id : BrokerNode::AssignedReplicas(
             node_ids_, category, p, options_.replication_factor)) {
      BrokerNode* node = FindNode(id);
      if (node != nullptr && node->alive()) {
        UNILOG_RETURN_NOT_OK(node->AdoptReplica(category, p));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> BrokerFleet::ListTopics() const {
  return zk_->GetChildren(TopicsPath(dc_));
}

BrokerNode* BrokerFleet::FindLeader(const std::string& category,
                                    int partition) {
  auto winner = ElectLeader(*zk_, dc_, category, partition);
  if (!winner.ok()) return nullptr;
  BrokerNode* node = FindNode(*winner);
  if (node == nullptr || !node->alive() ||
      !node->IsLeader(category, partition)) {
    return nullptr;
  }
  return node;
}

uint64_t BrokerFleet::CommittedOffset(const std::string& group,
                                      const std::string& category,
                                      int partition) const {
  auto data = zk_->GetData(OffsetPath(dc_, group, category, partition));
  return data.ok() ? ParseUint(*data) : 0;
}

Status BrokerFleet::CommitOffset(const std::string& group,
                                 const std::string& category, int partition,
                                 uint64_t offset, uint64_t records,
                                 uint64_t bytes) {
  std::string group_path = ConsumersPath(dc_) + "/" + group;
  if (!zk_->Exists(group_path)) {
    auto created = zk_->Create(admin_session_, group_path, "",
                               zk::CreateMode::kPersistent);
    if (!created.ok() && !created.status().IsAlreadyExists()) {
      return created.status();
    }
  }
  std::string path = OffsetPath(dc_, group, category, partition);
  uint64_t previous = 0;
  if (auto data = zk_->GetData(path); data.ok()) {
    previous = ParseUint(*data);
  } else {
    auto created =
        zk_->Create(admin_session_, path, "0", zk::CreateMode::kPersistent);
    if (!created.ok() && !created.status().IsAlreadyExists()) {
      return created.status();
    }
  }
  // Offsets are monotone: a stale commit (replayed hour) is a no-op.
  if (offset > previous) {
    UNILOG_RETURN_NOT_OK(
        zk_->SetData(admin_session_, path, std::to_string(offset)));
  }
  entries_consumed_->Increment(records);
  bytes_consumed_->Increment(bytes);

  // Retention: the leader can drop everything every group has banked.
  uint64_t min_committed = std::numeric_limits<uint64_t>::max();
  if (auto groups = zk_->GetChildren(ConsumersPath(dc_)); groups.ok()) {
    for (const std::string& g : *groups) {
      auto data = zk_->GetData(OffsetPath(dc_, g, category, partition));
      min_committed = std::min(min_committed, data.ok() ? ParseUint(*data) : 0);
    }
  }
  if (min_committed != std::numeric_limits<uint64_t>::max()) {
    if (BrokerNode* leader = FindLeader(category, partition);
        leader != nullptr) {
      leader->NoteConsumedTo(category, partition, min_committed);
    }
  }
  return Status::OK();
}

BrokerFleetStats BrokerFleet::TotalStats() const {
  BrokerFleetStats total;
  for (const auto& node : nodes_) {
    BrokerNodeStats s = node->stats();
    total.entries_produced += s.entries_produced;
    total.bytes_produced += s.bytes_produced;
    total.wire_bytes_produced += s.wire_bytes_produced;
    total.entries_duplicate += s.entries_duplicate;
    total.entries_lost_failover += s.entries_lost_failover;
    total.wire_bytes_replicated += s.wire_bytes_replicated;
    total.replication_rounds += s.replication_rounds;
    total.produce_calls += s.produce_calls;
    total.retained_bytes_compressed += s.retained_bytes_compressed;
    total.retained_bytes_uncompressed += s.retained_bytes_uncompressed;
    total.throttled += s.throttled_backpressure + s.throttled_rate +
                       s.insufficient_replicas;
    total.elections_won += s.elections_won;
  }
  total.entries_consumed = entries_consumed_->value();
  total.bytes_consumed = bytes_consumed_->value();
  return total;
}

}  // namespace unilog::broker
