#include "broker/partition_log.h"

#include <algorithm>
#include <utility>

namespace unilog::broker {

const Record& PartitionLog::Append(std::string producer, uint64_t seq,
                                   TimeMs appended_at, TimeMs logged_at,
                                   std::string payload) {
  Record r;
  r.offset = next_offset_++;
  r.producer = std::move(producer);
  r.seq = seq;
  r.appended_at = appended_at;
  r.logged_at = logged_at;
  r.payload = std::move(payload);
  bytes_ += r.payload.size();
  records_.push_back(std::move(r));
  return records_.back();
}

bool PartitionLog::AppendRecord(Record r) {
  if (r.offset < next_offset_) return false;
  next_offset_ = r.offset + 1;
  bytes_ += r.payload.size();
  records_.push_back(std::move(r));
  return true;
}

void PartitionLog::AdvanceTo(uint64_t offset) {
  next_offset_ = std::max(next_offset_, offset);
}

void PartitionLog::TrimTo(uint64_t offset) {
  while (!records_.empty() && records_.front().offset < offset) {
    bytes_ -= records_.front().payload.size();
    records_.pop_front();
  }
  begin_ = std::max(begin_, std::min(offset, next_offset_));
}

void PartitionLog::Clear() {
  records_.clear();
  next_offset_ = 0;
  begin_ = 0;
  bytes_ = 0;
}

PartitionLog::ReadResult PartitionLog::ReadFrom(uint64_t from,
                                                uint64_t limit_offset,
                                                TimeMs ts_limit) const {
  ReadResult out;
  out.next_offset = std::max(from, begin_);
  auto it = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const Record& r, uint64_t off) { return r.offset < off; });
  for (; it != records_.end() && it->offset < limit_offset; ++it) {
    if (it->appended_at >= ts_limit) return out;  // hour boundary: stop here
    out.records.push_back(*it);
    out.next_offset = it->offset + 1;
  }
  // Drained every retained record below the limit; gaps between the last
  // record and the limit hold nothing, so resume from the limit itself.
  if (it == records_.end()) {
    out.next_offset = std::max(out.next_offset, std::min(limit_offset, next_offset_));
  }
  return out;
}

std::map<std::string, uint64_t> PartitionLog::ProducerHighWatermarks(
    uint64_t below) const {
  std::map<std::string, uint64_t> out;
  for (const Record& r : records_) {
    if (r.offset >= below) break;
    uint64_t& hi = out[r.producer];
    hi = std::max(hi, r.seq);
  }
  return out;
}

}  // namespace unilog::broker
