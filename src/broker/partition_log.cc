#include "broker/partition_log.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/coding.h"
#include "common/compress.h"

namespace unilog::broker {

namespace {

// Parses one LEB128 varint from `buf` at *pos, for the frame parser that
// walks an incrementally decompressed body (Decoder wants a fixed view;
// the body grows between reads).
Status GetVarintFrom(const std::string& buf, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  size_t p = *pos;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (p >= buf.size()) return Status::Corruption("batch frame: truncated varint");
    uint8_t byte = static_cast<uint8_t>(buf[p++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("batch frame: varint too long");
}

uint64_t SumSizes(const std::vector<uint32_t>& sizes, size_t from, size_t n) {
  uint64_t sum = 0;
  for (size_t i = from; i < from + n; ++i) sum += sizes[i];
  return sum;
}

}  // namespace

void AppendBatchFrame(std::string* body, TimeMs logged_at,
                      std::string_view payload) {
  PutVarint64(body, static_cast<uint64_t>(logged_at));
  PutVarint64(body, payload.size());
  body->append(payload.data(), payload.size());
}

Result<size_t> DecodeBatch(const Batch& batch, std::vector<Record>* out) {
  out->clear();
  out->reserve(batch.count);
  if (batch.body == nullptr) {
    if (batch.count == 0) return static_cast<size_t>(0);
    return Status::Corruption("batch has records but no body");
  }
  std::unique_ptr<Lz::IncrementalDecompressor> inc;
  const std::string* buf = batch.body.get();
  if (batch.compressed) {
    inc = std::make_unique<Lz::IncrementalDecompressor>(*batch.body);
    buf = &inc->output();
  }
  size_t pos = 0;
  // Two varints never exceed 20 bytes; ask the decompressor for that much
  // headroom before parsing a frame header, then for the payload itself.
  auto ensure = [&](size_t n) -> Status {
    if (inc == nullptr) return Status::OK();
    return inc->DecodeUntil(pos + n);
  };
  const uint32_t total_frames = batch.skip_frames + batch.count;
  for (uint32_t f = 0; f < total_frames; ++f) {
    UNILOG_RETURN_NOT_OK(ensure(20));
    uint64_t logged_at = 0;
    uint64_t len = 0;
    UNILOG_RETURN_NOT_OK(GetVarintFrom(*buf, &pos, &logged_at));
    UNILOG_RETURN_NOT_OK(GetVarintFrom(*buf, &pos, &len));
    UNILOG_RETURN_NOT_OK(ensure(len));
    if (buf->size() < pos + len) {
      return Status::Corruption("batch frame: truncated payload");
    }
    if (f >= batch.skip_frames) {
      const uint32_t i = f - batch.skip_frames;
      if (i < batch.record_sizes.size() && batch.record_sizes[i] != len) {
        return Status::Corruption("batch frame: size index mismatch");
      }
      Record r;
      r.offset = batch.base_offset + i;
      r.producer = batch.producer;
      r.seq = batch.first_seq + i;
      r.appended_at = batch.appended_at(i);
      r.logged_at = static_cast<TimeMs>(logged_at);
      r.payload.assign(buf->data() + pos, len);
      out->push_back(std::move(r));
    }
    pos += len;
  }
  // Bytes actually materialized: for compressed bodies the decompressor
  // may have run a few token-granular bytes past `pos`, but never into
  // tail frames beyond what a token straddles.
  return inc != nullptr ? inc->output().size() : pos;
}

const Batch& PartitionLog::AppendBatch(Batch b) {
  b.base_offset = next_offset_;
  next_offset_ += b.count;
  bytes_ += b.payload_bytes;
  stored_bytes_ += b.stored_bytes();
  record_count_ += b.count;
  batches_.push_back(std::move(b));
  return batches_.back();
}

const Batch& PartitionLog::Append(std::string producer, uint64_t seq,
                                  TimeMs appended_at, TimeMs logged_at,
                                  std::string payload) {
  Batch b;
  b.count = 1;
  b.producer = std::move(producer);
  b.first_seq = seq;
  b.min_appended_at = appended_at;
  b.max_appended_at = appended_at;
  b.record_sizes = {static_cast<uint32_t>(payload.size())};
  b.payload_bytes = payload.size();
  std::string body;
  AppendBatchFrame(&body, logged_at, payload);
  b.body = std::make_shared<const std::string>(std::move(body));
  b.compressed = false;
  return AppendBatch(std::move(b));
}

bool PartitionLog::AppendMirror(Batch b) {
  if (b.base_offset < next_offset_) return false;
  next_offset_ = b.end_offset();
  bytes_ += b.payload_bytes;
  stored_bytes_ += b.stored_bytes();
  record_count_ += b.count;
  batches_.push_back(std::move(b));
  return true;
}

void PartitionLog::AdvanceTo(uint64_t offset) {
  next_offset_ = std::max(next_offset_, offset);
}

void PartitionLog::TrimTo(uint64_t offset) {
  while (!batches_.empty() && batches_.front().end_offset() <= offset) {
    const Batch& front = batches_.front();
    bytes_ -= front.payload_bytes;
    stored_bytes_ -= front.stored_bytes();
    record_count_ -= front.count;
    begin_ = std::max(begin_, front.end_offset());
    batches_.pop_front();
  }
  // Raise begin_ through gaps, but never into a retained batch: a batch
  // straddling `offset` stays whole, and begin_ stops at its base.
  const uint64_t cap =
      batches_.empty() ? next_offset_ : batches_.front().base_offset;
  begin_ = std::max(begin_, std::min(offset, cap));
}

void PartitionLog::Clear() {
  batches_.clear();
  next_offset_ = 0;
  begin_ = 0;
  bytes_ = 0;
  stored_bytes_ = 0;
  record_count_ = 0;
}

Batch PartitionLog::Slice(const Batch& b, uint64_t from, uint32_t take) {
  Batch s = b;  // shares the body
  const uint32_t drop = static_cast<uint32_t>(from - b.base_offset);
  if (drop == 0 && take == b.count) return s;
  s.base_offset = from;
  s.skip_frames = b.skip_frames + drop;
  s.first_seq = b.first_seq + drop;
  s.count = take;
  s.record_sizes.assign(b.record_sizes.begin() + drop,
                        b.record_sizes.begin() + drop + take);
  s.payload_bytes = SumSizes(b.record_sizes, drop, take);
  if (!b.record_times.empty()) {
    s.record_times.assign(b.record_times.begin() + drop,
                          b.record_times.begin() + drop + take);
    s.min_appended_at = *std::min_element(s.record_times.begin(),
                                          s.record_times.end());
    s.max_appended_at = *std::max_element(s.record_times.begin(),
                                          s.record_times.end());
  }
  return s;
}

PartitionLog::ReadResult PartitionLog::ReadFrom(uint64_t from,
                                                uint64_t limit_offset,
                                                TimeMs ts_limit) const {
  ReadResult out;
  out.next_offset = std::max(from, begin_);
  auto it = std::lower_bound(
      batches_.begin(), batches_.end(), from,
      [](const Batch& b, uint64_t off) { return b.end_offset() <= off; });
  for (; it != batches_.end() && it->base_offset < limit_offset; ++it) {
    const uint64_t start = std::max(from, it->base_offset);
    const uint32_t idx0 = static_cast<uint32_t>(start - it->base_offset);
    uint32_t take = static_cast<uint32_t>(
        std::min<uint64_t>(it->end_offset(), limit_offset) - start);
    bool ts_stopped = false;
    if (it->min_appended_at >= ts_limit) {
      // Zone map: the whole batch is at or past the boundary.
      take = 0;
      ts_stopped = true;
    } else if (it->max_appended_at >= ts_limit) {
      // Boundary lands inside this batch. Per-record times (non-decreasing)
      // locate the first excluded record without touching the blob.
      uint32_t n = 0;
      while (n < take && it->appended_at(idx0 + n) < ts_limit) ++n;
      take = n;
      ts_stopped = true;
    }
    if (take > 0) {
      Batch s = Slice(*it, start, take);
      out.record_count += take;
      out.stored_bytes += s.stored_bytes();
      out.next_offset = start + take;
      out.batches.push_back(std::move(s));
    }
    if (ts_stopped) return out;  // hour boundary: stop here
  }
  // Drained every retained record below the limit; gaps between the last
  // batch and the limit hold nothing, so resume from the limit itself.
  if (it == batches_.end()) {
    out.next_offset =
        std::max(out.next_offset, std::min(limit_offset, next_offset_));
  }
  return out;
}

std::map<std::string, uint64_t> PartitionLog::ProducerHighWatermarks(
    uint64_t below) const {
  std::map<std::string, uint64_t> out;
  for (const Batch& b : batches_) {
    if (b.base_offset >= below) break;
    const uint64_t n = std::min<uint64_t>(b.count, below - b.base_offset);
    if (n == 0) continue;
    uint64_t& hi = out[b.producer];
    hi = std::max(hi, b.first_seq + n - 1);
  }
  return out;
}

}  // namespace unilog::broker
