#ifndef UNILOG_BROKER_FLEET_H_
#define UNILOG_BROKER_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::broker {

/// Aggregated counters across a fleet's nodes (plus the fleet-level
/// consumer counters), for the cluster audit.
struct BrokerFleetStats {
  uint64_t entries_produced = 0;
  uint64_t bytes_produced = 0;       // uncompressed payload bytes acked
  uint64_t wire_bytes_produced = 0;  // bytes as shipped daemon→leader
  uint64_t entries_duplicate = 0;
  uint64_t entries_lost_failover = 0;
  uint64_t entries_consumed = 0;
  uint64_t bytes_consumed = 0;  // uncompressed, decoded at warehouse landing
  uint64_t wire_bytes_replicated = 0;
  uint64_t replication_rounds = 0;
  uint64_t produce_calls = 0;
  uint64_t retained_bytes_compressed = 0;
  uint64_t retained_bytes_uncompressed = 0;
  uint64_t throttled = 0;  // backpressure + rate + insufficient replicas
  uint64_t elections_won = 0;
};

/// One datacenter's broker tier: owns the BrokerNodes, creates topics
/// (partition znodes plus replica adoption), routes producers and
/// consumers to partition leaders, and tracks consumer-group offsets in
/// zk. Replaces the single daemon→aggregator chain with partition-additive
/// throughput, as ROADMAP item 1 calls for.
class BrokerFleet {
 public:
  BrokerFleet(Simulator* sim, zk::ZooKeeper* zk, std::string datacenter,
              std::vector<std::string> node_ids, BrokerOptions options,
              obs::MetricsRegistry* metrics = nullptr);

  BrokerFleet(const BrokerFleet&) = delete;
  BrokerFleet& operator=(const BrokerFleet&) = delete;

  /// Creates the zk roots and starts every node.
  Status Start();

  const std::string& datacenter() const { return dc_; }
  const BrokerOptions& options() const { return options_; }
  size_t node_count() const { return nodes_.size(); }
  BrokerNode* node(size_t i) { return nodes_[i].get(); }
  BrokerNode* FindNode(const std::string& id);

  /// Partition routing key: hash of producer host and category, so one
  /// category's load from many daemons spreads over all partitions while
  /// each (daemon, category) stream stays ordered within one partition.
  int PartitionFor(const std::string& producer_host,
                   const std::string& category) const;

  /// Idempotently creates the topic's znodes and has every alive assigned
  /// node adopt its replicas (so a producer can send in the same tick).
  Status EnsureTopic(const std::string& category);

  Result<std::vector<std::string>> ListTopics() const;

  /// The node currently winning (category, partition)'s election, or
  /// nullptr when the partition is leaderless (all replicas down).
  BrokerNode* FindLeader(const std::string& category, int partition);

  // --- Consumer groups (offsets persisted in zk) ---

  uint64_t CommittedOffset(const std::string& group,
                           const std::string& category, int partition) const;

  /// Persists `group`'s progress through (category, partition), counts the
  /// consumed records, and lets the leader trim everything below the
  /// minimum committed offset across groups. Offsets never move backwards.
  Status CommitOffset(const std::string& group, const std::string& category,
                      int partition, uint64_t offset, uint64_t records,
                      uint64_t bytes);

  BrokerFleetStats TotalStats() const;

 private:
  Simulator* sim_;
  zk::ZooKeeper* zk_;
  const std::string dc_;
  const BrokerOptions options_;
  std::vector<std::string> node_ids_;
  std::vector<std::unique_ptr<BrokerNode>> nodes_;
  zk::SessionId admin_session_ = 0;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* entries_consumed_;
  obs::Counter* bytes_consumed_;
};

}  // namespace unilog::broker

#endif  // UNILOG_BROKER_FLEET_H_
