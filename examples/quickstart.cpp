// Quickstart: the unilog public API in one file.
//
// Builds a handful of client events, reconstructs sessions, materializes
// session sequences through a frequency-ordered dictionary, and runs the
// two §5 workhorse queries (event counting and a funnel) over them.
//
//   ./examples/quickstart

#include <cstdio>
#include <vector>

#include "analytics/udfs.h"
#include "common/sim_time.h"
#include "events/client_event.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"
#include "sessions/session_sequence.h"
#include "sessions/sessionizer.h"

using namespace unilog;

int main() {
  // --- 1. Log some client events (Table 2 of the paper). ---------------
  const TimeMs t0 = MakeDate(2012, 8, 21) + 9 * kMillisPerHour;
  std::vector<events::ClientEvent> log;
  auto emit = [&](int64_t user, const char* session, TimeMs at,
                  const char* name) {
    events::ClientEvent ev;
    ev.initiator = events::EventInitiator::kClientUser;
    ev.event_name = name;
    ev.user_id = user;
    ev.session_id = session;
    ev.ip = "10.0.0.1";
    ev.timestamp = at;
    log.push_back(ev);
  };
  // Alice browses her mentions and clicks through to a profile.
  emit(1, "sess-a", t0 + 0, "web:home:mentions:stream:tweet:impression");
  emit(1, "sess-a", t0 + 5000, "web:home:mentions:stream:tweet:impression");
  emit(1, "sess-a", t0 + 9000, "web:home:mentions:stream:avatar:profile_click");
  // ... and comes back 45 minutes later (a NEW session: > 30 min gap).
  emit(1, "sess-a", t0 + 45 * kMillisPerMinute,
       "web:home:mentions:stream:tweet:impression");
  // Bob signs up on his iPhone and completes two funnel stages.
  emit(2, "sess-b", t0 + 1000, "iphone:signup:flow:form:page:stage_00");
  emit(2, "sess-b", t0 + 20000, "iphone:signup:flow:form:page:stage_01");

  // Every event serializes to compact Thrift and back.
  std::string wire = log[0].Serialize();
  auto parsed = events::ClientEvent::Deserialize(wire);
  std::printf("wire format: %zu bytes/event, round-trips: %s\n\n",
              wire.size(), parsed.ok() && *parsed == log[0] ? "yes" : "NO");

  // --- 2. Daily jobs: histogram -> dictionary -> sessions. -------------
  sessions::EventHistogram histogram;
  sessions::Sessionizer sessionizer;  // 30-minute inactivity gap (§4.2)
  for (const auto& ev : log) {
    histogram.Add(ev.event_name);
    sessionizer.Add(ev);
  }
  auto dict =
      sessions::EventDictionary::FromSortedCounts(histogram.SortedByFrequency());
  if (!dict.ok()) return 1;
  std::printf("dictionary: %zu event types; most frequent gets code point "
              "U+%04X\n",
              dict->size(),
              dict->CodePointFor("web:home:mentions:stream:tweet:impression")
                  .value());

  std::vector<sessions::SessionSequence> sequences;
  for (const auto& session : sessionizer.Build()) {
    auto seq = sessions::EncodeSession(session, *dict);
    if (!seq.ok()) return 1;
    sequences.push_back(*seq);
  }
  std::printf("sessions reconstructed: %zu (note the 45-min gap split "
              "Alice's activity in two)\n\n",
              sequences.size());

  // --- 3. Queries over sequences (§5). ----------------------------------
  analytics::CountClientEvents impressions(*dict,
                                           events::EventPattern("*:impression"));
  analytics::CountClientEvents clicks(
      *dict, events::EventPattern("*:profile_click"));
  uint64_t total_impressions = 0, sessions_with_click = 0;
  for (const auto& seq : sequences) {
    total_impressions += impressions.Count(seq);
    if (clicks.ContainsAny(seq)) ++sessions_with_click;
  }
  std::printf("CountClientEvents('*:impression')    SUM   = %llu\n",
              (unsigned long long)total_impressions);
  std::printf("CountClientEvents('*:profile_click') COUNT = %llu sessions\n",
              (unsigned long long)sessions_with_click);

  auto funnel = analytics::Funnel::Make(
      *dict, {"iphone:signup:flow:form:page:stage_00",
              "iphone:signup:flow:form:page:stage_01"});
  if (!funnel.ok()) return 1;
  auto stage_counts = funnel->StageCounts(sequences);
  std::printf("signup funnel: ");
  for (size_t s = 0; s < stage_counts.size(); ++s) {
    std::printf("(%zu, %llu) ", s, (unsigned long long)stage_counts[s]);
  }
  std::printf("\n");
  return 0;
}
