// User modeling over session sequences (§5.4 + §6): n-gram language
// models quantifying temporal signal, activity-collocation mining, and
// alignment-based "query by example" for finding behaviourally-similar
// sessions.
//
//   ./examples/user_modeling

#include <cstdio>
#include <string>
#include <vector>

#include "analytics/lifeflow.h"
#include "common/utf8.h"
#include "events/client_event.h"
#include "nlp/alignment.h"
#include "nlp/collocations.h"
#include "nlp/grammar.h"
#include "nlp/ngram_model.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"
#include "sessions/session_sequence.h"
#include "sessions/sessionizer.h"
#include "workload/generator.h"

using namespace unilog;

int main() {
  // Generate a day of behaviour and materialize sequences in memory.
  workload::WorkloadOptions opts;
  opts.seed = 7;
  opts.num_users = 500;
  opts.start = MakeDate(2012, 8, 21);
  opts.duration = kMillisPerDay - 2 * kMillisPerHour;
  opts.follow_up_probability = 0.35;
  workload::WorkloadGenerator generator(opts);

  sessions::EventHistogram histogram;
  sessions::Sessionizer sessionizer;
  if (!generator.Generate([&](const events::ClientEvent& ev) {
        histogram.Add(ev.event_name);
        sessionizer.Add(ev);
      }).ok()) {
    return 1;
  }
  auto dict =
      sessions::EventDictionary::FromSortedCounts(histogram.SortedByFrequency());
  std::vector<nlp::SymbolSequence> symbol_seqs;
  for (const auto& session : sessionizer.Build()) {
    auto seq = sessions::EncodeSession(session, *dict);
    auto cps = DecodeUtf8(seq->sequence);
    if (cps.ok() && cps->size() >= 3) symbol_seqs.push_back(*cps);
  }
  std::printf("sessions: %zu, alphabet: %zu events\n\n", symbol_seqs.size(),
              dict->size());

  // --- Language models: how much does history help? --------------------
  size_t split = symbol_seqs.size() * 8 / 10;
  std::vector<nlp::SymbolSequence> train(symbol_seqs.begin(),
                                         symbol_seqs.begin() + split);
  std::vector<nlp::SymbolSequence> test(symbol_seqs.begin() + split,
                                        symbol_seqs.end());
  std::printf("n-gram perplexity on held-out sessions:\n");
  for (int n = 1; n <= 3; ++n) {
    nlp::NgramModel model(n, dict->size());
    model.TrainBatch(train);
    std::printf("  %d-gram: %.1f\n", n, model.Perplexity(test).value());
  }

  // --- Collocations: which actions go together? ------------------------
  nlp::CollocationFinder finder;
  for (const auto& seq : symbol_seqs) finder.Add(seq);
  std::printf("\ntop activity collocates by log-likelihood ratio:\n");
  for (const auto& c : finder.TopByLlr(5)) {
    std::printf("  llr=%8.1f  %s -> %s\n", c.llr,
                dict->NameFor(c.first).value().c_str(),
                dict->NameFor(c.second).value().c_str());
  }

  // --- Query by example: who behaves like this session? ----------------
  const nlp::SymbolSequence& example = symbol_seqs.front();
  std::vector<nlp::SymbolSequence> candidates(symbol_seqs.begin() + 1,
                                              symbol_seqs.end());
  auto ranked = nlp::QueryByExample(example, candidates, 3);
  std::printf("\nquery-by-example: sessions most similar to session #0 "
              "(%zu events):\n",
              example.size());
  for (const auto& [index, score] : ranked) {
    std::printf("  session #%zu  alignment score %.1f (%zu events)\n",
                index + 1, score, candidates[index].size());
  }

  // --- Grammar induction (§6): behavioural "phrases". -------------------
  auto grammar = nlp::InducedGrammar::Induce(symbol_seqs);
  std::printf("\ninduced grammar: %zu rules, corpus compresses to %.0f%% "
              "of its length\n",
              grammar.rules().size(),
              100.0 * grammar.CompressionRatio(symbol_seqs));
  for (size_t i = 0; i < grammar.rules().size() && i < 3; ++i) {
    const auto& rule = grammar.rules()[i];
    std::printf("  phrase #%zu (seen %llu times):", i + 1,
                (unsigned long long)rule.count);
    for (uint32_t terminal : grammar.Expand(rule.nonterminal)) {
      auto name = dict->NameFor(terminal);
      std::printf(" %s", name.ok() ? name->c_str() : "?");
    }
    std::printf("\n");
  }

  // --- LifeFlow (§6): the common navigation paths, as a tree. -----------
  std::printf("\nLifeFlow view (top branches of the first 3 levels):\n");
  std::vector<std::vector<std::string>> paths;
  for (const auto& seq : symbol_seqs) {
    std::vector<std::string> names;
    for (size_t i = 0; i < seq.size() && i < 3; ++i) {
      auto name = dict->NameFor(seq[i]);
      if (name.ok()) names.push_back(*name);
    }
    paths.push_back(std::move(names));
  }
  auto tree = analytics::LifeFlowTree::Build(paths, /*max_depth=*/3);
  std::printf("%s", tree.Render(/*max_children=*/2).c_str());
  return 0;
}
