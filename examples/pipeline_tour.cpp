// A guided tour of the full infrastructure (Figure 1 + §4.2's job graph):
// a synthetic day of traffic flows through Scribe daemons, aggregators,
// staging clusters, and the log mover into the warehouse; Oink then runs
// the daily histogram/dictionary and sessionization jobs; finally the
// client event catalog is browsed.
//
//   ./examples/pipeline_tour

#include <cstdio>

#include "catalog/catalog.h"
#include "oink/oink.h"
#include "pipeline/daily_pipeline.h"
#include "scribe/cluster.h"
#include "sessions/session_sequence.h"
#include "sim/simulator.h"
#include "workload/generator.h"

using namespace unilog;

int main() {
  const TimeMs day = MakeDate(2012, 8, 21);
  Simulator sim(day);

  // --- Figure 1: the delivery fleet. ------------------------------------
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1", "dc2"};
  topo.aggregators_per_dc = 2;
  topo.daemons_per_dc = 6;
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = kMillisPerMinute;
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = 5 * kMillisPerMinute;
  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/2012);
  if (!cluster.Start().ok()) return 1;
  std::printf("fleet: 2 datacenters, 12 scribe daemons, 4 aggregators, "
              "1 log mover\n");

  // --- Traffic. ----------------------------------------------------------
  workload::WorkloadOptions wopts;
  wopts.seed = 11;
  wopts.num_users = 150;
  wopts.start = day;
  wopts.duration = kMillisPerDay - 2 * kMillisPerHour;
  workload::WorkloadGenerator generator(wopts);
  if (!pipeline::DriveWorkloadThroughScribe(&sim, &cluster, &generator,
                                            "client_events")
           .ok()) {
    return 1;
  }

  // --- Oink runs the daily jobs once the log mover catches up. ----------
  pipeline::UserTable users = pipeline::UserTable::FromWorkload(generator);
  pipeline::DailyPipeline daily(cluster.warehouse(), dataflow::JobCostModel{});
  pipeline::DailyJobResult result;
  bool pipeline_ran = false;

  oink::Oink oink(&sim);
  oink::JobSpec job;
  job.name = "daily_client_events";
  job.period = kMillisPerDay;
  job.start_delay = 30 * kMillisPerMinute;  // wait out the mover's grace
  job.retry_interval = 10 * kMillisPerMinute;
  job.run = [&](TimeMs period_start) -> Status {
    auto r = daily.RunForDate(period_start, users);
    UNILOG_RETURN_NOT_OK(r.status());
    result = std::move(r).value();
    pipeline_ran = true;
    return Status::OK();
  };
  if (!oink.RegisterJob(job).ok()) return 1;
  oink.Start(day);

  sim.RunUntil(day + kMillisPerDay + 2 * kMillisPerHour);
  if (!pipeline_ran) {
    std::printf("daily job did not run!\n");
    return 1;
  }

  // --- Narrate what happened. -------------------------------------------
  scribe::ClusterStats stats = cluster.TotalStats();
  std::printf("\ndelivery:  %llu logged -> %llu in warehouse (%llu hours "
              "slid atomically)\n",
              (unsigned long long)stats.entries_logged,
              (unsigned long long)stats.messages_in_warehouse,
              (unsigned long long)cluster.mover()->stats().hours_moved);
  std::printf("daily job: histogram %llu events / %zu types; %zu session "
              "sequences materialized\n",
              (unsigned long long)result.histogram.total_events(),
              result.histogram.distinct_events(), result.sequences.size());
  for (const auto& trace : oink.TracesFor("daily_client_events")) {
    std::printf("oink trace: %s period=%s started=%s success=%s\n",
                trace.job.c_str(), DateString(trace.period_start).c_str(),
                TimestampString(trace.started_at).c_str(),
                trace.success ? "yes" : "no");
  }

  // --- Browse the catalog (§4.3). ----------------------------------------
  std::printf("\ncatalog: %zu event types; top 5 by volume:\n",
              result.catalog.size());
  auto top = result.catalog.ByCount();
  for (size_t i = 0; i < top.size() && i < 5; ++i) {
    std::printf("  %-55s %6llu  U+%04X\n", top[i]->name.c_str(),
                (unsigned long long)top[i]->count, top[i]->code_point);
  }
  std::printf("browse 'web:home:mentions': %zu entries;  pattern "
              "'*:profile_click': %zu entries\n",
              result.catalog.ByPrefix("web:home:mentions").size(),
              result.catalog.ByPattern(events::EventPattern("*:profile_click"))
                  .size());

  // The sequence partition is on the warehouse for downstream Pig-like
  // jobs (loaded by SessionSequencesLoader in the paper's scripts).
  std::printf("\nwarehouse partition: %s (load it back: %zu sequences)\n",
              sessions::SequenceStore::PartitionDir(day).c_str(),
              sessions::SequenceStore::LoadDaily(*cluster.warehouse(), day)
                  ->size());
  return 0;
}
