// Running the paper's Pig scripts against a simulated warehouse — the
// §5.2 event-counting script and the §5.3 funnel, verbatim modulo quoting,
// through the mini Pig Latin interpreter.
//
//   ./examples/pig_scripts

#include <cstdio>

#include "analytics/pig_stdlib.h"
#include "common/sim_time.h"
#include "dataflow/pig.h"
#include "hdfs/mini_hdfs.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"
#include "sessions/session_sequence.h"
#include "sessions/sessionizer.h"
#include "workload/generator.h"
#include "workload/hierarchy.h"

using namespace unilog;

int main() {
  const TimeMs day = MakeDate(2012, 8, 21);

  // --- Materialize a day of session sequences on a warehouse. ----------
  workload::WorkloadOptions wopts;
  wopts.seed = 99;
  wopts.num_users = 400;
  wopts.start = day;
  wopts.duration = kMillisPerDay - 2 * kMillisPerHour;
  wopts.signup_session_fraction = 0.2;
  workload::WorkloadGenerator generator(wopts);

  sessions::EventHistogram histogram;
  sessions::Sessionizer sessionizer;
  if (!generator.Generate([&](const events::ClientEvent& ev) {
        histogram.Add(ev.event_name);
        sessionizer.Add(ev);
      }).ok()) {
    return 1;
  }
  auto dict =
      sessions::EventDictionary::FromSortedCounts(histogram.SortedByFrequency());
  std::vector<sessions::SessionSequence> seqs;
  for (const auto& session : sessionizer.Build()) {
    seqs.push_back(*sessions::EncodeSession(session, *dict));
  }
  hdfs::MiniHdfs warehouse;
  if (!sessions::SequenceStore::WriteDaily(&warehouse, day, seqs, *dict).ok()) {
    return 1;
  }

  // --- The interpreter, wired to the warehouse. --------------------------
  dataflow::PigInterpreter pig;
  analytics::InstallPigStdlib(&pig, &warehouse);
  pig.SetParam("DATE", DateString(day));
  pig.SetParam("EVENTS", "*:profile_click");

  // §5.2 — "A typical Pig script might take the following form":
  const char* counting_script = R"PIG(
    define CountClientEvents CountClientEvents('$EVENTS');
    raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
    generated = foreach raw generate CountClientEvents(sequence) as symbols;
    grouped = group generated all;
    count = foreach grouped generate SUM(symbols);
    dump count;
  )PIG";
  std::printf("--- §5.2 event counting ($EVENTS = '*:profile_click') ---\n");
  std::printf("%s\n", counting_script);
  Status st = pig.Run(counting_script);
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const auto& line : pig.output()) std::printf("  %s\n", line.c_str());
  pig.ClearOutput();

  // §5.3 — the funnel, with output in the paper's "(stage, count)" shape:
  std::string funnel_script = R"PIG(
    define Funnel ClientEventsFunnel(
        'web:signup:flow:form:page:stage_00',
        'web:signup:flow:form:page:stage_01',
        'web:signup:flow:form:page:stage_02',
        'web:signup:flow:form:page:stage_03',
        'web:signup:flow:form:page:stage_04');
    raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
    staged = foreach raw generate Funnel(sequence) as stages;
    entered = filter staged by stages >= 1;
    grouped = group entered by stages;
    counts = foreach grouped generate stages, COUNT(*) as sessions;
    ordered = order counts by stages;
    dump ordered;
  )PIG";
  std::printf("\n--- §5.3 funnel analytics (web signup flow) ---\n");
  st = pig.Run(funnel_script);
  if (!st.ok()) {
    std::printf("FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("(deepest stage reached, sessions):\n");
  for (const auto& line : pig.output()) std::printf("  %s\n", line.c_str());
  return 0;
}
