// Funnel analytics on the signup flow (§5.3), including the A/B-test use
// case the paper motivates: two signup designs with different per-stage
// friction are simulated, and the funnel report shows which design wins on
// end-to-end completion.
//
//   ./examples/funnel_analysis

#include <cstdio>
#include <string>
#include <vector>

#include "analytics/udfs.h"
#include "events/client_event.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"
#include "sessions/session_sequence.h"
#include "sessions/sessionizer.h"
#include "workload/generator.h"
#include "workload/hierarchy.h"

using namespace unilog;

namespace {

struct FunnelReport {
  std::vector<uint64_t> stage_counts;
  std::vector<double> abandonment;
  uint64_t sessions = 0;
};

// Generates a day under the given signup design and reports its funnel.
FunnelReport RunDesign(const std::vector<double>& continue_probs,
                       uint64_t seed) {
  workload::WorkloadOptions opts;
  opts.seed = seed;
  opts.num_users = 600;
  opts.start = MakeDate(2012, 8, 21);
  opts.duration = kMillisPerDay - 2 * kMillisPerHour;
  opts.signup_session_fraction = 0.30;
  opts.signup_continue = continue_probs;
  workload::WorkloadGenerator generator(opts);

  // In-memory mini pipeline: histogram -> dictionary -> sequences.
  sessions::EventHistogram histogram;
  sessions::Sessionizer sessionizer;
  Status st = generator.Generate([&](const events::ClientEvent& ev) {
    histogram.Add(ev.event_name);
    sessionizer.Add(ev);
  });
  if (!st.ok()) std::abort();
  auto dict =
      sessions::EventDictionary::FromSortedCounts(histogram.SortedByFrequency());
  std::vector<sessions::SessionSequence> sequences;
  for (const auto& session : sessionizer.Build()) {
    sequences.push_back(*sessions::EncodeSession(session, *dict));
  }

  // Aggregate the funnel across all four clients.
  FunnelReport report;
  report.sessions = sequences.size();
  report.stage_counts.assign(workload::ViewHierarchy::kSignupStages, 0);
  for (const char* client : {"web", "iphone", "android", "ipad"}) {
    std::vector<std::string> stages;
    for (int s = 0; s < workload::ViewHierarchy::kSignupStages; ++s) {
      stages.push_back(workload::ViewHierarchy::SignupStageEvent(client, s));
    }
    auto funnel = analytics::Funnel::Make(*dict, stages);
    if (!funnel.ok()) continue;
    auto counts = funnel->StageCounts(sequences);
    for (size_t i = 0; i < counts.size(); ++i) {
      report.stage_counts[i] += counts[i];
    }
  }
  for (size_t i = 0; i + 1 < report.stage_counts.size(); ++i) {
    report.abandonment.push_back(
        report.stage_counts[i] == 0
            ? 0
            : 1.0 - static_cast<double>(report.stage_counts[i + 1]) /
                        static_cast<double>(report.stage_counts[i]));
  }
  return report;
}

void Print(const char* label, const FunnelReport& report) {
  std::printf("%s (%llu sessions that day):\n", label,
              (unsigned long long)report.sessions);
  for (size_t s = 0; s < report.stage_counts.size(); ++s) {
    std::printf("  (%zu, %llu)", s,
                (unsigned long long)report.stage_counts[s]);
    if (s > 0 && report.stage_counts[0] > 0) {
      std::printf("   %.1f%% of entrants", 100.0 * report.stage_counts[s] /
                                               report.stage_counts[0]);
    }
    std::printf("\n");
  }
  std::printf("  abandonment per step:");
  for (double a : report.abandonment) std::printf(" %.1f%%", 100 * a);
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("=== Signup funnel analysis (§5.3) — an A/B test ===\n\n");
  // Design A: the current 5-step flow.
  FunnelReport a = RunDesign({0.75, 0.65, 0.80, 0.60}, /*seed=*/2012);
  // Design B: step 2 was simplified (e.g. fewer form fields), raising its
  // continue probability, at the cost of slightly more friction later.
  FunnelReport b = RunDesign({0.75, 0.85, 0.78, 0.58}, /*seed=*/2012);

  Print("design A (control)", a);
  Print("design B (simplified step 2)", b);

  double completion_a =
      static_cast<double>(a.stage_counts.back()) / a.stage_counts.front();
  double completion_b =
      static_cast<double>(b.stage_counts.back()) / b.stage_counts.front();
  std::printf("end-to-end completion: A=%.1f%%  B=%.1f%%  ->  ship %s\n",
              100 * completion_a, 100 * completion_b,
              completion_b > completion_a ? "B" : "A");
  return 0;
}
