// E15 (§4.2, design-choice ablation): the 30-minute inactivity gap.
// "Following standard practices, we use a 30-minute inactivity interval to
// delimit user sessions." Sweeps the gap and reports how session counts,
// lengths, and durations respond — showing the 30-minute choice sits on
// the flat part of the curve (robust), while aggressive gaps shatter
// sessions and huge gaps merge distinct visits.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "events/client_event.h"
#include "sessions/sessionizer.h"

int main() {
  using namespace unilog;
  std::printf("=== E15 / §4.2 ablation: sessionization inactivity gap ===\n\n");

  // Generate events once; re-sessionize under different gaps. The workload
  // generates multiple visits per user (distinct session ids), but we
  // sessionize here on user id only — the legacy-style worst case where
  // the gap heuristic does all the work.
  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 400);
  workload::WorkloadGenerator generator(wopts);
  std::vector<events::ClientEvent> events_by_user_only;
  if (!generator.Generate([&](const events::ClientEvent& ev) {
        events::ClientEvent copy = ev;
        copy.session_id = "";  // collapse to user-only grouping
        events_by_user_only.push_back(std::move(copy));
      }).ok()) {
    return 1;
  }
  uint64_t truth = generator.truth().total_sessions;
  std::printf("generated: %s events, %llu true sessions\n\n",
              WithCommas(generator.truth().total_events).c_str(),
              (unsigned long long)truth);

  std::printf("%10s %10s %12s %14s %12s\n", "gap", "sessions", "vs truth",
              "avg_events", "avg_dur_s");
  for (TimeMs gap_min : {1, 5, 15, 30, 60, 180}) {
    sessions::SessionizerOptions opts;
    opts.inactivity_gap_ms = gap_min * kMillisPerMinute;
    sessions::Sessionizer sessionizer(opts);
    for (const auto& ev : events_by_user_only) sessionizer.Add(ev);
    auto sessions = sessionizer.Build();
    uint64_t total_events = 0;
    double total_duration = 0;
    for (const auto& s : sessions) {
      total_events += s.event_names.size();
      total_duration += s.DurationSeconds();
    }
    double ratio = static_cast<double>(sessions.size()) /
                   static_cast<double>(truth);
    std::printf("%8lldm %10zu %11.2fx %14.1f %12.1f\n",
                static_cast<long long>(gap_min), sessions.size(), ratio,
                sessions.empty() ? 0.0
                                 : static_cast<double>(total_events) /
                                       static_cast<double>(sessions.size()),
                sessions.empty() ? 0.0
                                 : total_duration /
                                       static_cast<double>(sessions.size()));
  }
  std::printf(
      "\nshape: tiny gaps shatter sessions (ratio >> 1); very large gaps "
      "merge distinct visits\n(ratio < 1); the standard 30-minute choice "
      "sits near the plateau around 1.0x.\n");
  return 0;
}
