// E3 (Table 2): the client event Thrift structure — serialization /
// deserialization microbenchmarks, per-event wire sizes for the unified
// format vs the three legacy application-specific formats, and the
// schema-evolution (unknown-field skip) cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "events/client_event.h"
#include "events/legacy.h"
#include "thrift/compact_protocol.h"

namespace unilog {
namespace {

events::ClientEvent SampleEvent() {
  events::ClientEvent ev;
  ev.initiator = events::EventInitiator::kClientUser;
  ev.event_name = "web:home:mentions:stream:avatar:profile_click";
  ev.user_id = 123456789;
  ev.session_id = "cookie-8f3a2b";
  ev.ip = "10.20.30.40";
  ev.timestamp = 1345507200000;
  ev.details = {{"profile_id", "98765"}, {"lang", "en"},
                {"client_version", "4.3"}};
  return ev;
}

void BM_Serialize(benchmark::State& state) {
  events::ClientEvent ev = SampleEvent();
  for (auto _ : state) {
    std::string buf = ev.Serialize();
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Serialize);

void BM_Deserialize(benchmark::State& state) {
  std::string buf = SampleEvent().Serialize();
  for (auto _ : state) {
    auto ev = events::ClientEvent::Deserialize(buf);
    benchmark::DoNotOptimize(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Deserialize);

void BM_DeserializeNameOnly(benchmark::State& state) {
  // The cheap projection path used by the histogram/index jobs.
  std::string batch;
  events::ClientEventWriter writer(&batch);
  for (int i = 0; i < 100; ++i) writer.Add(SampleEvent());
  for (auto _ : state) {
    events::ClientEventReader reader(batch);
    std::string name;
    while (reader.NextEventNameOnly(&name).ok()) {
      benchmark::DoNotOptimize(name);
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DeserializeNameOnly);

void BM_DeserializeWithUnknownFields(benchmark::State& state) {
  // A "v2 producer" added three fields; the v1 reader must skip them.
  thrift::ThriftValue v2 = SampleEvent().ToThrift();
  v2.SetField(20, thrift::ThriftValue::String("experiment-bucket-b"));
  v2.SetField(21, thrift::ThriftValue::I64(42));
  v2.SetField(22, thrift::ThriftValue::Double(0.125));
  std::string buf;
  if (!thrift::SerializeStruct(v2, &buf).ok()) std::abort();
  for (auto _ : state) {
    auto ev = events::ClientEvent::Deserialize(buf);
    benchmark::DoNotOptimize(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeserializeWithUnknownFields);

void BM_LegacyJsonParse(benchmark::State& state) {
  std::string line = events::LegacyJsonFormat::Format(SampleEvent());
  for (auto _ : state) {
    auto rec = events::LegacyJsonFormat::Parse(line);
    benchmark::DoNotOptimize(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyJsonParse);

void PrintTable2() {
  events::ClientEvent ev = SampleEvent();
  std::printf("=== E3 / Table 2: client event message format ===\n");
  std::printf("schema:\n%s\n\n",
              events::ClientEvent::Schema().ToIdl().c_str());

  std::string unified = ev.Serialize();
  std::string legacy_json = events::LegacyJsonFormat::Format(ev);
  std::string legacy_tsv = events::LegacyDelimitedFormat::Format(ev);
  std::string legacy_nat = events::LegacyNaturalFormat::Format(ev);

  std::printf("per-event wire size (same logical action):\n");
  std::printf("  %-34s %5zu bytes  (full six-level name + session/ip/ts + "
              "details)\n",
              "unified client event (thrift):", unified.size());
  std::printf("  %-34s %5zu bytes\n",
              "legacy JSON (web frontend):", legacy_json.size());
  std::printf("  %-34s %5zu bytes  (loses session id, sub-second time)\n",
              "legacy tab-delimited (api):", legacy_tsv.size());
  std::printf("  %-34s %5zu bytes  (loses session id, ip, seconds)\n",
              "legacy natural language (search):", legacy_nat.size());
  std::printf(
      "\npaper: unified logs are *more verbose* than any single "
      "application needs —\nthe cost paid for common semantics (§4.1). "
      "Unified >= delimited/natural here: %s\n\n",
      unified.size() >= legacy_tsv.size() ? "YES" : "NO");
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  unilog::PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
