// E3 (Table 2): the client event Thrift structure — serialization /
// deserialization microbenchmarks, per-event wire sizes for the unified
// format vs the three legacy application-specific formats, and the
// schema-evolution (unknown-field skip) cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "alloc_hooks.h"
#include "bench_common.h"
#include "events/client_event.h"
#include "events/legacy.h"
#include "thrift/compact_protocol.h"

namespace unilog {
namespace {

events::ClientEvent SampleEvent() {
  events::ClientEvent ev;
  ev.initiator = events::EventInitiator::kClientUser;
  ev.event_name = "web:home:mentions:stream:avatar:profile_click";
  ev.user_id = 123456789;
  ev.session_id = "cookie-8f3a2b";
  ev.ip = "10.20.30.40";
  ev.timestamp = 1345507200000;
  ev.details = {{"profile_id", "98765"}, {"lang", "en"},
                {"client_version", "4.3"}};
  return ev;
}

void BM_Serialize(benchmark::State& state) {
  events::ClientEvent ev = SampleEvent();
  for (auto _ : state) {
    std::string buf = ev.Serialize();
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Serialize);

void BM_SerializeReusedBuffer(benchmark::State& state) {
  // The ingest hot-path shape: one warmed scratch buffer reused per
  // record (what ClientEventWriter::Add does) instead of a fresh
  // std::string per Serialize call.
  events::ClientEvent ev = SampleEvent();
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    ev.SerializeTo(&buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SerializeReusedBuffer);

void BM_Deserialize(benchmark::State& state) {
  std::string buf = SampleEvent().Serialize();
  for (auto _ : state) {
    auto ev = events::ClientEvent::Deserialize(buf);
    benchmark::DoNotOptimize(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Deserialize);

void BM_DeserializeNameOnly(benchmark::State& state) {
  // The cheap projection path used by the histogram/index jobs.
  std::string batch;
  events::ClientEventWriter writer(&batch);
  for (int i = 0; i < 100; ++i) writer.Add(SampleEvent());
  for (auto _ : state) {
    events::ClientEventReader reader(batch);
    std::string name;
    while (reader.NextEventNameOnly(&name).ok()) {
      benchmark::DoNotOptimize(name);
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DeserializeNameOnly);

void BM_DeserializeWithUnknownFields(benchmark::State& state) {
  // A "v2 producer" added three fields; the v1 reader must skip them.
  thrift::ThriftValue v2 = SampleEvent().ToThrift();
  v2.SetField(20, thrift::ThriftValue::String("experiment-bucket-b"));
  v2.SetField(21, thrift::ThriftValue::I64(42));
  v2.SetField(22, thrift::ThriftValue::Double(0.125));
  std::string buf;
  if (!thrift::SerializeStruct(v2, &buf).ok()) std::abort();
  for (auto _ : state) {
    auto ev = events::ClientEvent::Deserialize(buf);
    benchmark::DoNotOptimize(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeserializeWithUnknownFields);

void BM_LegacyJsonParse(benchmark::State& state) {
  std::string line = events::LegacyJsonFormat::Format(SampleEvent());
  for (auto _ : state) {
    auto rec = events::LegacyJsonFormat::Parse(line);
    benchmark::DoNotOptimize(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyJsonParse);

void PrintTable2() {
  events::ClientEvent ev = SampleEvent();
  std::printf("=== E3 / Table 2: client event message format ===\n");
  std::printf("schema:\n%s\n\n",
              events::ClientEvent::Schema().ToIdl().c_str());

  std::string unified = ev.Serialize();
  std::string legacy_json = events::LegacyJsonFormat::Format(ev);
  std::string legacy_tsv = events::LegacyDelimitedFormat::Format(ev);
  std::string legacy_nat = events::LegacyNaturalFormat::Format(ev);

  std::printf("per-event wire size (same logical action):\n");
  std::printf("  %-34s %5zu bytes  (full six-level name + session/ip/ts + "
              "details)\n",
              "unified client event (thrift):", unified.size());
  std::printf("  %-34s %5zu bytes\n",
              "legacy JSON (web frontend):", legacy_json.size());
  std::printf("  %-34s %5zu bytes  (loses session id, sub-second time)\n",
              "legacy tab-delimited (api):", legacy_tsv.size());
  std::printf("  %-34s %5zu bytes  (loses session id, ip, seconds)\n",
              "legacy natural language (search):", legacy_nat.size());
  std::printf(
      "\npaper: unified logs are *more verbose* than any single "
      "application needs —\nthe cost paid for common semantics (§4.1). "
      "Unified >= delimited/natural here: %s\n\n",
      unified.size() >= legacy_tsv.size() ? "YES" : "NO");
}

// Batch-serde throughput with the zero-copy write path: per-event fresh
// strings (seed shape) vs ClientEventWriter's reused scratch buffer.
// Prints bytes/sec and allocs/op columns and contributes a section to
// BENCH_ingest.json.
void RunReusedBufferSection() {
  constexpr int kEvents = 20000;
  constexpr int kReps = 5;
  events::ClientEvent ev = SampleEvent();

  auto fresh_rep = [&ev]() {
    std::string batch;
    for (int i = 0; i < kEvents; ++i) {
      std::string record = ev.Serialize();  // fresh buffer per event
      PutVarint64(&batch, record.size());
      batch.append(record);
    }
    return batch;
  };
  auto reused_rep = [&ev]() {
    std::string batch;
    events::ClientEventWriter writer(&batch);  // one reused scratch
    for (int i = 0; i < kEvents; ++i) writer.Add(ev);
    return batch;
  };

  struct Row {
    double best_ms = 0;
    uint64_t allocs = 0;
    size_t bytes = 0;
  };
  auto measure = [](const std::function<std::string()>& rep) {
    Row row;
    for (int r = 0; r < kReps; ++r) {
      bench::AllocScope allocs;
      bench::WallTimer timer;
      std::string batch = rep();
      double ms = timer.ElapsedMs();
      if (r == 0 || ms < row.best_ms) row.best_ms = ms;
      row.allocs = allocs.Delta();
      row.bytes = batch.size();
    }
    return row;
  };

  Row fresh = measure(fresh_rep);
  Row reused = measure(reused_rep);
  bool identical = fresh_rep() == reused_rep();
  auto mbps = [](const Row& r) {
    return r.best_ms > 0 ? static_cast<double>(r.bytes) / 1e6 /
                               (r.best_ms / 1e3)
                         : 0;
  };
  auto allocs_per_op = [](const Row& r) {
    return static_cast<double>(r.allocs) / kEvents;
  };

  std::printf("--- batch serde: %d events, framed (ingest write path) ---\n",
              kEvents);
  std::printf("%-26s %10s %10s %12s\n", "path", "best_ms", "MB/s",
              "allocs/op");
  std::printf("%-26s %10.2f %10.1f %12.2f\n", "fresh string per event",
              fresh.best_ms, mbps(fresh), allocs_per_op(fresh));
  std::printf("%-26s %10.2f %10.1f %12.2f\n", "reused scratch (writer)",
              reused.best_ms, mbps(reused), allocs_per_op(reused));
  std::printf("  batch bytes identical: %s\n\n", identical ? "YES" : "NO");

  Json section = Json::Object();
  section.Set("events", Json::Number(kEvents));
  section.Set("fresh_ms", Json::Number(fresh.best_ms));
  section.Set("fresh_mb_per_sec", Json::Number(mbps(fresh)));
  section.Set("fresh_allocs_per_op", Json::Number(allocs_per_op(fresh)));
  section.Set("reused_ms", Json::Number(reused.best_ms));
  section.Set("reused_mb_per_sec", Json::Number(mbps(reused)));
  section.Set("reused_allocs_per_op", Json::Number(allocs_per_op(reused)));
  section.Set("byte_identical", Json::Bool(identical));
  Status js = bench::MergeBenchJsonSection("BENCH_ingest.json",
                                           "table2_client_event_serde",
                                           std::move(section));
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_ingest.json write failed: %s\n",
                 js.ToString().c_str());
  }
  if (!identical) std::exit(1);
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  // Accepted (and ignored beyond parsing) so CI can pass one --threads=N
  // to every ingest bench uniformly; serde is single-threaded by design.
  unilog::bench::ParseThreadsFlag(&argc, argv);
  unilog::PrintTable2();
  unilog::RunReusedBufferSection();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
