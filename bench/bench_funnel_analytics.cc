// E8 (§5.3): funnel analytics over the signup flow. Reproduces the paper's
// per-stage output format "(0, 490123) (1, 297071) ..." from session
// sequences, compares it against the workload's planted ground truth, and
// reports per-stage abandonment plus unique-user variants.

#include <cstdio>
#include <set>

#include "analytics/udfs.h"
#include "bench_common.h"
#include "workload/hierarchy.h"

int main(int argc, char** argv) {
  using namespace unilog;
  int threads = bench::ParseThreadsFlag(&argc, argv);
  std::printf("=== E8 / §5.3: funnel analytics (signup flow) ===\n\n");

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 800);
  wopts.signup_session_fraction = 0.25;
  bench::WallTimer setup;
  bench::DayFixture fx = bench::BuildDay(wopts);
  const workload::GroundTruth& truth = fx.generator->truth();
  std::printf("day: %zu sessions (%llu signup attempts), built in %.0f ms\n\n",
              fx.daily.sequences.size(),
              static_cast<unsigned long long>(truth.signup_sessions),
              setup.ElapsedMs());

  constexpr int kStages = workload::ViewHierarchy::kSignupStages;
  std::vector<uint64_t> recovered(kStages, 0);
  std::vector<std::set<int64_t>> users_per_stage(kStages);

  bench::WallTimer query;
  for (const auto& client : fx.generator->hierarchy().clients()) {
    std::vector<std::string> stages;
    for (int s = 0; s < kStages; ++s) {
      stages.push_back(workload::ViewHierarchy::SignupStageEvent(client, s));
    }
    auto funnel = analytics::Funnel::Make(fx.daily.dictionary, stages);
    if (!funnel.ok()) continue;  // no signup traffic for this client today
    for (const auto& seq : fx.daily.sequences) {
      size_t completed = funnel->StagesCompleted(seq);
      for (size_t i = 0; i < completed; ++i) {
        ++recovered[i];
        users_per_stage[i].insert(seq.user_id);
      }
    }
  }
  double query_ms = query.ElapsedMs();

  std::printf("define Funnel ClientEventsFunnel('stage_00', ..., "
              "'stage_%02d');\noutput (sessions):\n", kStages - 1);
  for (int s = 0; s < kStages; ++s) {
    std::printf("  (%d, %llu)\n", s,
                static_cast<unsigned long long>(recovered[s]));
  }
  std::printf("\noutput (unique users, via distinct-before-sum):\n");
  for (int s = 0; s < kStages; ++s) {
    std::printf("  (%d, %zu)\n", s, users_per_stage[s].size());
  }

  std::printf("\nper-stage abandonment:\n");
  for (int s = 0; s + 1 < kStages; ++s) {
    double rate = recovered[s] == 0
                      ? 0
                      : 1.0 - static_cast<double>(recovered[s + 1]) /
                                  static_cast<double>(recovered[s]);
    std::printf("  stage %d -> %d: %.1f%% abandon\n", s, s + 1, 100 * rate);
  }

  std::printf("\nground truth comparison (planted continue probs "
              "{0.75, 0.65, 0.80, 0.60}):\n");
  bool exact = true;
  for (int s = 0; s < kStages; ++s) {
    bool match = recovered[s] == truth.funnel_stage_sessions[s];
    if (!match) exact = false;
    std::printf("  stage %d: recovered=%-6llu truth=%-6llu %s\n", s,
                static_cast<unsigned long long>(recovered[s]),
                static_cast<unsigned long long>(
                    truth.funnel_stage_sessions[s]),
                match ? "OK" : "MISMATCH");
  }
  std::printf("\nfunnel query over %zu sequences x %d clients: %.1f ms\n",
              fx.daily.sequences.size(), 4, query_ms);
  std::printf("shape check — exact recovery of planted funnel: %s\n",
              exact ? "YES" : "NO");

  // Parallel StageCounts sweep (requested --threads=%d honored inside the
  // sweep set); per-stage counts must match at every thread count.
  std::printf("\nparallel funnel sweep (requested --threads=%d):\n", threads);
  {
    const auto& clients = fx.generator->hierarchy().clients();
    std::vector<analytics::Funnel> funnels;
    for (const auto& client : clients) {
      std::vector<std::string> stages;
      for (int s = 0; s < kStages; ++s) {
        stages.push_back(workload::ViewHierarchy::SignupStageEvent(client, s));
      }
      auto funnel = analytics::Funnel::Make(fx.daily.dictionary, stages);
      if (funnel.ok()) funnels.push_back(std::move(*funnel));
    }
    bench::SpeedupReport("StageCounts", [&](exec::Executor* exec) -> uint64_t {
      uint64_t checksum = 0;
      for (const auto& funnel : funnels) {
        auto counts = funnel.StageCounts(fx.daily.sequences, exec);
        for (size_t s = 0; s < counts.size(); ++s) {
          checksum = checksum * 1000003 + counts[s];
        }
      }
      return checksum;
    });
  }
  return exact ? 0 : 1;
}
