// E6 (§4.2): the headline performance claim — "queries over session
// sequences are substantially faster than queries over the raw client
// event logs, both in terms of lower latency and higher throughput".
// Runs the same CTR-style event-count query two ways:
//   raw path:      MapReduce scan over the day's client event logs,
//                  project event name, group-by session — the job that
//                  "routinely spawned tens of thousands of mappers";
//   sequence path: scan of the 50x-smaller materialized sequences with a
//                  string-matching UDF.
// Reports simulated map tasks, bytes scanned, shuffle volume, modeled
// cluster wall time, and real local time.
//
// A third path rides along for the scan fast path (E18): the same day
// rewritten as columnar RCFile v2 hour parts and queried through the
// dataflow pushdown scan (event-name predicate evaluated on dictionary
// ids, groups skipped wholesale). Answers must match the raw path and be
// thread-count invariant; results land in BENCH_scan.json.

#include <cstdio>
#include <map>

#include "analytics/udfs.h"
#include "bench_common.h"
#include "columnar/rcfile.h"
#include "dataflow/columnar_scan.h"
#include "dataflow/mapreduce.h"
#include "events/client_event.h"
#include "scribe/message.h"
#include "sessions/session_sequence.h"

namespace unilog {
namespace {

struct PathCost {
  uint64_t map_tasks = 0;
  uint64_t bytes_scanned = 0;
  uint64_t bytes_shuffled = 0;
  double modeled_ms = 0;
  double real_ms = 0;
  uint64_t answer = 0;  // matching-event count
};

// Raw path: scan every hourly partition, parse full events, group by
// session, count matches per session, then total.
PathCost RawPath(const bench::DayFixture& fx, const std::string& pattern_str,
                 const dataflow::JobCostModel& cost) {
  events::EventPattern pattern(pattern_str);
  bench::WallTimer timer;
  dataflow::MapReduceJob job(fx.warehouse.get(), cost);
  pipeline::DailyPipeline helper(fx.warehouse.get(), cost);
  for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
    if (!job.AddInputDir(dir).ok()) std::abort();
  }
  job.set_map([&pattern](const std::string& record,
                         dataflow::Emitter* e) -> Status {
    UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                            events::ClientEvent::Deserialize(record));
    // Project onto the name, group by session (the paper's standard first
    // two operations).
    if (pattern.Matches(ev.event_name)) {
      e->Emit(std::to_string(ev.user_id) + "|" + ev.session_id, "1");
    }
    return Status::OK();
  });
  job.set_reduce([](const std::string& key,
                    const std::vector<std::string>& values,
                    dataflow::Emitter* e) -> Status {
    e->Emit(key, std::to_string(values.size()));
    return Status::OK();
  });
  auto out = job.Run();
  if (!out.ok()) std::abort();
  PathCost pc;
  for (const auto& [key, count] : *out) {
    pc.answer += static_cast<uint64_t>(std::stoull(count));
  }
  pc.map_tasks = job.stats().map_tasks;
  pc.bytes_scanned = job.stats().bytes_scanned;
  pc.bytes_shuffled = job.stats().bytes_shuffled;
  pc.modeled_ms = job.stats().modeled_ms;
  pc.real_ms = timer.ElapsedMs();
  return pc;
}

// Sequence path: map-only scan over the sequence partition with the
// CountClientEvents UDF (sessions are already materialized — no shuffle).
PathCost SequencePath(const bench::DayFixture& fx,
                      const std::string& pattern_str,
                      const dataflow::JobCostModel& cost) {
  bench::WallTimer timer;
  analytics::CountClientEvents udf(fx.daily.dictionary,
                                   events::EventPattern(pattern_str));
  dataflow::MapReduceJob job(fx.warehouse.get(), cost);
  if (!job.AddInputDir(sessions::SequenceStore::PartitionDir(bench::kBenchDay))
           .ok()) {
    std::abort();
  }
  // Sequence files are compressed blobs of concatenated records, not
  // framed; use a whole-file record and decode inside the map.
  dataflow::InputFormat format;
  format.decode = [](std::string_view body) -> Result<std::string> {
    return Lz::Decompress(body);
  };
  format.split =
      [](std::string_view decoded) -> Result<std::vector<std::string>> {
    return std::vector<std::string>{std::string(decoded)};
  };
  job.set_input_format(format);
  uint64_t total = 0;
  job.set_map([&udf, &total](const std::string& body,
                             dataflow::Emitter*) -> Status {
    sessions::SequenceRecordReader reader(body);
    sessions::SessionSequence seq;
    while (true) {
      Status st = reader.Next(&seq);
      if (st.IsNotFound()) break;
      UNILOG_RETURN_NOT_OK(st);
      total += udf.Count(seq);
    }
    return Status::OK();
  });
  auto out = job.Run();
  if (!out.ok()) std::abort();
  PathCost pc;
  pc.answer = total;
  pc.map_tasks = job.stats().map_tasks;
  pc.bytes_scanned = job.stats().bytes_scanned;
  pc.bytes_shuffled = job.stats().bytes_shuffled;
  pc.modeled_ms = job.stats().modeled_ms;
  pc.real_ms = timer.ElapsedMs();
  return pc;
}

// Rewrites each warehoused hour as one RCFile v2 part under
// /columnar/client_events/... — the layout LogMoverOptions::
// columnar_categories would have produced.
Status MaterializeColumnarDay(bench::DayFixture* fx,
                              const dataflow::JobCostModel& cost) {
  pipeline::DailyPipeline helper(fx->warehouse.get(), cost);
  for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
    UNILOG_ASSIGN_OR_RETURN(auto files, fx->warehouse->ListRecursive(dir));
    std::string body;
    columnar::RcFileWriter writer(&body, /*rows_per_group=*/1024);
    for (const auto& file : files) {
      UNILOG_ASSIGN_OR_RETURN(std::string raw,
                              fx->warehouse->ReadFile(file.path));
      UNILOG_ASSIGN_OR_RETURN(std::string decoded, Lz::Decompress(raw));
      UNILOG_ASSIGN_OR_RETURN(auto records, scribe::UnframeMessages(decoded));
      for (const auto& record : records) {
        UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                                events::ClientEvent::Deserialize(record));
        UNILOG_RETURN_NOT_OK(writer.Add(ev));
      }
    }
    UNILOG_RETURN_NOT_OK(writer.Finish());
    std::string out_dir = "/columnar" + dir.substr(strlen("/logs"));
    UNILOG_RETURN_NOT_OK(
        fx->warehouse->WriteFile(out_dir + "/part-00000", body));
  }
  return Status::OK();
}

// Order-sensitive digest over a relation's rows.
uint64_t RelationDigest(const dataflow::Relation& rel) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xffu;
    h *= 1099511628211ull;
  };
  for (const auto& row : rel.rows()) {
    for (const auto& v : row) mix(v.ToString());
  }
  return h;
}

struct PushdownRun {
  uint64_t answer = 0;
  uint64_t digest = 0;
  double real_ms = 0;
  columnar::ScanStats stats;
};

// One pushdown query: open the columnar scan, fuse the name predicate,
// materialize on `exec`.
Result<PushdownRun> PushdownQuery(const bench::DayFixture& fx,
                                  const std::string& pattern,
                                  exec::Executor* exec) {
  bench::WallTimer timer;
  UNILOG_ASSIGN_OR_RETURN(
      auto scan, dataflow::ColumnarEventScan::Open(fx.warehouse.get(),
                                                   "/columnar/client_events"));
  if (!scan->PushFilter("event_name", "matches",
                        dataflow::Value::Str(pattern))) {
    return Status::Internal("event-name pattern did not fuse");
  }
  UNILOG_ASSIGN_OR_RETURN(dataflow::Relation rel, scan->Materialize(exec));
  PushdownRun run;
  run.answer = rel.size();
  run.digest = RelationDigest(rel);
  run.real_ms = timer.ElapsedMs();
  run.stats = scan->last_stats();
  return run;
}

void PrintRow(const char* label, const PathCost& pc) {
  std::printf("  %-10s maps=%-5llu scanned=%-10s shuffled=%-10s "
              "modeled=%-9.0fms real=%-7.1fms answer=%llu\n",
              label, static_cast<unsigned long long>(pc.map_tasks),
              HumanBytes(pc.bytes_scanned).c_str(),
              HumanBytes(pc.bytes_shuffled).c_str(), pc.modeled_ms,
              pc.real_ms, static_cast<unsigned long long>(pc.answer));
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  int users = bench::ParseUsersFlag(&argc, argv);
  std::printf("=== E6 / §4.2: event-count query — raw client event logs vs "
              "session sequences ===\n\n");
  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, users);
  wopts.extra_detail_pairs = 4;  // production-ish payloads
  // Small blocks and few cluster slots so the raw path splits into many
  // map waves, mirroring the paper's tens-of-thousands-of-mappers
  // economics at laptop scale (their jobs queued on a finite jobtracker
  // too — what matters is tasks >> slots).
  dataflow::JobCostModel cost;
  cost.cluster_slots = 8;
  hdfs::HdfsOptions hopts;
  hopts.block_size = 64 * 1024;
  bench::DayFixture fx = bench::BuildDay(wopts, cost, hopts);
  std::printf("day: %s events, raw logs %s on disk, %zu sequences\n\n",
              WithCommas(fx.daily.histogram.total_events()).c_str(),
              HumanBytes(fx.raw_log_bytes).c_str(),
              fx.daily.sequences.size());

  if (Status st = MaterializeColumnarDay(&fx, cost); !st.ok()) {
    std::fprintf(stderr, "columnar materialization failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  double worst_modeled_speedup = 1e18;
  bool pushdown_ok = true;
  Json queries = Json::Array();
  for (const char* pattern :
       {"*:impression", "web:home:mentions:*", "*:profile_click"}) {
    std::printf("query: count events matching %s\n", pattern);
    PathCost raw = RawPath(fx, pattern, cost);
    PathCost seq = SequencePath(fx, pattern, cost);
    PrintRow("raw", raw);
    PrintRow("sequences", seq);

    // Columnar pushdown at 1/2/8 threads: digests must agree across
    // thread counts and the answer must match the raw scan.
    PushdownRun serial;
    bool identical = true;
    for (int threads : {1, 2, 8}) {
      exec::ExecOptions eopts;
      eopts.threads = threads;
      exec::Executor executor(eopts);
      auto run = PushdownQuery(fx, pattern, &executor);
      if (!run.ok()) {
        std::fprintf(stderr, "pushdown query failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) {
        serial = *run;
      } else {
        identical = identical && run->digest == serial.digest;
      }
    }
    bool answers_match = serial.answer == raw.answer;
    pushdown_ok = pushdown_ok && identical && answers_match;
    std::printf("  %-10s decompressed=%-9s pruned=%-7llu real=%-7.1fms "
                "answer=%llu\n",
                "columnar", HumanBytes(serial.stats.bytes_decompressed).c_str(),
                static_cast<unsigned long long>(serial.stats.rows_pruned),
                serial.real_ms,
                static_cast<unsigned long long>(serial.answer));

    double modeled_speedup = raw.modeled_ms / (seq.modeled_ms > 0 ? seq.modeled_ms : 1);
    double scan_reduction = static_cast<double>(raw.bytes_scanned) /
                            static_cast<double>(seq.bytes_scanned == 0
                                                    ? 1
                                                    : seq.bytes_scanned);
    std::printf("  -> modeled speedup %.1fx, scan reduction %.1fx, answers "
                "match: %s, pushdown matches raw at 1/2/8 threads: %s\n\n",
                modeled_speedup, scan_reduction,
                raw.answer == seq.answer ? "YES" : "NO",
                identical && answers_match ? "YES" : "NO");
    if (modeled_speedup < worst_modeled_speedup) {
      worst_modeled_speedup = modeled_speedup;
    }

    Json q = Json::Object();
    q.Set("pattern", Json::Str(pattern));
    q.Set("raw_answer", Json::Int(static_cast<int64_t>(raw.answer)));
    q.Set("pushdown_answer", Json::Int(static_cast<int64_t>(serial.answer)));
    q.Set("raw_bytes_scanned", Json::Int(static_cast<int64_t>(raw.bytes_scanned)));
    q.Set("pushdown_bytes_decompressed",
          Json::Int(static_cast<int64_t>(serial.stats.bytes_decompressed)));
    q.Set("rows_pruned", Json::Int(static_cast<int64_t>(serial.stats.rows_pruned)));
    q.Set("digests_identical_threads_1_2_8", Json::Bool(identical));
    q.Set("answers_match", Json::Bool(answers_match));
    queries.Push(std::move(q));
  }
  std::printf("shape check — sequences substantially faster on every query "
              "(worst modeled speedup %.1fx >= 5x): %s\n",
              worst_modeled_speedup,
              worst_modeled_speedup >= 5 ? "YES" : "NO");

  Json section = Json::Object();
  section.Set("queries", std::move(queries));
  section.Set("pass", Json::Bool(pushdown_ok));
  if (Status js = bench::MergeBenchJsonSection("BENCH_scan.json",
                                               "query_pushdown", section);
      !js.ok()) {
    std::fprintf(stderr, "BENCH_scan.json write failed: %s\n",
                 js.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_scan.json section 'query_pushdown'\n");
  return pushdown_ok ? 0 : 1;
}
