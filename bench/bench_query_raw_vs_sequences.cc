// E6 (§4.2): the headline performance claim — "queries over session
// sequences are substantially faster than queries over the raw client
// event logs, both in terms of lower latency and higher throughput".
// Runs the same CTR-style event-count query two ways:
//   raw path:      MapReduce scan over the day's client event logs,
//                  project event name, group-by session — the job that
//                  "routinely spawned tens of thousands of mappers";
//   sequence path: scan of the 50x-smaller materialized sequences with a
//                  string-matching UDF.
// Reports simulated map tasks, bytes scanned, shuffle volume, modeled
// cluster wall time, and real local time.

#include <cstdio>
#include <map>

#include "analytics/udfs.h"
#include "bench_common.h"
#include "dataflow/mapreduce.h"
#include "events/client_event.h"
#include "sessions/session_sequence.h"

namespace unilog {
namespace {

struct PathCost {
  uint64_t map_tasks = 0;
  uint64_t bytes_scanned = 0;
  uint64_t bytes_shuffled = 0;
  double modeled_ms = 0;
  double real_ms = 0;
  uint64_t answer = 0;  // matching-event count
};

// Raw path: scan every hourly partition, parse full events, group by
// session, count matches per session, then total.
PathCost RawPath(const bench::DayFixture& fx, const std::string& pattern_str,
                 const dataflow::JobCostModel& cost) {
  events::EventPattern pattern(pattern_str);
  bench::WallTimer timer;
  dataflow::MapReduceJob job(fx.warehouse.get(), cost);
  pipeline::DailyPipeline helper(fx.warehouse.get(), cost);
  for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
    if (!job.AddInputDir(dir).ok()) std::abort();
  }
  job.set_map([&pattern](const std::string& record,
                         dataflow::Emitter* e) -> Status {
    UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                            events::ClientEvent::Deserialize(record));
    // Project onto the name, group by session (the paper's standard first
    // two operations).
    if (pattern.Matches(ev.event_name)) {
      e->Emit(std::to_string(ev.user_id) + "|" + ev.session_id, "1");
    }
    return Status::OK();
  });
  job.set_reduce([](const std::string& key,
                    const std::vector<std::string>& values,
                    dataflow::Emitter* e) -> Status {
    e->Emit(key, std::to_string(values.size()));
    return Status::OK();
  });
  auto out = job.Run();
  if (!out.ok()) std::abort();
  PathCost pc;
  for (const auto& [key, count] : *out) {
    pc.answer += static_cast<uint64_t>(std::stoull(count));
  }
  pc.map_tasks = job.stats().map_tasks;
  pc.bytes_scanned = job.stats().bytes_scanned;
  pc.bytes_shuffled = job.stats().bytes_shuffled;
  pc.modeled_ms = job.stats().modeled_ms;
  pc.real_ms = timer.ElapsedMs();
  return pc;
}

// Sequence path: map-only scan over the sequence partition with the
// CountClientEvents UDF (sessions are already materialized — no shuffle).
PathCost SequencePath(const bench::DayFixture& fx,
                      const std::string& pattern_str,
                      const dataflow::JobCostModel& cost) {
  bench::WallTimer timer;
  analytics::CountClientEvents udf(fx.daily.dictionary,
                                   events::EventPattern(pattern_str));
  dataflow::MapReduceJob job(fx.warehouse.get(), cost);
  if (!job.AddInputDir(sessions::SequenceStore::PartitionDir(bench::kBenchDay))
           .ok()) {
    std::abort();
  }
  // Sequence files are compressed blobs of concatenated records, not
  // framed; use a whole-file record and decode inside the map.
  dataflow::InputFormat format;
  format.decode = [](std::string_view body) -> Result<std::string> {
    return Lz::Decompress(body);
  };
  format.split =
      [](std::string_view decoded) -> Result<std::vector<std::string>> {
    return std::vector<std::string>{std::string(decoded)};
  };
  job.set_input_format(format);
  uint64_t total = 0;
  job.set_map([&udf, &total](const std::string& body,
                             dataflow::Emitter*) -> Status {
    sessions::SequenceRecordReader reader(body);
    sessions::SessionSequence seq;
    while (true) {
      Status st = reader.Next(&seq);
      if (st.IsNotFound()) break;
      UNILOG_RETURN_NOT_OK(st);
      total += udf.Count(seq);
    }
    return Status::OK();
  });
  auto out = job.Run();
  if (!out.ok()) std::abort();
  PathCost pc;
  pc.answer = total;
  pc.map_tasks = job.stats().map_tasks;
  pc.bytes_scanned = job.stats().bytes_scanned;
  pc.bytes_shuffled = job.stats().bytes_shuffled;
  pc.modeled_ms = job.stats().modeled_ms;
  pc.real_ms = timer.ElapsedMs();
  return pc;
}

void PrintRow(const char* label, const PathCost& pc) {
  std::printf("  %-10s maps=%-5llu scanned=%-10s shuffled=%-10s "
              "modeled=%-9.0fms real=%-7.1fms answer=%llu\n",
              label, static_cast<unsigned long long>(pc.map_tasks),
              HumanBytes(pc.bytes_scanned).c_str(),
              HumanBytes(pc.bytes_shuffled).c_str(), pc.modeled_ms,
              pc.real_ms, static_cast<unsigned long long>(pc.answer));
}

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E6 / §4.2: event-count query — raw client event logs vs "
              "session sequences ===\n\n");
  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 400);
  wopts.extra_detail_pairs = 4;  // production-ish payloads
  // Small blocks and few cluster slots so the raw path splits into many
  // map waves, mirroring the paper's tens-of-thousands-of-mappers
  // economics at laptop scale (their jobs queued on a finite jobtracker
  // too — what matters is tasks >> slots).
  dataflow::JobCostModel cost;
  cost.cluster_slots = 8;
  hdfs::HdfsOptions hopts;
  hopts.block_size = 64 * 1024;
  bench::DayFixture fx = bench::BuildDay(wopts, cost, hopts);
  std::printf("day: %s events, raw logs %s on disk, %zu sequences\n\n",
              WithCommas(fx.daily.histogram.total_events()).c_str(),
              HumanBytes(fx.raw_log_bytes).c_str(),
              fx.daily.sequences.size());

  double worst_modeled_speedup = 1e18;
  for (const char* pattern :
       {"*:impression", "web:home:mentions:*", "*:profile_click"}) {
    std::printf("query: count events matching %s\n", pattern);
    PathCost raw = RawPath(fx, pattern, cost);
    PathCost seq = SequencePath(fx, pattern, cost);
    PrintRow("raw", raw);
    PrintRow("sequences", seq);
    double modeled_speedup = raw.modeled_ms / (seq.modeled_ms > 0 ? seq.modeled_ms : 1);
    double scan_reduction = static_cast<double>(raw.bytes_scanned) /
                            static_cast<double>(seq.bytes_scanned == 0
                                                    ? 1
                                                    : seq.bytes_scanned);
    std::printf("  -> modeled speedup %.1fx, scan reduction %.1fx, answers "
                "match: %s\n\n",
                modeled_speedup, scan_reduction,
                raw.answer == seq.answer ? "YES" : "NO");
    if (modeled_speedup < worst_modeled_speedup) {
      worst_modeled_speedup = modeled_speedup;
    }
  }
  std::printf("shape check — sequences substantially faster on every query "
              "(worst modeled speedup %.1fx >= 5x): %s\n",
              worst_modeled_speedup,
              worst_modeled_speedup >= 5 ? "YES" : "NO");
  return 0;
}
