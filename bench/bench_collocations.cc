// E10 (§5.4): "activity collocates" — commonly co-occurring event pairs
// extracted with pointwise mutual information (Church & Hanks) and the
// log-likelihood ratio (Dunning). The workload plants impression→click and
// click→profile_click follow-ups; both rankings should surface them.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/utf8.h"
#include "nlp/collocations.h"

namespace unilog {
namespace {

std::string NameOf(const sessions::EventDictionary& dict, uint32_t cp) {
  auto name = dict.NameFor(cp);
  return name.ok() ? *name : "?";
}

bool IsPlantedFollowUp(const workload::ViewHierarchy& hierarchy,
                       const std::string& first, const std::string& second) {
  const std::string* follow = hierarchy.FollowUpOf(first);
  return follow != nullptr && *follow == second;
}

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E10 / §5.4: activity collocations (PMI and Dunning LLR) "
              "===\n\n");

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 700);
  wopts.follow_up_probability = 0.35;
  bench::DayFixture fx = bench::BuildDay(wopts);

  nlp::CollocationFinder finder;
  for (const auto& seq : fx.daily.sequences) {
    auto cps = DecodeUtf8(seq.sequence);
    if (cps.ok()) finder.Add(*cps);
  }
  std::printf("bigrams observed: %s\n\n",
              WithCommas(finder.total_bigrams()).c_str());

  const auto& hierarchy = fx.generator->hierarchy();
  const auto& dict = fx.daily.dictionary;

  size_t planted_in_pmi_top = 0, planted_in_llr_top = 0;
  const size_t kTop = 10;

  std::printf("top %zu by PMI (pairs with count >= 20):\n", kTop);
  for (const auto& c : finder.TopByPmi(20, kTop)) {
    std::string first = NameOf(dict, c.first);
    std::string second = NameOf(dict, c.second);
    bool planted = IsPlantedFollowUp(hierarchy, first, second);
    if (planted) ++planted_in_pmi_top;
    std::printf("  pmi=%5.2f n=%-5llu %s -> %s%s\n", c.pmi,
                static_cast<unsigned long long>(c.pair_count), first.c_str(),
                second.c_str(), planted ? "   [planted]" : "");
  }

  std::printf("\ntop %zu by log-likelihood ratio:\n", kTop);
  for (const auto& c : finder.TopByLlr(kTop)) {
    std::string first = NameOf(dict, c.first);
    std::string second = NameOf(dict, c.second);
    bool planted = IsPlantedFollowUp(hierarchy, first, second);
    if (planted) ++planted_in_llr_top;
    std::printf("  llr=%9.1f n=%-5llu %s -> %s%s\n", c.llr,
                static_cast<unsigned long long>(c.pair_count), first.c_str(),
                second.c_str(), planted ? "   [planted]" : "");
  }

  std::printf("\nshape checks:\n");
  std::printf("  planted follow-ups dominate the PMI top-%zu: %zu/%zu %s\n",
              kTop, planted_in_pmi_top, kTop,
              planted_in_pmi_top >= kTop / 2 ? "YES" : "NO");
  std::printf("  planted follow-ups dominate the LLR top-%zu: %zu/%zu %s\n",
              kTop, planted_in_llr_top, kTop,
              planted_in_llr_top >= kTop / 2 ? "YES" : "NO");
  return 0;
}
