// E14 (§5.1): BirdBrain summary statistics. "Due to their compact size,
// statistics about sessions are easy to compute from the session
// sequences." Computes the daily dashboard (sessions, by client, by
// bucketed duration) from the sequences and contrasts the cost with
// deriving the same numbers from raw logs.

#include <cstdio>

#include "analytics/summary.h"
#include "bench_common.h"
#include "dataflow/mapreduce.h"
#include "events/client_event.h"
#include "sessions/sessionizer.h"

int main(int argc, char** argv) {
  using namespace unilog;
  int threads = bench::ParseThreadsFlag(&argc, argv);
  std::printf("=== E14 / §5.1: BirdBrain daily summary statistics ===\n\n");

  bench::DayFixture fx = bench::BuildDay(bench::DefaultWorkload(42, 500));

  // From sequences (the cheap path).
  bench::WallTimer seq_timer;
  auto summary = analytics::Summarize(fx.daily.sequences,
                                      fx.daily.dictionary);
  if (!summary.ok()) std::abort();
  double seq_ms = seq_timer.ElapsedMs();

  std::printf("dashboard (from session sequences, %.1f ms):\n%s\n\n", seq_ms,
              summary->ToString().c_str());

  // From raw logs (scan + group-by + sessionize + summarize).
  bench::WallTimer raw_timer;
  dataflow::JobCostModel cost;
  dataflow::MapReduceJob job(fx.warehouse.get(), cost);
  pipeline::DailyPipeline helper(fx.warehouse.get(), cost);
  for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
    if (!job.AddInputDir(dir).ok()) std::abort();
  }
  sessions::Sessionizer sessionizer;
  job.set_map([&sessionizer](const std::string& record,
                             dataflow::Emitter* e) -> Status {
    UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                            events::ClientEvent::Deserialize(record));
    sessionizer.Add(ev);
    e->Emit(std::to_string(ev.user_id) + "|" + ev.session_id, record);
    return Status::OK();
  });
  job.set_reduce([](const std::string&, const std::vector<std::string>&,
                    dataflow::Emitter*) { return Status::OK(); });
  if (!job.Run().ok()) std::abort();
  uint64_t raw_sessions = sessionizer.Build().size();
  double raw_ms = raw_timer.ElapsedMs();

  std::printf("cost comparison for the same dashboard numbers:\n");
  std::printf("  %-16s scanned=%-10s shuffle=%-10s modeled=%-8.0fms "
              "real=%.1fms\n",
              "raw logs:",
              HumanBytes(job.stats().bytes_scanned).c_str(),
              HumanBytes(job.stats().bytes_shuffled).c_str(),
              job.stats().modeled_ms, raw_ms);
  uint64_t seq_bytes = 0;
  auto files = fx.warehouse->ListRecursive(
      sessions::SequenceStore::PartitionDir(bench::kBenchDay));
  for (const auto& f : *files) {
    if (f.path.find("/part-") != std::string::npos) seq_bytes += f.size;
  }
  std::printf("  %-16s scanned=%-10s shuffle=%-10s modeled=%-8s real=%.1fms\n",
              "sequences:", HumanBytes(seq_bytes).c_str(), "0 B", "~0",
              seq_ms);

  std::printf("\nshape checks:\n");
  std::printf("  session counts agree: %s (%llu vs %llu)\n",
              raw_sessions == summary->sessions ? "YES" : "NO",
              static_cast<unsigned long long>(raw_sessions),
              static_cast<unsigned long long>(summary->sessions));
  std::printf("  sessions match generator ground truth: %s\n",
              summary->sessions == fx.generator->truth().total_sessions
                  ? "YES"
                  : "NO");
  std::printf("  sequence path reads far less data: %s (%s vs %s)\n",
              seq_bytes * 5 < job.stats().bytes_scanned ? "YES" : "NO",
              HumanBytes(seq_bytes).c_str(),
              HumanBytes(job.stats().bytes_scanned).c_str());

  // Parallel summary over a replicated day (the fixture day is small;
  // replication makes the scan measurable). The rendered dashboard string
  // must be byte-identical at every thread count.
  std::printf("\nreplicated-day Summarize (requested --threads=%d):\n",
              threads);
  std::vector<sessions::SessionSequence> day;
  constexpr int kReplicas = 100;
  day.reserve(fx.daily.sequences.size() * kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    for (const auto& seq : fx.daily.sequences) day.push_back(seq);
  }
  bench::SpeedupReport("Summarize", [&](exec::Executor* exec) -> uint64_t {
    auto s = analytics::Summarize(day, fx.daily.dictionary, exec);
    if (!s.ok()) std::abort();
    return std::hash<std::string>{}(s->ToString());
  });
  return 0;
}
