// E19 (§3, Oink): memoized re-execution and shared warehouse scans.
//
// Oink runs "hundreds of periodic jobs", many of which re-scan the same
// hourly client-event data with overlapping plans. This bench builds a
// 7-day synthetic warehouse of hourly RCFile v2 partitions, registers
// four recurring workflows over the same hours, and measures three ways
// of running every (hour × workflow) tick:
//
//   baseline — memoization off, shared scans off: every workflow scans
//              its input independently (the pre-Oink status quo);
//   cold     — cache on + shared scans on, empty cache: same-directory
//              workflows ride one union scan, results are written to the
//              content-addressed cache under /warehouse/_cache;
//   warm     — a *fresh* engine over the same warehouse: every plan
//              fingerprint hits, nothing is scanned.
//
// All three must produce byte-identical per-workflow results at 1, 2 and
// 8 executor threads (results are folded into an order-sensitive digest
// every tick). After the warm pass, one late part is appended to a single
// hour and every tick re-run: exactly that hour's readers may recompute.
//
// Exits nonzero — CI runs this as a smoke test — when any digest
// diverges, the warm pass scans more than half the cold pass's bytes
// (the ≥2x acceptance floor; in practice warm scans zero bytes), the
// warm pass misses, or the late part invalidates more than one hour.
// With --verify-cache every warm hit is also recomputed and compared
// (OinkOptions::verify_cache), so an under-keyed plan fails the run.
// Results land in BENCH_oink.json section "oink_reuse".

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dataflow/relation.h"
#include "dataflow/relation_serde.h"
#include "oink/workflow.h"

namespace unilog {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* h, const std::string& bytes) {
  std::string framed;
  PutVarint64(&framed, bytes.size());
  framed += bytes;
  for (unsigned char c : framed) {
    *h ^= c;
    *h *= kFnvPrime;
  }
}

std::string HourInputDir(int64_t hour_index) {
  return "/warehouse/client_events/" +
         HourPartitionPath(hour_index * kMillisPerHour);
}

// The four recurring workflows, all over the same hourly directory — a
// shared-scan group of four on every cold tick. Mix of pushed predicates
// (globs, user-id equality), a residual ip filter, projections, and
// group-by stages.
std::vector<oink::WorkflowSpec> MakeWorkflows() {
  using dataflow::Value;
  std::vector<oink::WorkflowSpec> specs;

  oink::WorkflowSpec clicks;
  clicks.name = "hourly-click-rollup";
  clicks.input_dir = HourInputDir;
  clicks.filters = {{"event_name", "matches", Value::Str("*:click")}};
  clicks.project_cols = {"user_id"};
  clicks.project_names = {"uid"};
  clicks.stage = [](const dataflow::Relation& r) {
    return r.GroupBy({"uid"}, {dataflow::Aggregate{
                                  dataflow::Aggregate::Op::kCount, "", "n"}});
  };
  clicks.stage_id = "click-rollup-v1";
  specs.push_back(std::move(clicks));

  oink::WorkflowSpec impressions;
  impressions.name = "impression-volume";
  impressions.input_dir = HourInputDir;
  impressions.filters = {{"event_name", "matches", Value::Str("*:impression")}};
  impressions.project_cols = {"event_name"};
  impressions.project_names = {"name"};
  impressions.stage = [](const dataflow::Relation& r) {
    return r.GroupBy({"name"}, {dataflow::Aggregate{
                                   dataflow::Aggregate::Op::kCount, "", "n"}});
  };
  impressions.stage_id = "impression-volume-v1";
  specs.push_back(std::move(impressions));

  oink::WorkflowSpec trace;
  trace.name = "power-user-trace";
  trace.input_dir = HourInputDir;
  trace.filters = {{"user_id", "==", Value::Int(1000003)}};
  trace.project_cols = {"timestamp", "event_name"};
  trace.project_names = {"ts", "name"};
  specs.push_back(std::move(trace));

  oink::WorkflowSpec ip_slice;  // residual filter: ip never pushes
  ip_slice.name = "ip-slice";
  ip_slice.input_dir = HourInputDir;
  ip_slice.filters = {{"ip", "==", Value::Str("10.0.0.2")}};
  ip_slice.project_cols = {"user_id", "event_name"};
  ip_slice.project_names = {"uid", "name"};
  specs.push_back(std::move(ip_slice));

  return specs;
}

struct PassResult {
  double wall_ms = 0;
  uint64_t scan_bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t shared_groups = 0;
  uint64_t shared_fanout = 0;
  uint64_t bytes_saved = 0;
  uint64_t verified_hits = 0;
  uint64_t digest = kFnvOffset;
  bool ok = false;
};

// Runs every tick through a fresh engine, folding each workflow's
// serialized result into the digest after every tick.
PassResult RunPass(hdfs::MiniHdfs* fs, const std::vector<int64_t>& ticks,
                   oink::OinkOptions options, exec::Executor* exec) {
  PassResult r;
  oink::WorkflowEngine engine(fs, options, nullptr, exec);
  std::vector<oink::WorkflowSpec> specs = MakeWorkflows();
  std::vector<std::string> names;
  for (auto& spec : specs) {
    names.push_back(spec.name);
    Status st = engine.AddWorkflow(std::move(spec));
    if (!st.ok()) {
      std::fprintf(stderr, "AddWorkflow: %s\n", st.ToString().c_str());
      return r;
    }
  }
  bench::WallTimer timer;
  for (int64_t tick : ticks) {
    Status st = engine.RunTick(tick);
    if (!st.ok()) {
      std::fprintf(stderr, "RunTick(%lld): %s\n",
                   static_cast<long long>(tick), st.ToString().c_str());
      return r;
    }
    const oink::TickStats& t = engine.last_tick();
    r.scan_bytes += t.scan_bytes_decompressed;
    r.hits += t.cache_hits;
    r.misses += t.cache_misses;
    r.shared_groups += t.shared_scan_groups;
    r.shared_fanout += t.shared_scan_fanout;
    r.bytes_saved += t.bytes_saved;
    r.verified_hits += t.verified_hits;
    for (const std::string& name : names) {
      auto rel = engine.ResultFor(name);
      if (!rel.ok()) {
        std::fprintf(stderr, "ResultFor(%s): %s\n", name.c_str(),
                     rel.status().ToString().c_str());
        return r;
      }
      FnvMix(&r.digest, dataflow::SerializeRelation(*rel));
    }
  }
  r.wall_ms = timer.ElapsedMs();
  r.ok = true;
  return r;
}

bool ClearCache(hdfs::MiniHdfs* fs) {
  if (!fs->Exists("/warehouse/_cache")) return true;
  return fs->Delete("/warehouse/_cache", true).ok();
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  int users = bench::ParseUsersFlag(&argc, argv, 250);
  bool verify_cache = bench::ParseSwitchFlag(&argc, argv, "--verify-cache");

  std::printf("=== E19 / §3: Oink memoization + shared warehouse scans ===\n");
  std::printf("(7-day synthetic workload, %d users%s)\n\n", users,
              verify_cache ? ", --verify-cache" : "");

  // Seven days of hourly RCFile v2 partitions.
  workload::WorkloadOptions wopts;
  wopts.seed = 42;
  wopts.num_users = users;
  wopts.start = bench::kBenchDay;
  wopts.duration = 7 * kMillisPerDay;
  wopts.sessions_per_user_mean = 14.0;  // ~2 per day
  wopts.events_per_session_mean = 18;
  workload::WorkloadGenerator generator(wopts);
  hdfs::MiniHdfs fs;
  std::vector<TimeMs> hours;
  Status st = bench::MaterializeWarehouseHoursColumnar(
      &generator, &fs, "/warehouse/client_events", 8192, &hours);
  if (!st.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<int64_t> ticks;
  for (TimeMs hour : hours) ticks.push_back(hour / kMillisPerHour);
  uint64_t warehouse_bytes = 0;
  auto listing = fs.ListRecursive("/warehouse/client_events");
  if (!listing.ok()) return 1;
  for (const auto& f : *listing) warehouse_bytes += f.size;
  std::printf("warehouse: %zu hourly partitions, %s columnar, %zu workflows "
              "-> %zu ticks/pass\n\n",
              ticks.size(), HumanBytes(warehouse_bytes).c_str(),
              MakeWorkflows().size(), ticks.size());

  oink::OinkOptions baseline_opts;
  baseline_opts.enable_cache = false;
  baseline_opts.enable_shared_scans = false;
  oink::OinkOptions oink_opts;  // defaults: cache + shared scans on
  oink::OinkOptions warm_opts = oink_opts;
  warm_opts.verify_cache = verify_cache;

  // Serial results feed the report; 2- and 8-thread repeats must match
  // their digests bit for bit.
  PassResult baseline, cold, warm;
  bool digests_identical = true;
  std::printf("%8s %12s %12s %12s  %s\n", "threads", "baseline_ms", "cold_ms",
              "warm_ms", "digests");
  for (int threads : {1, 2, 8}) {
    exec::ExecOptions eopts;
    eopts.threads = threads;
    exec::Executor executor(eopts);
    if (!ClearCache(&fs)) return 1;
    PassResult b = RunPass(&fs, ticks, baseline_opts, &executor);
    PassResult c = RunPass(&fs, ticks, oink_opts, &executor);
    PassResult w = RunPass(&fs, ticks, warm_opts, &executor);
    if (!b.ok || !c.ok || !w.ok) return 1;
    bool same = b.digest == c.digest && c.digest == w.digest;
    if (threads == 1) {
      baseline = b;
      cold = c;
      warm = w;
    } else {
      same = same && b.digest == baseline.digest;
    }
    digests_identical = digests_identical && same;
    std::printf("%8d %12.2f %12.2f %12.2f  %s\n", threads, b.wall_ms,
                c.wall_ms, w.wall_ms, same ? "identical" : "MISMATCH!");
  }

  uint64_t total_jobs = ticks.size() * MakeWorkflows().size();
  double hit_rate = total_jobs > 0
                        ? static_cast<double>(warm.hits) /
                              static_cast<double>(total_jobs)
                        : 0.0;
  double bytes_reduction =
      warm.scan_bytes > 0 ? static_cast<double>(cold.scan_bytes) /
                                static_cast<double>(warm.scan_bytes)
                          : static_cast<double>(cold.scan_bytes);
  std::printf("\nbytes decompressed/pass: baseline %s, cold %s "
              "(shared scans: %llu unions x avg fanout %.1f), warm %s\n",
              HumanBytes(baseline.scan_bytes).c_str(),
              HumanBytes(cold.scan_bytes).c_str(),
              static_cast<unsigned long long>(cold.shared_groups),
              cold.shared_groups > 0
                  ? static_cast<double>(cold.shared_fanout) /
                        static_cast<double>(cold.shared_groups)
                  : 0.0,
              HumanBytes(warm.scan_bytes).c_str());
  std::printf("warm pass: %llu/%llu hits (%.0f%%), %s of cold scan work "
              "avoided, %llu verified recomputations\n",
              static_cast<unsigned long long>(warm.hits),
              static_cast<unsigned long long>(total_jobs), hit_rate * 100.0,
              HumanBytes(warm.bytes_saved).c_str(),
              static_cast<unsigned long long>(warm.verified_hits));

  // Late data: one extra part lands in a single mid-range hour. Only that
  // hour's four readers may miss on the next pass.
  size_t late_index = ticks.size() / 2;
  TimeMs late_hour = hours[late_index];
  {
    workload::WorkloadOptions lopts;
    lopts.seed = 77;
    lopts.num_users = 8;
    lopts.start = late_hour;
    lopts.duration = kMillisPerHour;
    lopts.sessions_per_user_mean = 1.0;
    lopts.events_per_session_mean = 6;
    workload::WorkloadGenerator late(lopts);
    std::string dir =
        "/warehouse/client_events/" + HourPartitionPath(late_hour);
    std::string body;
    columnar::RcFileWriter writer(&body, 1024);
    Status gen = late.Generate([&](const events::ClientEvent& ev) {
      if (TruncateToHour(ev.timestamp) == late_hour) writer.Add(ev);
    });
    if (!gen.ok() || !writer.Finish().ok()) return 1;
    if (!fs.WriteFile(dir + "/part-late", body).ok()) return 1;
  }
  exec::ExecOptions eopts;
  eopts.threads = 2;
  exec::Executor executor(eopts);
  PassResult incremental = RunPass(&fs, ticks, warm_opts, &executor);
  if (!incremental.ok) return 1;
  size_t per_tick = MakeWorkflows().size();
  bool invalidation_ok = incremental.misses == per_tick &&
                         incremental.hits == total_jobs - per_tick;
  std::printf("late part in hour %zu/%zu: %llu misses (want %zu), "
              "%llu hits, %s rescanned vs %s cold\n",
              late_index, ticks.size(),
              static_cast<unsigned long long>(incremental.misses), per_tick,
              static_cast<unsigned long long>(incremental.hits),
              HumanBytes(incremental.scan_bytes).c_str(),
              HumanBytes(cold.scan_bytes).c_str());

  // Under --verify-cache every hit is recomputed on purpose, so the warm
  // pass scans cold-sized bytes; the floor only applies to plain warm runs.
  bool reduction_ok =
      verify_cache ||
      (warm.scan_bytes * 2 <= cold.scan_bytes && cold.scan_bytes > 0);
  bool pass = digests_identical && reduction_ok && warm.hits == total_jobs &&
              warm.misses == 0 && invalidation_ok &&
              (!verify_cache || warm.verified_hits == warm.hits);
  std::printf("\nbytes-scanned reduction cold->warm: %.1fx (floor 2.0x%s)\n",
              bytes_reduction,
              verify_cache ? ", waived: hits recomputed for verification"
                           : "");
  std::printf("baseline == cold == warm at 1/2/8 threads: %s\n",
              digests_identical ? "YES" : "NO");
  std::printf("verdict: %s\n", pass ? "PASS" : "FAIL");

  Json section = Json::Object();
  section.Set("users", Json::Int(users));
  section.Set("hours", Json::Int(static_cast<int64_t>(ticks.size())));
  section.Set("workflows", Json::Int(static_cast<int64_t>(per_tick)));
  section.Set("warehouse_bytes", Json::Int(static_cast<int64_t>(warehouse_bytes)));
  section.Set("baseline_ms", Json::Number(baseline.wall_ms));
  section.Set("cold_ms", Json::Number(cold.wall_ms));
  section.Set("warm_ms", Json::Number(warm.wall_ms));
  section.Set("baseline_bytes_decompressed",
              Json::Int(static_cast<int64_t>(baseline.scan_bytes)));
  section.Set("cold_bytes_decompressed",
              Json::Int(static_cast<int64_t>(cold.scan_bytes)));
  section.Set("warm_bytes_decompressed",
              Json::Int(static_cast<int64_t>(warm.scan_bytes)));
  section.Set("bytes_reduction", Json::Number(bytes_reduction));
  section.Set("shared_scan_unions",
              Json::Int(static_cast<int64_t>(cold.shared_groups)));
  section.Set("shared_scan_fanout",
              Json::Int(static_cast<int64_t>(cold.shared_fanout)));
  section.Set("warm_hits", Json::Int(static_cast<int64_t>(warm.hits)));
  section.Set("warm_hit_rate", Json::Number(hit_rate));
  section.Set("warm_bytes_saved",
              Json::Int(static_cast<int64_t>(warm.bytes_saved)));
  section.Set("verified_hits",
              Json::Int(static_cast<int64_t>(warm.verified_hits)));
  section.Set("late_part_misses",
              Json::Int(static_cast<int64_t>(incremental.misses)));
  section.Set("late_part_bytes_rescanned",
              Json::Int(static_cast<int64_t>(incremental.scan_bytes)));
  section.Set("digests_identical_threads_1_2_8",
              Json::Bool(digests_identical));
  section.Set("verify_cache", Json::Bool(verify_cache));
  section.Set("pass", Json::Bool(pass));
  Status js =
      bench::MergeBenchJsonSection("BENCH_oink.json", "oink_reuse", section);
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_oink.json write failed: %s\n",
                 js.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_oink.json section 'oink_reuse'\n");
  return pass ? 0 : 1;
}
