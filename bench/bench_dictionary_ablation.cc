// E11 (§4.2, design-choice ablation): "we define the mapping between
// events and unicode code points such that more frequent events are
// assigned smaller code points. This in essence captures a form of
// variable-length coding." Compares bytes/event for the frequency-ordered
// assignment vs (a) a reversed (worst-case) assignment and (b) a
// name-ordered (arbitrary) assignment, with and without LZ on top.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/compress.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog {
namespace {

struct AblationRow {
  const char* label;
  uint64_t raw_bytes = 0;
  uint64_t compressed_bytes = 0;
  double bytes_per_event = 0;
};

AblationRow Encode(const char* label,
                   const sessions::EventDictionary& dict,
                   const std::vector<std::vector<std::string>>& sessions,
                   uint64_t total_events) {
  AblationRow row;
  row.label = label;
  std::string blob;
  for (const auto& names : sessions) {
    auto encoded = dict.EncodeNames(names);
    if (!encoded.ok()) std::abort();
    blob += *encoded;
  }
  row.raw_bytes = blob.size();
  row.compressed_bytes = Lz::Compress(blob).size();
  row.bytes_per_event =
      static_cast<double>(blob.size()) / static_cast<double>(total_events);
  return row;
}

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E11 / §4.2 ablation: frequency-ordered code points vs "
              "arbitrary assignment ===\n\n");

  // A bigger hierarchy so code points span the 1- and 2-byte UTF-8 bands.
  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 500);
  wopts.hierarchy_scale = 4;
  bench::DayFixture fx = bench::BuildDay(wopts);

  // Decode the day's sessions back into name lists once.
  std::vector<std::vector<std::string>> sessions;
  uint64_t total_events = 0;
  for (const auto& seq : fx.daily.sequences) {
    auto names = fx.daily.dictionary.DecodeToNames(seq.sequence);
    if (!names.ok()) std::abort();
    total_events += names->size();
    sessions.push_back(std::move(*names));
  }
  std::printf("alphabet: %zu event names; %s events in %zu sessions\n\n",
              fx.daily.dictionary.size(), WithCommas(total_events).c_str(),
              sessions.size());

  // Frequency-ordered (the paper's design) — the pipeline dictionary.
  AblationRow freq = Encode("frequency-ordered (paper)",
                            fx.daily.dictionary, sessions, total_events);

  // Reversed: most frequent events get the LARGEST code points.
  auto sorted = fx.daily.histogram.SortedByFrequency();
  std::reverse(sorted.begin(), sorted.end());
  auto reversed_dict = sessions::EventDictionary::FromSortedCounts(sorted);
  AblationRow reversed =
      Encode("reverse-frequency (worst)", *reversed_dict, sessions,
             total_events);

  // Name-ordered: arbitrary, frequency-blind assignment.
  std::vector<std::string> by_name;
  for (const auto& [name, count] : fx.daily.histogram.counts()) {
    by_name.push_back(name);
  }
  auto name_dict = sessions::EventDictionary::FromNamesInGivenOrder(by_name);
  AblationRow alpha =
      Encode("name-ordered (arbitrary)", *name_dict, sessions, total_events);

  std::printf("%-28s %12s %12s %14s\n", "assignment", "raw", "lz", "bytes/event");
  for (const AblationRow& row : {freq, alpha, reversed}) {
    std::printf("%-28s %12s %12s %14.3f\n", row.label,
                HumanBytes(row.raw_bytes).c_str(),
                HumanBytes(row.compressed_bytes).c_str(),
                row.bytes_per_event);
  }

  std::printf("\nshape checks:\n");
  std::printf("  frequency-ordered <= arbitrary <= reverse (raw bytes): %s\n",
              freq.raw_bytes <= alpha.raw_bytes &&
                      alpha.raw_bytes <= reversed.raw_bytes
                  ? "YES"
                  : "NO");
  std::printf("  frequency ordering saves %.1f%% vs worst case\n",
              100.0 * (1.0 - static_cast<double>(freq.raw_bytes) /
                                 static_cast<double>(reversed.raw_bytes)));
  std::printf("  variable-length coding keeps hot events at 1 byte "
              "(bytes/event %.3f < 2)\n", freq.bytes_per_event);
  return 0;
}
