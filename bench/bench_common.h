#ifndef UNILOG_BENCH_BENCH_COMMON_H_
#define UNILOG_BENCH_BENCH_COMMON_H_

// Shared setup for the experiment harnesses: synthesizes a day of client
// events straight into a simulated warehouse (bypassing Scribe — E1
// exercises delivery separately), then exposes the §4.2 daily-pipeline
// outputs that most experiments consume.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/rcfile.h"
#include "common/coding.h"
#include "common/compress.h"
#include "common/json.h"
#include "common/strings.h"
#include "common/sim_time.h"
#include "events/client_event.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "pipeline/daily_pipeline.h"
#include "workload/generator.h"

namespace unilog::bench {

inline constexpr TimeMs kBenchDay = 1345507200000;  // 2012-08-21 00:00 UTC

/// A synthesized day: warehouse with /logs/client_events/... hourly
/// partitions, the generator (ground truth), and the daily pipeline output.
struct DayFixture {
  std::unique_ptr<hdfs::MiniHdfs> warehouse;
  std::unique_ptr<workload::WorkloadGenerator> generator;
  pipeline::UserTable users;
  pipeline::DailyJobResult daily;
  uint64_t raw_log_bytes = 0;  // compressed on-disk client event bytes
};

/// Varint-frames one record into a file body.
inline void AppendFramedRecord(std::string* body, const std::string& record) {
  PutVarint64(body, record.size());
  body->append(record);
}

/// Writes generated events into hourly warehouse partitions the way the
/// log mover would have (framed, compressed, files of ~`target_bytes`).
inline Status MaterializeWarehouseDay(
    workload::WorkloadGenerator* generator, hdfs::MiniHdfs* warehouse,
    uint64_t target_file_bytes = 1 << 20) {
  struct HourBuf {
    std::string body;
    int part = 0;
  };
  std::map<TimeMs, HourBuf> hours;
  auto flush = [&](TimeMs hour, HourBuf* buf) -> Status {
    if (buf->body.empty()) return Status::OK();
    char name[32];
    std::snprintf(name, sizeof(name), "part-%05d", buf->part++);
    std::string dir = "/logs/client_events/" + HourPartitionPath(hour);
    UNILOG_RETURN_NOT_OK(
        warehouse->WriteFile(dir + "/" + name, Lz::Compress(buf->body)));
    buf->body.clear();
    return Status::OK();
  };
  Status write_status;
  Status gen_status =
      generator->Generate([&](const events::ClientEvent& ev) {
        if (!write_status.ok()) return;
        TimeMs hour = TruncateToHour(ev.timestamp);
        HourBuf& buf = hours[hour];
        std::string record = ev.Serialize();
        AppendFramedRecord(&buf.body, record);
        if (buf.body.size() >= target_file_bytes) {
          write_status = flush(hour, &buf);
        }
      });
  UNILOG_RETURN_NOT_OK(gen_status);
  UNILOG_RETURN_NOT_OK(write_status);
  for (auto& [hour, buf] : hours) {
    UNILOG_RETURN_NOT_OK(flush(hour, &buf));
  }
  return Status::OK();
}

/// Writes generated events into hourly warehouse partitions as RCFile v2
/// parts (zone maps, dictionaries, embedded checksums) — the layout the
/// Oink memoization bench scans, and the one whose per-group checksums
/// give the engine header-only content fingerprints. Rows within an hour
/// are time-sorted so zone maps stay tight. Appends each non-empty hour's
/// start time to `hours_out` (sorted) when non-null.
inline Status MaterializeWarehouseHoursColumnar(
    workload::WorkloadGenerator* generator, hdfs::MiniHdfs* warehouse,
    const std::string& root = "/warehouse/client_events",
    size_t rows_per_part = 8192, std::vector<TimeMs>* hours_out = nullptr) {
  std::map<TimeMs, std::vector<events::ClientEvent>> hours;
  UNILOG_RETURN_NOT_OK(generator->Generate([&](const events::ClientEvent& ev) {
    hours[TruncateToHour(ev.timestamp)].push_back(ev);
  }));
  for (auto& [hour, rows] : hours) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const events::ClientEvent& a,
                        const events::ClientEvent& b) {
                       return a.timestamp < b.timestamp;
                     });
    std::string dir = root + "/" + HourPartitionPath(hour);
    int part = 0;
    for (size_t off = 0; off < rows.size(); off += rows_per_part) {
      std::string body;
      columnar::RcFileWriter writer(&body, /*rows_per_group=*/1024);
      size_t end = std::min(rows.size(), off + rows_per_part);
      for (size_t i = off; i < end; ++i) {
        UNILOG_RETURN_NOT_OK(writer.Add(rows[i]));
      }
      UNILOG_RETURN_NOT_OK(writer.Finish());
      char name[32];
      std::snprintf(name, sizeof(name), "part-%05d", part++);
      UNILOG_RETURN_NOT_OK(warehouse->WriteFile(dir + "/" + name, body));
    }
    if (hours_out != nullptr) hours_out->push_back(hour);
  }
  return Status::OK();
}

/// Builds the standard fixture: generate → materialize → daily pipeline.
/// Aborts on failure (bench setup, not library code).
inline DayFixture BuildDay(workload::WorkloadOptions wopts,
                           dataflow::JobCostModel cost = {},
                           hdfs::HdfsOptions hdfs_options = {},
                           uint64_t target_file_bytes = 1 << 20) {
  DayFixture fx;
  fx.warehouse = std::make_unique<hdfs::MiniHdfs>(nullptr, hdfs_options);
  fx.generator = std::make_unique<workload::WorkloadGenerator>(wopts);
  Status st = MaterializeWarehouseDay(fx.generator.get(), fx.warehouse.get(),
                                      target_file_bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  fx.users = pipeline::UserTable::FromWorkload(*fx.generator);
  pipeline::DailyPipeline daily(fx.warehouse.get(), cost);
  auto result = daily.RunForDate(kBenchDay, fx.users);
  if (!result.ok()) {
    std::fprintf(stderr, "daily pipeline failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  fx.daily = std::move(result).value();
  auto files = fx.warehouse->ListRecursive("/logs/client_events");
  for (const auto& f : *files) fx.raw_log_bytes += f.size;
  return fx;
}

/// Default workload for macro experiments.
inline workload::WorkloadOptions DefaultWorkload(uint64_t seed = 42,
                                                 int users = 400) {
  workload::WorkloadOptions wopts;
  wopts.seed = seed;
  wopts.num_users = users;
  wopts.start = kBenchDay;
  wopts.duration = kMillisPerDay - 2 * kMillisPerHour;
  wopts.sessions_per_user_mean = 2.0;
  wopts.events_per_session_mean = 18;
  return wopts;
}

/// Wall-clock timer for macro measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Extracts a `--threads=N` flag from argv (removing it so google-benchmark
/// never sees it). Returns 1 when absent.
inline int ParseThreadsFlag(int* argc, char** argv) {
  int threads = 1;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 1) threads = 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads;
}

/// Extracts a `--users=N` flag from argv (removing it so google-benchmark
/// never sees it). Returns `fallback` when absent; CI smoke runs pass a
/// small N so the bench finishes in seconds.
inline int ParseUsersFlag(int* argc, char** argv, int fallback = 400) {
  int users = fallback;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--users=", 8) == 0) {
      users = std::atoi(argv[i] + 8);
      if (users < 1) users = 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return users;
}

/// Extracts a `--seed=N` flag from argv (removing it so google-benchmark
/// never sees it). Returns `fallback` when absent. Every fault-injecting
/// bench threads this single seed through its simulator, workload, and
/// fault schedule, and prints it whenever a contract or SLO is violated,
/// so any failing run reproduces exactly with `--seed=N`.
inline uint64_t ParseSeedFlag(int* argc, char** argv, uint64_t fallback = 42) {
  uint64_t seed = fallback;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return seed;
}

/// Extracts an integer `--<name>=N` flag from argv (removing it). Returns
/// `fallback` when absent.
inline long long ParseIntFlag(int* argc, char** argv, const char* name,
                              long long fallback) {
  long long value = fallback;
  size_t len = std::strlen(name);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      value = std::atoll(argv[i] + len + 1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

/// Extracts a boolean `--<name>` switch from argv (removing it). Returns
/// true when present; CI's verified-cache job passes `--verify-cache`.
inline bool ParseSwitchFlag(int* argc, char** argv, const char* name) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

/// Merges `section` into the JSON object document at `path` under `key`,
/// creating the file when absent — so several benches can contribute
/// sections to one machine-readable report (BENCH_scan.json).
inline Status MergeBenchJsonSection(const std::string& path,
                                    const std::string& key, Json section) {
  Json doc = Json::Object();
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    auto parsed = Json::Parse(text);
    if (parsed.ok() && parsed->is_object()) doc = std::move(*parsed);
  }
  doc.Set(key, std::move(section));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::string text = doc.Dump();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

/// Runs `work` (which must return a checksum of its output) under the
/// unilog::exec engine at 1, 2, 4, and 8 threads, printing wall time and
/// speedup vs the serial engine and verifying the checksum never changes.
/// Each configuration takes the best of `reps` runs.
inline void SpeedupReport(
    const char* title,
    const std::function<uint64_t(exec::Executor*)>& work, int reps = 3) {
  std::printf("--- %s: unilog::exec speedup ---\n", title);
  std::printf("%8s %12s %9s  %s\n", "threads", "best_ms", "speedup", "output");
  double serial_ms = 0;
  uint64_t serial_sum = 0;
  for (int threads : {1, 2, 4, 8}) {
    exec::ExecOptions opts;
    opts.threads = threads;
    exec::Executor executor(opts);
    double best_ms = 0;
    uint64_t checksum = 0;
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      checksum = work(&executor);
      double ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (threads == 1) {
      serial_ms = best_ms;
      serial_sum = checksum;
    }
    std::printf("%8d %12.2f %8.2fx  %s\n", threads, best_ms,
                best_ms > 0 ? serial_ms / best_ms : 0.0,
                checksum == serial_sum ? "identical" : "MISMATCH!");
  }
  std::printf("\n");
}

}  // namespace unilog::bench

#endif  // UNILOG_BENCH_BENCH_COMMON_H_
