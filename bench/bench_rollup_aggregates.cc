// E4 (§3.2): the five automatic rollup aggregation schemas, computed daily
// without any intervention from application developers. Prints per-level
// key counts, the dashboard's top rows, and the aggregation cost.

#include <cstdio>

#include "bench_common.h"
#include "events/rollup.h"

int main() {
  using namespace unilog;

  std::printf("=== E4 / §3.2: automatic rollup aggregates ===\n");
  bench::WallTimer setup_timer;
  bench::DayFixture fx = bench::BuildDay(bench::DefaultWorkload());
  std::printf("day built: %s events, %zu distinct names (%.0f ms)\n\n",
              WithCommas(fx.daily.histogram.total_events()).c_str(),
              fx.daily.histogram.distinct_events(), setup_timer.ElapsedMs());

  static const char* kSchemas[] = {
      "(client, page, section, component, element, action)",
      "(client, page, section, component, *, action)",
      "(client, page, section, *, *, action)",
      "(client, page, *, *, *, action)",
      "(client, *, *, *, *, action)",
  };
  std::printf("%-55s %10s\n", "schema", "keys");
  for (int level = 0; level < events::kRollupLevels; ++level) {
    const auto& cells =
        fx.daily.rollups.Level(static_cast<events::RollupLevel>(level));
    std::printf("%-55s %10zu\n", kSchemas[level], cells.size());
  }

  std::printf("\ntop-level dashboard rows (client,*,*,*,*,action) — "
              "total / logged_in / logged_out:\n");
  for (const auto& row :
       fx.daily.rollups.TopRows(events::RollupLevel::kNoPage, 8)) {
    std::printf("  %s\n", row.c_str());
  }

  // Per-country breakdown of the top key.
  const auto& top_level = fx.daily.rollups.Level(events::RollupLevel::kNoPage);
  if (!top_level.empty()) {
    const auto* best = &*top_level.begin();
    for (const auto& kv : top_level) {
      if (kv.second.total > best->second.total) best = &kv;
    }
    std::printf("\nby-country breakdown of %s:\n", best->first.c_str());
    for (const auto& [country, n] : best->second.by_country) {
      std::printf("  %-4s %8llu\n", country.c_str(),
                  static_cast<unsigned long long>(n));
    }
  }

  // Cost: recompute the rollups alone over the decoded events.
  bench::WallTimer rollup_timer;
  events::RollupAggregator fresh;
  for (const auto& [name, count] : fx.daily.histogram.counts()) {
    auto parsed = events::EventName::Parse(name);
    if (parsed.ok()) fresh.Add(*parsed, "us", true, count);
  }
  std::printf("\nrollup recomputation from histogram: %.1f ms for %zu keys\n",
              rollup_timer.ElapsedMs(), fresh.TotalKeys());

  // Shape check: coarser levels never have more keys.
  bool monotone = true;
  for (int level = 1; level < events::kRollupLevels; ++level) {
    if (fx.daily.rollups.Level(static_cast<events::RollupLevel>(level)).size() >
        fx.daily.rollups.Level(static_cast<events::RollupLevel>(level - 1))
            .size()) {
      monotone = false;
    }
  }
  std::printf("shape check — key count shrinks with coarser schema: %s\n",
              monotone ? "YES" : "NO");
  return 0;
}
