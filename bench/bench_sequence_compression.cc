// E5 (§4.2): "our materialized session sequences... are about fifty times
// smaller than the original client event logs". Measures compressed
// on-disk bytes of raw client event logs vs the materialized sequence
// partition, sweeping the verbosity of event_details.

#include <cstdio>

#include "bench_common.h"
#include "common/compress.h"
#include "common/rng.h"
#include "sessions/session_sequence.h"

namespace unilog {
namespace {

struct Row {
  int detail_pairs;
  uint64_t raw_bytes;
  uint64_t seq_bytes;
  double ratio;
  uint64_t events;
  uint64_t sessions;
};

Row RunOnce(int extra_detail_pairs, uint64_t seed) {
  workload::WorkloadOptions wopts = bench::DefaultWorkload(seed, 350);
  wopts.extra_detail_pairs = extra_detail_pairs;
  bench::DayFixture fx = bench::BuildDay(wopts);
  uint64_t seq_bytes = 0;
  auto files = fx.warehouse->ListRecursive(
      sessions::SequenceStore::PartitionDir(bench::kBenchDay));
  for (const auto& f : *files) {
    if (f.path.find("/part-") != std::string::npos) seq_bytes += f.size;
  }
  Row row;
  row.detail_pairs = extra_detail_pairs;
  row.raw_bytes = fx.raw_log_bytes;
  row.seq_bytes = seq_bytes;
  row.ratio = seq_bytes == 0 ? 0
                             : static_cast<double>(fx.raw_log_bytes) /
                                   static_cast<double>(seq_bytes);
  row.events = fx.daily.histogram.total_events();
  row.sessions = fx.daily.sequences.size();
  return row;
}

// Micro-assert for the pooled-compressor refactor: the state-reusing
// Lz::Compressor must emit byte-identical blocks to a fresh-state
// compressor on every input shape this bench's corpus exercises —
// including inputs that straddle the 64 KiB window and a reuse sequence
// of decreasing sizes (the stale-state hazard). Returns false on any
// divergence; main exits nonzero so CI catches a silent codec change.
bool PooledCompressorMatchesReference() {
  Rng rng(2012);
  std::vector<std::string> corpus;
  corpus.emplace_back();                  // empty
  corpus.emplace_back(200000, 'a');      // long self-overlapping run
  {
    std::string repetitive;
    for (int i = 0; i < 6000; ++i) {
      repetitive += "web:home:mentions:stream:avatar:profile_click|";
    }
    corpus.push_back(std::move(repetitive));  // > kWindow of phrases
  }
  {
    std::string random;
    for (int i = 0; i < 150000; ++i) {
      random.push_back(static_cast<char>(rng.Next64() & 0xFF));
    }
    corpus.push_back(std::move(random));
  }
  {
    // Matches whose distance straddles the window boundary exactly.
    std::string phrase = "window-straddle-probe-phrase";
    std::string data = phrase;
    data.append(Lz::kWindow - 3, '\x01');
    data += phrase;
    corpus.push_back(std::move(data));
  }
  corpus.emplace_back(100, 'z');  // small after big: stale-state probe
  corpus.emplace_back("tiny");

  Lz::Compressor compressor;  // ONE instance across the whole corpus
  std::string pooled;
  for (size_t i = 0; i < corpus.size(); ++i) {
    compressor.CompressTo(corpus[i], &pooled);
    std::string reference = Lz::CompressReference(corpus[i]);
    if (pooled != reference) {
      std::fprintf(stderr,
                   "FAIL: pooled Lz output diverges from reference on "
                   "corpus[%zu] (%zu bytes): %zu vs %zu compressed bytes\n",
                   i, corpus[i].size(), pooled.size(), reference.size());
      return false;
    }
    auto back = Lz::Decompress(pooled);
    if (!back.ok() || *back != corpus[i]) {
      std::fprintf(stderr, "FAIL: pooled Lz block fails round-trip on "
                           "corpus[%zu]\n", i);
      return false;
    }
  }
  std::printf("pooled-compressor check: %zu corpus inputs byte-identical "
              "to fresh-state reference\n\n", corpus.size());
  return true;
}

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E5 / §4.2: session sequences vs raw client event logs "
              "(compressed bytes on disk) ===\n");
  if (!PooledCompressorMatchesReference()) return 1;
  std::printf("paper: sequences are ~50x smaller than the raw logs.\n\n");
  std::printf("%13s %14s %14s %9s %10s %10s\n", "detail_pairs", "raw_logs",
              "sequences", "ratio", "events", "sessions");

  double best_ratio = 0;
  for (int details : {0, 2, 5, 10}) {
    Row row = RunOnce(details, 42 + details);
    std::printf("%13d %14s %14s %8.1fx %10llu %10llu\n", row.detail_pairs,
                HumanBytes(row.raw_bytes).c_str(),
                HumanBytes(row.seq_bytes).c_str(), row.ratio,
                static_cast<unsigned long long>(row.events),
                static_cast<unsigned long long>(row.sessions));
    if (row.ratio > best_ratio) best_ratio = row.ratio;
  }
  std::printf(
      "\nshape check — paper reports ~50x; with production-verbosity "
      "details (5-10 pairs)\nthe ratio lands in the tens: %s (best %.0fx)\n",
      best_ratio >= 20 ? "YES" : "NO", best_ratio);
  std::printf(
      "note: absolute ratios depend on detail verbosity; the paper's logs "
      "carried rich nested\npayloads, our sweep shows the ratio growing "
      "with payload size exactly as expected.\n");
  return 0;
}
