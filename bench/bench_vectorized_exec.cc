// E23: vectorized batch execution vs the row engine on the §4.2 daily
// filter+group workload. One day of client events is written as RCFile v2
// warehouse partitions, scanned once, and then the same plan —
//
//   FILTER event_name matches "web:*" AND timestamp in [T, T+18h)
//   GROUP BY event_name: count, sum(user_id), count-distinct(session)
//
// — is executed by the row engine (boxed Values, row-at-a-time) and by the
// batch engine (typed column batches + selection vectors, dictionary
// event names). Reports rows/sec for both and their speedup; the answers
// must be byte-identical (FNV digest of SerializeRelation), including the
// batch engine at 1/2/8 threads. Exits nonzero on any divergence or if
// the batch engine misses its 3x rows/sec acceptance floor. Results merge
// into BENCH_scan.json under "vectorized_exec".

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dataflow/columnar_scan.h"
#include "dataflow/planner.h"
#include "dataflow/relation_serde.h"
#include "dataflow/vector_engine.h"

namespace unilog {
namespace {

uint64_t Fnv64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  int users = bench::ParseUsersFlag(&argc, argv, 400);
  std::printf(
      "=== E23: vectorized batch execution vs row engine (filter+group) "
      "===\n(one day, %d users)\n\n",
      users);

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, users);
  workload::WorkloadGenerator generator(wopts);
  hdfs::MiniHdfs fs;
  Status st = bench::MaterializeWarehouseHoursColumnar(&generator, &fs);
  if (!st.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto opened =
      dataflow::ColumnarEventScan::Open(&fs, "/warehouse/client_events");
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto scan = *opened;
  auto rows_in = scan->Materialize(nullptr);
  auto batch_scan =
      std::static_pointer_cast<dataflow::ColumnarEventScan>(scan->Clone());
  auto batch_in = batch_scan->MaterializeBatches(nullptr);
  auto stats = scan->Stats();
  if (!rows_in.ok() || !batch_in.ok() || !stats.ok()) {
    std::fprintf(stderr, "scan failed\n");
    return 1;
  }
  const size_t input_rows = rows_in->rows().size();

  const std::vector<dataflow::FilterExpr> exprs = {
      {"event_name", "matches", dataflow::Value::Str("web:*")},
      {"timestamp", ">=", dataflow::Value::Int(bench::kBenchDay)},
      {"timestamp", "<",
       dataflow::Value::Int(bench::kBenchDay + 18 * kMillisPerHour)},
  };
  const std::vector<dataflow::Aggregate> aggs = {
      {dataflow::Aggregate::Op::kCount, "", "n"},
      {dataflow::Aggregate::Op::kSum, "user_id", "uid_sum"},
      {dataflow::Aggregate::Op::kCountDistinct, "session_id", "sessions"},
  };
  const std::vector<std::string> keys = {"event_name"};

  auto row_pass = [&]() -> Result<dataflow::Relation> {
    dataflow::Relation rel = *rows_in;
    for (const auto& e : exprs) {
      UNILOG_ASSIGN_OR_RETURN(size_t idx, rel.ColumnIndex(e.column));
      rel = rel.Filter([&e, idx](const dataflow::Row& row) {
        return dataflow::EvalFilterOp(row[idx], e.op, e.literal);
      });
    }
    return rel.GroupBy(keys, aggs);
  };
  auto batch_pass =
      [&](const std::vector<dataflow::FilterExpr>& filter_order,
          exec::Executor* executor) -> Result<dataflow::Relation> {
    UNILOG_ASSIGN_OR_RETURN(dataflow::BatchRelation filtered,
                            batch_in->Filter(filter_order, executor));
    return filtered.GroupBy(keys, aggs, executor);
  };

  constexpr int kReps = 5;
  double row_ms = 0;
  uint64_t row_digest = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::WallTimer timer;
    auto out = row_pass();
    double ms = timer.ElapsedMs();
    if (!out.ok()) {
      std::fprintf(stderr, "row pass failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    row_digest = Fnv64(dataflow::SerializeRelation(*out));
    if (rep == 0 || ms < row_ms) row_ms = ms;
  }

  double batch_ms = 0;
  uint64_t batch_digest = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::WallTimer timer;
    auto out = batch_pass(exprs, nullptr);
    double ms = timer.ElapsedMs();
    if (!out.ok()) {
      std::fprintf(stderr, "batch pass failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    batch_digest = Fnv64(dataflow::SerializeRelation(*out));
    if (rep == 0 || ms < batch_ms) batch_ms = ms;
  }

  // Planner-ordered filters and parallel execution must not move the
  // answer by a single byte.
  bool digests_identical = batch_digest == row_digest;
  auto ordered = dataflow::OrderFilters(*stats, exprs);
  {
    auto out = batch_pass(ordered, nullptr);
    if (!out.ok() ||
        Fnv64(dataflow::SerializeRelation(*out)) != row_digest) {
      digests_identical = false;
    }
  }
  for (int threads : {1, 2, 8}) {
    exec::ExecOptions eopts;
    eopts.threads = threads;
    exec::Executor executor(eopts);
    auto out = batch_pass(exprs, &executor);
    if (!out.ok() ||
        Fnv64(dataflow::SerializeRelation(*out)) != row_digest) {
      digests_identical = false;
      std::fprintf(stderr, "parallel batch divergence at %d threads\n",
                   threads);
    }
  }

  double rows_per_sec_row = input_rows / (row_ms / 1000.0);
  double rows_per_sec_batch = input_rows / (batch_ms / 1000.0);
  double speedup = rows_per_sec_batch / rows_per_sec_row;

  std::printf("%12s %12s %14s  %s\n", "engine", "best_ms", "rows_per_sec",
              "digest");
  std::printf("%12s %12.2f %14.0f  %s\n", "row", row_ms, rows_per_sec_row,
              HexU64(row_digest).c_str());
  std::printf("%12s %12.2f %14.0f  %s\n", "batch", batch_ms,
              rows_per_sec_batch, HexU64(batch_digest).c_str());
  std::printf("\ninput_rows=%zu speedup=%.2fx digests=%s\n", input_rows,
              speedup, digests_identical ? "identical" : "MISMATCH!");

  Json section = Json::Object();
  section.Set("users", Json::Int(static_cast<int64_t>(users)));
  section.Set("input_rows", Json::Int(static_cast<int64_t>(input_rows)));
  section.Set("rows_per_sec_row", Json::Number(rows_per_sec_row));
  section.Set("rows_per_sec_batch", Json::Number(rows_per_sec_batch));
  section.Set("batch_speedup", Json::Number(speedup));
  section.Set("answer_digest_row", Json::Str(HexU64(row_digest)));
  section.Set("answer_digest_batch", Json::Str(HexU64(batch_digest)));
  section.Set("digests_identical", Json::Bool(digests_identical));
  Status merged =
      bench::MergeBenchJsonSection("BENCH_scan.json", "vectorized_exec",
                                   std::move(section));
  if (!merged.ok()) {
    std::fprintf(stderr, "BENCH_scan.json: %s\n", merged.ToString().c_str());
    return 1;
  }

  if (!digests_identical) {
    std::fprintf(stderr,
                 "FAIL: batch answers diverge from the row engine\n");
    return 1;
  }
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: batch speedup %.2fx under the 3x acceptance floor\n",
                 speedup);
    return 1;
  }
  return 0;
}
