// E23/E24: vectorized batch execution vs the row engine on the §4.2 daily
// filter+group workload. One day of client events is written as RCFile v2
// warehouse partitions, scanned once, and then the same plan —
//
//   FILTER event_name matches "web:*" AND timestamp in [T, T+18h)
//   GROUP BY event_name: count, sum(user_id), count-distinct(session)
//
// — is executed three ways: the row engine (boxed Values, row-at-a-time),
// the unfused batch engine (Filter then GroupBy over selection vectors),
// and the fused late-materialization pipeline (FilterGroupBy: dictionary-
// domain predicates on int32 codes, one pass per batch straight into the
// aggregation table, strings only touched at group-key emission). All
// answers must be byte-identical (FNV digest of SerializeRelation) across
// engines, planner filter orders, morsel sizes, and thread counts; the
// parallel sweeps run on the morsel-driven work-stealing scheduler.
// Exits nonzero on any divergence, if the unfused batch engine misses its
// 3x floor, or if the fused pipeline misses its 10x-vs-row floor.
// Results merge into BENCH_scan.json under "vectorized_exec". Pass
// --threads=N to add N to the thread sweep table.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dataflow/columnar_scan.h"
#include "dataflow/planner.h"
#include "dataflow/relation_serde.h"
#include "dataflow/vector_engine.h"

namespace unilog {
namespace {

uint64_t Fnv64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  int extra_threads = bench::ParseThreadsFlag(&argc, argv);
  int users = bench::ParseUsersFlag(&argc, argv, 400);
  std::printf(
      "=== E23/E24: row vs batch vs fused late-materialization "
      "(filter+group) ===\n(one day, %d users)\n\n",
      users);

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, users);
  workload::WorkloadGenerator generator(wopts);
  hdfs::MiniHdfs fs;
  Status st = bench::MaterializeWarehouseHoursColumnar(&generator, &fs);
  if (!st.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto opened =
      dataflow::ColumnarEventScan::Open(&fs, "/warehouse/client_events");
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto scan = *opened;
  auto rows_in = scan->Materialize(nullptr);
  auto batch_scan =
      std::static_pointer_cast<dataflow::ColumnarEventScan>(scan->Clone());
  auto batch_in = batch_scan->MaterializeBatches(nullptr);
  auto stats = scan->Stats();
  if (!rows_in.ok() || !batch_in.ok() || !stats.ok()) {
    std::fprintf(stderr, "scan failed\n");
    return 1;
  }
  const size_t input_rows = rows_in->rows().size();

  const std::vector<dataflow::FilterExpr> exprs = {
      {"event_name", "matches", dataflow::Value::Str("web:*")},
      {"timestamp", ">=", dataflow::Value::Int(bench::kBenchDay)},
      {"timestamp", "<",
       dataflow::Value::Int(bench::kBenchDay + 18 * kMillisPerHour)},
  };
  const std::vector<dataflow::Aggregate> aggs = {
      {dataflow::Aggregate::Op::kCount, "", "n"},
      {dataflow::Aggregate::Op::kSum, "user_id", "uid_sum"},
      {dataflow::Aggregate::Op::kCountDistinct, "session_id", "sessions"},
  };
  const std::vector<std::string> keys = {"event_name"};

  auto row_pass = [&]() -> Result<dataflow::Relation> {
    dataflow::Relation rel = *rows_in;
    for (const auto& e : exprs) {
      UNILOG_ASSIGN_OR_RETURN(size_t idx, rel.ColumnIndex(e.column));
      rel = rel.Filter([&e, idx](const dataflow::Row& row) {
        return dataflow::EvalFilterOp(row[idx], e.op, e.literal);
      });
    }
    return rel.GroupBy(keys, aggs);
  };
  auto batch_pass =
      [&](const std::vector<dataflow::FilterExpr>& filter_order,
          exec::Executor* executor) -> Result<dataflow::Relation> {
    UNILOG_ASSIGN_OR_RETURN(dataflow::BatchRelation filtered,
                            batch_in->Filter(filter_order, executor));
    return filtered.GroupBy(keys, aggs, executor);
  };
  auto fused_pass =
      [&](const std::vector<dataflow::FilterExpr>& filter_order,
          exec::Executor* executor, dataflow::KernelStats* kstats,
          const exec::MorselOptions& morsels =
              exec::MorselOptions{}) -> Result<dataflow::Relation> {
    return batch_in->FilterGroupBy(filter_order, keys, aggs, executor,
                                   kstats, morsels);
  };

  constexpr int kReps = 5;
  double row_ms = 0;
  uint64_t row_digest = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::WallTimer timer;
    auto out = row_pass();
    double ms = timer.ElapsedMs();
    if (!out.ok()) {
      std::fprintf(stderr, "row pass failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    row_digest = Fnv64(dataflow::SerializeRelation(*out));
    if (rep == 0 || ms < row_ms) row_ms = ms;
  }

  double batch_ms = 0;
  uint64_t batch_digest = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::WallTimer timer;
    auto out = batch_pass(exprs, nullptr);
    double ms = timer.ElapsedMs();
    if (!out.ok()) {
      std::fprintf(stderr, "batch pass failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    batch_digest = Fnv64(dataflow::SerializeRelation(*out));
    if (rep == 0 || ms < batch_ms) batch_ms = ms;
  }

  double fused_ms = 0;
  uint64_t fused_digest = 0;
  dataflow::KernelStats kernel_stats;
  for (int rep = 0; rep < kReps; ++rep) {
    dataflow::KernelStats ks;
    bench::WallTimer timer;
    auto out = fused_pass(exprs, nullptr, &ks);
    double ms = timer.ElapsedMs();
    if (!out.ok()) {
      std::fprintf(stderr, "fused pass failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    fused_digest = Fnv64(dataflow::SerializeRelation(*out));
    if (rep == 0 || ms < fused_ms) fused_ms = ms;
    kernel_stats = ks;
  }

  // Planner-ordered filters must not move any engine's answer by a byte.
  bool digests_identical =
      batch_digest == row_digest && fused_digest == row_digest;
  auto ordered = dataflow::OrderFilters(*stats, exprs);
  {
    auto out = batch_pass(ordered, nullptr);
    if (!out.ok() ||
        Fnv64(dataflow::SerializeRelation(*out)) != row_digest) {
      digests_identical = false;
      std::fprintf(stderr, "ordered-filter batch divergence\n");
    }
    dataflow::KernelStats ks;
    auto fout = fused_pass(ordered, nullptr, &ks);
    if (!fout.ok() ||
        Fnv64(dataflow::SerializeRelation(*fout)) != row_digest) {
      digests_identical = false;
      std::fprintf(stderr, "ordered-filter fused divergence\n");
    }
  }

  // Morsel-size sweep: packing granularity (single-unit morsels through
  // one-giant-morsel) must never change a byte of output.
  for (uint64_t morsel_bytes : {uint64_t{1}, uint64_t{4096},
                                uint64_t{256} << 10, uint64_t{1} << 30}) {
    exec::ExecOptions eopts;
    eopts.threads = 2;
    exec::Executor executor(eopts);
    exec::MorselOptions mopts;
    mopts.morsel_bytes = morsel_bytes;
    dataflow::KernelStats ks;
    auto out = fused_pass(exprs, &executor, &ks, mopts);
    if (!out.ok() ||
        Fnv64(dataflow::SerializeRelation(*out)) != row_digest) {
      digests_identical = false;
      std::fprintf(stderr, "morsel divergence at morsel_bytes=%llu\n",
                   static_cast<unsigned long long>(morsel_bytes));
    }
  }

  // Thread sweep: unfused and fused parallel answers vs the row digest,
  // with the morsel scheduler's steal traffic per thread count.
  std::vector<int> thread_counts = {1, 2, 8};
  if (extra_threads > 1 && extra_threads != 2 && extra_threads != 8) {
    thread_counts.push_back(extra_threads);
  }
  std::printf("%8s %12s %14s %10s %8s  %s\n", "threads", "fused_ms",
              "rows_per_sec", "vs_row", "steals", "digest");
  uint64_t total_steals = 0;
  exec::MorselStats morsel_totals;
  for (int threads : thread_counts) {
    exec::ExecOptions eopts;
    eopts.threads = threads;
    exec::Executor executor(eopts);
    auto out = batch_pass(exprs, &executor);
    if (!out.ok() ||
        Fnv64(dataflow::SerializeRelation(*out)) != row_digest) {
      digests_identical = false;
      std::fprintf(stderr, "parallel batch divergence at %d threads\n",
                   threads);
    }
    double t_ms = 0;
    uint64_t t_digest = 0;
    bool t_ok = true;
    for (int rep = 0; rep < kReps; ++rep) {
      dataflow::KernelStats ks;
      bench::WallTimer timer;
      auto fout = fused_pass(exprs, &executor, &ks);
      double ms = timer.ElapsedMs();
      if (!fout.ok()) {
        t_ok = false;
        break;
      }
      t_digest = Fnv64(dataflow::SerializeRelation(*fout));
      if (rep == 0 || ms < t_ms) t_ms = ms;
    }
    if (!t_ok || t_digest != row_digest) {
      digests_identical = false;
      std::fprintf(stderr, "parallel fused divergence at %d threads\n",
                   threads);
      continue;
    }
    exec::MorselStats mstats = executor.morsel_totals();
    total_steals += mstats.steals;
    morsel_totals.MergeFrom(mstats);
    std::printf("%8d %12.2f %14.0f %9.2fx %8llu  %s\n", threads, t_ms,
                input_rows / (t_ms / 1000.0), row_ms / t_ms,
                static_cast<unsigned long long>(mstats.steals),
                HexU64(t_digest).c_str());
  }

  double rows_per_sec_row = input_rows / (row_ms / 1000.0);
  double rows_per_sec_batch = input_rows / (batch_ms / 1000.0);
  double rows_per_sec_fused = input_rows / (fused_ms / 1000.0);
  double speedup = rows_per_sec_batch / rows_per_sec_row;
  double fused_vs_row = rows_per_sec_fused / rows_per_sec_row;
  double fused_vs_batch = rows_per_sec_fused / rows_per_sec_batch;

  std::printf("\n%12s %12s %14s  %s\n", "engine", "best_ms", "rows_per_sec",
              "digest");
  std::printf("%12s %12.2f %14.0f  %s\n", "row", row_ms, rows_per_sec_row,
              HexU64(row_digest).c_str());
  std::printf("%12s %12.2f %14.0f  %s\n", "batch", batch_ms,
              rows_per_sec_batch, HexU64(batch_digest).c_str());
  std::printf("%12s %12.2f %14.0f  %s\n", "fused", fused_ms,
              rows_per_sec_fused, HexU64(fused_digest).c_str());
  std::printf(
      "\ninput_rows=%zu batch=%.2fx fused=%.2fx (vs batch %.2fx) "
      "dict_pruned=%llu digests=%s\n",
      input_rows, speedup, fused_vs_row, fused_vs_batch,
      static_cast<unsigned long long>(kernel_stats.dict_domain_rows_pruned),
      digests_identical ? "identical" : "MISMATCH!");

  Json section = Json::Object();
  section.Set("users", Json::Int(static_cast<int64_t>(users)));
  section.Set("input_rows", Json::Int(static_cast<int64_t>(input_rows)));
  section.Set("rows_per_sec_row", Json::Number(rows_per_sec_row));
  section.Set("rows_per_sec_batch", Json::Number(rows_per_sec_batch));
  section.Set("rows_per_sec_fused", Json::Number(rows_per_sec_fused));
  section.Set("batch_speedup", Json::Number(speedup));
  section.Set("fused_speedup_vs_row", Json::Number(fused_vs_row));
  section.Set("fused_speedup_vs_batch", Json::Number(fused_vs_batch));
  section.Set("dict_domain_rows_pruned",
              Json::Int(static_cast<int64_t>(
                  kernel_stats.dict_domain_rows_pruned)));
  section.Set("morsel_steals",
              Json::Int(static_cast<int64_t>(total_steals)));
  section.Set("morsel_count",
              Json::Int(static_cast<int64_t>(morsel_totals.morsels)));
  section.Set("morsel_max_bytes",
              Json::Int(static_cast<int64_t>(morsel_totals.max_morsel_bytes)));
  section.Set("answer_digest_row", Json::Str(HexU64(row_digest)));
  section.Set("answer_digest_batch", Json::Str(HexU64(batch_digest)));
  section.Set("answer_digest_fused", Json::Str(HexU64(fused_digest)));
  section.Set("digests_identical", Json::Bool(digests_identical));
  Status merged =
      bench::MergeBenchJsonSection("BENCH_scan.json", "vectorized_exec",
                                   std::move(section));
  if (!merged.ok()) {
    std::fprintf(stderr, "BENCH_scan.json: %s\n", merged.ToString().c_str());
    return 1;
  }

  if (!digests_identical) {
    std::fprintf(stderr,
                 "FAIL: engine answers diverge from the row engine\n");
    return 1;
  }
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: batch speedup %.2fx under the 3x acceptance floor\n",
                 speedup);
    return 1;
  }
  if (fused_vs_row < 10.0) {
    std::fprintf(stderr,
                 "FAIL: fused speedup %.2fx under the 10x acceptance floor\n",
                 fused_vs_row);
    return 1;
  }
  return 0;
}
