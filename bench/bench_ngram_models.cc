// E9 (§5.4): n-gram language models over session sequences. "Metrics such
// as cross entropy and perplexity can be used to quantify how well a
// particular n-gram model explains the data, which gives us a sense of how
// much temporal signal there is in user behavior." Trains orders 1-5 on a
// train split of the day's sequences and reports held-out perplexity: the
// expected shape is a large unigram→bigram drop (the planted follow-up
// structure) with diminishing returns after.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/utf8.h"
#include "nlp/ngram_model.h"

int main() {
  using namespace unilog;
  std::printf("=== E9 / §5.4: n-gram language models over session "
              "sequences ===\n\n");

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 700);
  wopts.follow_up_probability = 0.35;  // the planted temporal signal
  bench::DayFixture fx = bench::BuildDay(wopts);

  // Decode sequences into symbol streams.
  std::vector<nlp::SymbolSequence> all;
  for (const auto& seq : fx.daily.sequences) {
    auto cps = DecodeUtf8(seq.sequence);
    if (cps.ok() && cps->size() >= 2) all.push_back(std::move(*cps));
  }
  size_t train_size = all.size() * 8 / 10;
  std::vector<nlp::SymbolSequence> train(all.begin(),
                                         all.begin() + train_size);
  std::vector<nlp::SymbolSequence> test(all.begin() + train_size, all.end());
  std::printf("sessions: %zu train / %zu test, alphabet %zu events\n\n",
              train.size(), test.size(), fx.daily.dictionary.size());

  std::printf("%3s %15s %15s %12s\n", "n", "cross-entropy", "perplexity",
              "train_ms");
  std::vector<double> perplexities;
  for (int n = 1; n <= 5; ++n) {
    bench::WallTimer timer;
    nlp::NgramModel model(n, fx.daily.dictionary.size());
    model.TrainBatch(train);
    double train_ms = timer.ElapsedMs();
    double h = model.CrossEntropy(test).value();
    double ppl = model.Perplexity(test).value();
    perplexities.push_back(ppl);
    std::printf("%3d %15.3f %15.1f %12.1f\n", n, h, ppl, train_ms);
  }

  double bigram_gain = perplexities[0] - perplexities[1];
  double trigram_gain = perplexities[1] - perplexities[2];
  std::printf(
      "\nshape checks:\n"
      "  bigram << unigram (temporal signal present):            %s\n"
      "  gains stop after the bigram (behaviour ~1st-order Markov;\n"
      "    higher orders only pay a sparse-context penalty):      %s "
      "(unigram->bigram %.1f vs bigram->trigram %.1f)\n",
      perplexities[1] < 0.7 * perplexities[0] ? "YES" : "NO",
      bigram_gain > trigram_gain ? "YES" : "NO", bigram_gain, trigram_gain);
  std::printf(
      "  (paper: 'how the user behaves right now is strongly influenced "
      "by immediately\n   preceding actions; less so by an action 5 steps "
      "ago')\n");
  return 0;
}
