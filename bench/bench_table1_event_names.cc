// E2 (Table 1): the six-level hierarchical event-name scheme — parse /
// format / wildcard-match microbenchmarks plus a reproduction of the
// table itself and the paper's slice-and-dice examples.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "events/event_name.h"
#include "workload/hierarchy.h"

namespace unilog {
namespace {

const char* kExample = "web:home:mentions:stream:avatar:profile_click";

void BM_EventNameParse(benchmark::State& state) {
  for (auto _ : state) {
    auto name = events::EventName::Parse(kExample);
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_EventNameParse);

void BM_EventNameFormat(benchmark::State& state) {
  auto name = events::EventName::Parse(kExample).value();
  for (auto _ : state) {
    std::string s = name.ToString();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_EventNameFormat);

void BM_PatternMatchPrefix(benchmark::State& state) {
  events::EventPattern pattern("web:home:mentions:*");
  auto universe = workload::ViewHierarchy::TwitterLike().event_names();
  size_t i = 0;
  for (auto _ : state) {
    bool m = pattern.Matches(universe[i++ % universe.size()]);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PatternMatchPrefix);

void BM_PatternMatchSuffix(benchmark::State& state) {
  events::EventPattern pattern("*:profile_click");
  auto universe = workload::ViewHierarchy::TwitterLike().event_names();
  size_t i = 0;
  for (auto _ : state) {
    bool m = pattern.Matches(universe[i++ % universe.size()]);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PatternMatchSuffix);

void BM_UniverseSlice(benchmark::State& state) {
  // Full slice-and-dice over the whole hierarchy per iteration.
  auto universe = workload::ViewHierarchy::TwitterLike().event_names();
  events::EventPattern pattern("*:impression");
  for (auto _ : state) {
    size_t hits = 0;
    for (const auto& name : universe) {
      if (pattern.Matches(name)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(universe.size()));
}
BENCHMARK(BM_UniverseSlice);

void PrintTable1() {
  std::printf("=== E2 / Table 1: hierarchical decomposition of client event "
              "names ===\n");
  auto name = events::EventName::Parse(kExample).value();
  std::printf("example event: %s\n\n", kExample);
  std::printf("%-10s | %-35s | %s\n", "component", "description", "value");
  std::printf("-----------+------------------------------------+---------\n");
  const char* descriptions[6] = {
      "client application",      "page or functional grouping",
      "tab or stream on a page", "component, object, or objects",
      "UI element within the component", "actual user or application action"};
  for (int i = 0; i < events::kNameComponents; ++i) {
    auto c = static_cast<events::NameComponent>(i);
    std::printf("%-10s | %-35s | %s\n", events::NameComponentLabel(c),
                descriptions[i], name.component(c).c_str());
  }

  auto universe = workload::ViewHierarchy::TwitterLike().event_names();
  std::printf("\ngenerated universe: %zu event names across 4 clients\n",
              universe.size());
  for (const char* p :
       {"web:home:mentions:*", "*:profile_click", "web:*:*:*:*:impression"}) {
    events::EventPattern pattern(p);
    size_t hits = 0;
    for (const auto& n : universe) {
      if (pattern.Matches(n)) ++hits;
    }
    std::printf("  slice %-28s -> %zu events\n", p, hits);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  unilog::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
