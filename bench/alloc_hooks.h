#ifndef UNILOG_BENCH_ALLOC_HOOKS_H_
#define UNILOG_BENCH_ALLOC_HOOKS_H_

// Global allocation counter for the allocs/op bench columns. Including
// this header REPLACES the global operator new/delete for the whole
// binary, so it must be included from exactly one translation unit — the
// bench's main .cc — and never from library code. Counting is a relaxed
// atomic increment: cheap enough to leave on for every measured section,
// and exact (not sampled) so allocs/op deltas are stable run to run.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace unilog::bench {

inline std::atomic<uint64_t> g_alloc_count{0};

/// Total operator-new calls since process start.
inline uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// Measures the allocation count across a scope.
class AllocScope {
 public:
  AllocScope() : start_(AllocCount()) {}
  uint64_t Delta() const { return AllocCount() - start_; }

 private:
  uint64_t start_;
};

}  // namespace unilog::bench

void* operator new(std::size_t size) {
  unilog::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  unilog::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
#if defined(_WIN32)
  void* p = _aligned_malloc(size ? size : 1, static_cast<std::size_t>(align));
#else
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) /
                                   static_cast<std::size_t>(align) *
                                   static_cast<std::size_t>(align));
#endif
  if (p != nullptr) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // UNILOG_BENCH_ALLOC_HOOKS_H_
