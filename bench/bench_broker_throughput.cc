// E21/E25: broker tier throughput. Three tiers under the same per-node
// service rate R (token bucket, 1 s burst) and the same saturating
// producer load:
//
//   single-aggregator  the one-chain baseline, pinned at R
//   broker-unbatched   4 partitions, record-at-a-time produce: the token
//                      bucket charges uncompressed record bytes, so the
//                      tier saturates at ~4R
//   broker-batched     4 partitions, frame-and-compress-once produce: the
//                      bucket charges compressed bytes on the wire, so the
//                      same 4 nodes accept ~compression-ratio more payload
//
// The bench measures intake MB/s (uncompressed payload accepted) over the
// load window, allocations per produced entry (alloc_hooks), wire-bytes
// ratio and batch fan-in, drains every tier through the log mover, and
// checks the delivery-audit identity at quiescence. A separate light-load
// phase runs the batched and unbatched paths on the same seed below
// saturation and requires the landed warehouse hour to be byte-identical.
// Exits nonzero when an audit breaks, the broker fails to drain, the
// batched tier misses its 3x floor over record-at-a-time, or the
// warehouse bytes diverge.

#include <cstdio>
#include <map>
#include <string>

#include "alloc_hooks.h"
#include "bench_common.h"
#include "broker/broker.h"
#include "obs/delivery_audit.h"
#include "obs/metrics.h"
#include "scribe/cluster.h"
#include "sim/simulator.h"

namespace unilog {
namespace {

using bench::kBenchDay;

constexpr uint64_t kServiceBytesPerSec = 64 * 1024;  // R for every tier
constexpr TimeMs kWindow = 120 * kMillisPerSecond;
constexpr int kPayloadBytes = 500;
constexpr int kEntriesPerTick = 220;  // every 100 ms -> ~1.1 MB/s offered

enum class Tier { kAggregator, kBrokerUnbatched, kBrokerBatched };

struct TierResult {
  uint64_t intake_bytes = 0;  // uncompressed payload accepted in-window
  double intake_mb_per_sec = 0;
  double consume_mb_per_sec = 0;
  double p99_e2e_ms = 0;
  double allocs_per_entry = 0;
  double wire_bytes_ratio = 0;       // wire bytes / payload bytes acked
  double batch_entries_per_produce = 0;
  scribe::ClusterStats stats;
  obs::DeliverySnapshot audit;
  bool audit_ok = false;
};

scribe::ScribeOptions TierScribeOptions(Tier tier) {
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 30 * kMillisPerSecond;
  sopts.daemon_flush_interval_ms = 500;
  // Saturation keeps every flush near the rate limit; quick retries keep
  // the measurement capacity-bound instead of backoff-bound.
  sopts.daemon_retry_backoff_ms = 100;
  sopts.daemon_retry_backoff_max_ms = 500;
  // The batched tier ships compressed blobs, so its per-flush payload cap
  // can far exceed the 1 s token burst of uncompressed admission.
  sopts.daemon_max_batch_bytes =
      tier == Tier::kBrokerBatched ? 256 * 1024 : 32 * 1024;
  sopts.broker_batched_produce = tier == Tier::kBrokerBatched;
  if (tier == Tier::kAggregator) {
    sopts.aggregator_service_bytes_per_sec = kServiceBytesPerSec;
  }
  return sopts;
}

scribe::ClusterTopology TierTopology(Tier tier) {
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.daemons_per_dc = 8;
  if (tier == Tier::kAggregator) {
    topo.aggregators_per_dc = 1;
  } else {
    topo.brokers_per_dc = 4;
    topo.broker_options.num_partitions = 4;
    topo.broker_options.replication_factor = 1;
    topo.broker_options.acks = broker::kAcksLeader;
    topo.broker_options.node_service_bytes_per_sec = kServiceBytesPerSec;
  }
  return topo;
}

TierResult RunTier(const char* name, Tier tier, uint64_t seed) {
  Simulator sim(kBenchDay);
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;

  scribe::ScribeCluster cluster(&sim, TierTopology(tier),
                                TierScribeOptions(tier), mopts, seed);
  if (!cluster.Start().ok()) std::abort();

  // Four categories spread the (host, category) partition hash over all
  // partitions and broker nodes.
  static const char* kCategories[] = {"clicks", "search", "timeline", "ads"};
  int seq = 0;
  for (TimeMs t = 0; t < kWindow; t += 100) {
    sim.At(kBenchDay + t, [&cluster, &seq]() {
      for (int i = 0; i < kEntriesPerTick; ++i, ++seq) {
        cluster.Log(0, scribe::LogEntry{kCategories[seq % 4],
                                        "e" + std::to_string(seq) +
                                            std::string(kPayloadBytes, 'b')});
      }
    });
  }

  const bool brokered = tier != Tier::kAggregator;
  TierResult result;
  // Snapshot intake at the end of the load window: every tier keeps
  // draining its daemon queues afterwards, which is recovery, not
  // throughput.
  sim.At(kBenchDay + kWindow, [&]() {
    result.intake_bytes =
        brokered ? cluster.fleet(0)->TotalStats().bytes_produced
                 : cluster.aggregator(0, 0)->stats().bytes_received;
  });

  // Drain: past the hour close + grace so the mover slides the hour (and,
  // on the broker path, the consumer group commits every partition).
  bench::AllocScope allocs;
  sim.RunUntil(kBenchDay + kMillisPerHour + 5 * kMillisPerMinute);

  result.stats = cluster.TotalStats();
  obs::DeliveryAudit audit(&cluster);
  result.audit = audit.Snapshot();
  result.audit_ok = audit.Check().ok();
  result.intake_mb_per_sec = static_cast<double>(result.intake_bytes) / 1e6 /
                             (static_cast<double>(kWindow) / 1e3);
  if (brokered) {
    const broker::BrokerFleetStats fs = cluster.fleet(0)->TotalStats();
    result.consume_mb_per_sec = static_cast<double>(fs.bytes_consumed) / 1e6 /
                                (static_cast<double>(kWindow) / 1e3);
    result.p99_e2e_ms = obs::HistogramQuantile(
        *cluster.metrics()->GetHistogram("broker.e2e_latency_ms"), 0.99);
    if (fs.bytes_produced > 0) {
      result.wire_bytes_ratio = static_cast<double>(fs.wire_bytes_produced) /
                                static_cast<double>(fs.bytes_produced);
    }
    if (fs.produce_calls > 0) {
      result.batch_entries_per_produce =
          static_cast<double>(fs.entries_produced) /
          static_cast<double>(fs.produce_calls);
    }
    if (fs.entries_produced > 0) {
      result.allocs_per_entry = static_cast<double>(allocs.Delta()) /
                                static_cast<double>(fs.entries_produced);
    }
  }

  std::printf(
      "%-18s intake=%7.3f MB/s  wire/payload=%5.3f  entries/produce=%6.1f  "
      "allocs/entry=%6.1f  audit=%s\n",
      name, result.intake_mb_per_sec, result.wire_bytes_ratio,
      result.batch_entries_per_produce, result.allocs_per_entry,
      result.audit_ok ? "balanced" : "IMBALANCED");
  return result;
}

// Light-load identity run: well under every tier's capacity, so the
// batched and unbatched paths accept the same records and the landed
// warehouse hour must be byte-identical.
std::map<std::string, std::string> RunIdentityTier(bool batched,
                                                   uint64_t seed,
                                                   bool* audit_ok) {
  Simulator sim(kBenchDay);
  scribe::ScribeOptions sopts =
      TierScribeOptions(batched ? Tier::kBrokerBatched
                                : Tier::kBrokerUnbatched);
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;
  scribe::ScribeCluster cluster(
      &sim, TierTopology(Tier::kBrokerUnbatched), sopts, mopts, seed);
  if (!cluster.Start().ok()) std::abort();

  static const char* kCategories[] = {"clicks", "search", "timeline", "ads"};
  int seq = 0;
  for (TimeMs t = 0; t < 60 * kMillisPerSecond; t += 100) {
    sim.At(kBenchDay + t, [&cluster, &seq]() {
      for (int i = 0; i < 40; ++i, ++seq) {
        cluster.Log(0, scribe::LogEntry{kCategories[seq % 4],
                                        "e" + std::to_string(seq) +
                                            std::string(kPayloadBytes, 'b')});
      }
    });
  }
  sim.RunUntil(kBenchDay + kMillisPerHour + 5 * kMillisPerMinute);

  obs::DeliveryAudit audit(&cluster);
  *audit_ok = audit.Check().ok() && audit.Snapshot().InFlight() == 0;

  std::map<std::string, std::string> files;
  auto listed = cluster.warehouse()->ListRecursive("/logs");
  if (!listed.ok()) std::abort();
  for (const auto& f : *listed) {
    if (f.is_dir) continue;
    auto body = cluster.warehouse()->ReadFile(f.path);
    if (!body.ok()) std::abort();
    files[f.path] = std::move(*body);
  }
  return files;
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  uint64_t seed = bench::ParseSeedFlag(&argc, argv, 77);
  std::printf(
      "=== E25: compressed record batches through the broker tier ===\n"
      "per-node service rate R = %llu KB/s for every tier; offered load "
      "~%d KB/s for %llu s; seed %llu (pass --seed=N)\n\n",
      static_cast<unsigned long long>(kServiceBytesPerSec / 1024),
      kEntriesPerTick * 10 * (kPayloadBytes + 8) / 1024,
      static_cast<unsigned long long>(kWindow / 1000),
      static_cast<unsigned long long>(seed));

  TierResult baseline = RunTier("single-aggregator", Tier::kAggregator, seed);
  TierResult unbatched =
      RunTier("broker-unbatched", Tier::kBrokerUnbatched, seed);
  TierResult batched = RunTier("broker-batched", Tier::kBrokerBatched, seed);

  double partition_speedup =
      baseline.intake_mb_per_sec > 0
          ? unbatched.intake_mb_per_sec / baseline.intake_mb_per_sec
          : 0;
  double batch_speedup =
      unbatched.intake_mb_per_sec > 0
          ? batched.intake_mb_per_sec / unbatched.intake_mb_per_sec
          : 0;
  std::printf(
      "\nbroker-batched consume throughput (drain phase, normalized to the "
      "load window): %.3f MB/s\n",
      batched.consume_mb_per_sec);
  std::printf("broker-batched produce->consume p99 latency: %.0f ms "
              "(hourly move barrier dominates)\n",
              batched.p99_e2e_ms);
  std::printf("partition speedup (4 partitions vs single chain): %.2fx "
              "(target >=2x)\n",
              partition_speedup);
  std::printf("batch speedup (compressed batches vs record-at-a-time, same "
              "nodes): %.2fx (target >=3x)\n",
              batch_speedup);

  // Below saturation the two broker paths must land the same warehouse
  // bytes: batching changes how payloads travel, never what lands.
  bool id_unbatched_ok = false, id_batched_ok = false;
  auto id_unbatched = RunIdentityTier(false, seed, &id_unbatched_ok);
  auto id_batched = RunIdentityTier(true, seed, &id_batched_ok);
  bool identity_ok = id_unbatched_ok && id_batched_ok &&
                     id_unbatched == id_batched && !id_unbatched.empty();
  std::printf("warehouse byte-identity (light load, %zu parts): %s\n",
              id_unbatched.size(), identity_ok ? "identical" : "DIVERGED");

  bool ok = baseline.audit_ok && unbatched.audit_ok && batched.audit_ok &&
            partition_speedup >= 2.0 && batch_speedup >= 3.0 &&
            batched.stats.messages_in_warehouse > 0 &&
            batched.audit.in_flight_broker == 0 && identity_ok;
  std::printf(
      "contract (audits balanced, broker drained, >=2x partitions, >=3x "
      "batching, warehouse bytes identical): %s\n",
      ok ? "MET" : "MISSED");
  if (!ok) {
    std::fprintf(stderr, "CONTRACT VIOLATED — reproduce with --seed=%llu\n",
                 static_cast<unsigned long long>(seed));
  }

  Json section = Json::Object();
  section.Set("service_bytes_per_sec",
              Json::Number(static_cast<double>(kServiceBytesPerSec)));
  section.Set("window_seconds",
              Json::Number(static_cast<double>(kWindow) / 1e3));
  section.Set("baseline_intake_mb_per_sec",
              Json::Number(baseline.intake_mb_per_sec));
  section.Set("broker_unbatched_intake_mb_per_sec",
              Json::Number(unbatched.intake_mb_per_sec));
  section.Set("broker_batched_intake_mb_per_sec",
              Json::Number(batched.intake_mb_per_sec));
  section.Set("broker_consume_mb_per_sec",
              Json::Number(batched.consume_mb_per_sec));
  section.Set("broker_p99_e2e_ms", Json::Number(batched.p99_e2e_ms));
  section.Set("partition_speedup", Json::Number(partition_speedup));
  section.Set("batch_speedup", Json::Number(batch_speedup));
  section.Set("wire_bytes_ratio_unbatched",
              Json::Number(unbatched.wire_bytes_ratio));
  section.Set("wire_bytes_ratio_batched",
              Json::Number(batched.wire_bytes_ratio));
  section.Set("batch_entries_per_produce",
              Json::Number(batched.batch_entries_per_produce));
  section.Set("allocs_per_entry_unbatched",
              Json::Number(unbatched.allocs_per_entry));
  section.Set("allocs_per_entry_batched",
              Json::Number(batched.allocs_per_entry));
  section.Set("baseline_audit_balanced", Json::Bool(baseline.audit_ok));
  section.Set("broker_audit_balanced",
              Json::Bool(unbatched.audit_ok && batched.audit_ok));
  section.Set("warehouse_identity_ok", Json::Bool(identity_ok));
  section.Set("contract_met", Json::Bool(ok));
  Status js = bench::MergeBenchJsonSection("BENCH_broker.json",
                                           "broker_throughput", section);
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_broker.json write failed: %s\n",
                 js.ToString().c_str());
  }
  return ok ? 0 : 1;
}
