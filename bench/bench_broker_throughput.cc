// E21: partitioned broker tier vs the single-aggregator chain. Both tiers
// get the same per-node service rate R (token bucket, 1 s burst) and the
// same saturating producer load; the broker config shards the category
// stream over 4 partitions led by 4 nodes, so its aggregate intake should
// approach 4R where the single aggregator chain is pinned at R. The bench
// measures intake MB/s over the load window, drains both pipelines through
// the log mover, checks the delivery-audit identity at quiescence, and
// reports the broker path's produce->consume p99 latency (dominated by the
// hourly move barrier, as §2 of the paper describes for Scribe itself).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "broker/broker.h"
#include "obs/delivery_audit.h"
#include "obs/metrics.h"
#include "scribe/cluster.h"
#include "sim/simulator.h"

namespace unilog {
namespace {

using bench::kBenchDay;

constexpr uint64_t kServiceBytesPerSec = 64 * 1024;  // R for both tiers
constexpr TimeMs kWindow = 120 * kMillisPerSecond;
constexpr int kPayloadBytes = 500;
constexpr int kEntriesPerTick = 110;  // every 100 ms -> ~550 KB/s offered

struct TierResult {
  uint64_t intake_bytes = 0;  // accepted by the tier during the window
  double intake_mb_per_sec = 0;
  double consume_mb_per_sec = 0;
  double p99_e2e_ms = 0;
  scribe::ClusterStats stats;
  obs::DeliverySnapshot audit;
  bool audit_ok = false;
};

TierResult RunTier(const char* name, bool brokered, uint64_t seed) {
  Simulator sim(kBenchDay);
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.daemons_per_dc = 8;
  if (brokered) {
    topo.brokers_per_dc = 4;
    topo.broker_options.num_partitions = 4;
    topo.broker_options.replication_factor = 1;
    topo.broker_options.acks = broker::kAcksLeader;
    topo.broker_options.node_service_bytes_per_sec = kServiceBytesPerSec;
  } else {
    topo.aggregators_per_dc = 1;
  }

  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 30 * kMillisPerSecond;
  sopts.daemon_flush_interval_ms = 500;
  // Saturation keeps every flush near the rate limit; quick retries keep
  // the measurement capacity-bound instead of backoff-bound.
  sopts.daemon_retry_backoff_ms = 100;
  sopts.daemon_retry_backoff_max_ms = 500;
  sopts.daemon_max_batch_bytes = 32 * 1024;  // fits the 1 s token burst
  if (!brokered) sopts.aggregator_service_bytes_per_sec = kServiceBytesPerSec;

  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;

  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, seed);
  if (!cluster.Start().ok()) std::abort();

  // Four categories spread the (host, category) partition hash over all
  // partitions and broker nodes.
  static const char* kCategories[] = {"clicks", "search", "timeline", "ads"};
  int seq = 0;
  for (TimeMs t = 0; t < kWindow; t += 100) {
    sim.At(kBenchDay + t, [&cluster, &seq]() {
      for (int i = 0; i < kEntriesPerTick; ++i, ++seq) {
        cluster.Log(0, scribe::LogEntry{kCategories[seq % 4],
                                        "e" + std::to_string(seq) +
                                            std::string(kPayloadBytes, 'b')});
      }
    });
  }

  TierResult result;
  // Snapshot intake at the end of the load window: both tiers keep
  // draining their daemon queues afterwards, which is recovery, not
  // throughput.
  sim.At(kBenchDay + kWindow, [&]() {
    result.intake_bytes =
        brokered ? cluster.fleet(0)->TotalStats().bytes_produced
                 : cluster.aggregator(0, 0)->stats().bytes_received;
  });

  // Drain: past the hour close + grace so the mover slides the hour (and,
  // on the broker path, the consumer group commits every partition).
  sim.RunUntil(kBenchDay + kMillisPerHour + 5 * kMillisPerMinute);

  result.stats = cluster.TotalStats();
  obs::DeliveryAudit audit(&cluster);
  result.audit = audit.Snapshot();
  result.audit_ok = audit.Check().ok();
  result.intake_mb_per_sec = static_cast<double>(result.intake_bytes) / 1e6 /
                             (static_cast<double>(kWindow) / 1e3);
  if (brokered) {
    result.consume_mb_per_sec =
        static_cast<double>(cluster.fleet(0)->TotalStats().bytes_consumed) /
        1e6 / (static_cast<double>(kWindow) / 1e3);
    result.p99_e2e_ms = obs::HistogramQuantile(
        *cluster.metrics()->GetHistogram("broker.e2e_latency_ms"), 0.99);
  }

  std::printf(
      "%-18s intake=%7.3f MB/s  logged=%-6llu warehoused=%-6llu "
      "throttled=%-5llu in_flight=%llu  audit=%s\n",
      name, result.intake_mb_per_sec,
      static_cast<unsigned long long>(result.stats.entries_logged),
      static_cast<unsigned long long>(result.stats.messages_in_warehouse),
      static_cast<unsigned long long>(result.stats.produce_throttled),
      static_cast<unsigned long long>(result.audit.InFlight()),
      result.audit_ok ? "balanced" : "IMBALANCED");
  return result;
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  uint64_t seed = bench::ParseSeedFlag(&argc, argv, 77);
  std::printf(
      "=== E21: broker tier throughput vs single-aggregator chain ===\n"
      "per-node service rate R = %llu KB/s for both tiers; offered load "
      "~%d KB/s for %llu s; seed %llu (pass --seed=N)\n\n",
      static_cast<unsigned long long>(kServiceBytesPerSec / 1024),
      kEntriesPerTick * 10 * (kPayloadBytes + 8) / 1024,
      static_cast<unsigned long long>(kWindow / 1000),
      static_cast<unsigned long long>(seed));

  TierResult baseline = RunTier("single-aggregator", /*brokered=*/false, seed);
  TierResult brokered = RunTier("broker-4p", /*brokered=*/true, seed);

  double speedup = baseline.intake_mb_per_sec > 0
                       ? brokered.intake_mb_per_sec /
                             baseline.intake_mb_per_sec
                       : 0;
  std::printf(
      "\nbroker consume throughput (drain phase, normalized to the load "
      "window): %.3f MB/s\n",
      brokered.consume_mb_per_sec);
  std::printf("broker produce->consume p99 latency: %.0f ms "
              "(hourly move barrier dominates)\n",
              brokered.p99_e2e_ms);
  std::printf("speedup (4 partitions vs single chain): %.2fx (target >=2x)\n",
              speedup);

  bool ok = baseline.audit_ok && brokered.audit_ok && speedup >= 2.0 &&
            brokered.stats.messages_in_warehouse > 0 &&
            brokered.audit.in_flight_broker == 0;
  std::printf("contract (both audits balanced, broker drained, >=2x): %s\n",
              ok ? "MET" : "MISSED");
  if (!ok) {
    std::fprintf(stderr, "CONTRACT VIOLATED — reproduce with --seed=%llu\n",
                 static_cast<unsigned long long>(seed));
  }

  Json section = Json::Object();
  section.Set("service_bytes_per_sec",
              Json::Number(static_cast<double>(kServiceBytesPerSec)));
  section.Set("window_seconds",
              Json::Number(static_cast<double>(kWindow) / 1e3));
  section.Set("baseline_intake_mb_per_sec",
              Json::Number(baseline.intake_mb_per_sec));
  section.Set("broker_intake_mb_per_sec",
              Json::Number(brokered.intake_mb_per_sec));
  section.Set("broker_consume_mb_per_sec",
              Json::Number(brokered.consume_mb_per_sec));
  section.Set("broker_p99_e2e_ms", Json::Number(brokered.p99_e2e_ms));
  section.Set("speedup", Json::Number(speedup));
  section.Set("baseline_audit_balanced", Json::Bool(baseline.audit_ok));
  section.Set("broker_audit_balanced", Json::Bool(brokered.audit_ok));
  section.Set("contract_met", Json::Bool(ok));
  Status js = bench::MergeBenchJsonSection("BENCH_broker.json",
                                           "broker_throughput", section);
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_broker.json write failed: %s\n",
                 js.ToString().c_str());
  }
  return ok ? 0 : 1;
}
