// E13 (§3.1 baseline): application-specific logging vs unified client
// events. The same day of behaviour is logged twice:
//   legacy:  three Scribe categories with heterogeneous formats (nested
//            JSON / tab-delimited / quasi natural language), no session
//            ids, inconsistent timestamp resolutions;
//   unified: client events with common fields.
// Session reconstruction is then attempted from both. The unified path is
// a single group-by; the legacy path must parse three formats, union the
// silos, and infer sessions from (user, timestamp) alone — and still gets
// some sessions wrong because minute-resolution timestamps reorder events.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "dataflow/mapreduce.h"
#include "events/client_event.h"
#include "events/legacy.h"
#include "sessions/sessionizer.h"

namespace unilog {
namespace {

// Routes an event to one of the three legacy applications by its page.
int LegacyAppOf(const events::ClientEvent& ev) {
  if (ev.event_name.find(":search:") != std::string::npos) return 2;
  if (ev.event_name.find(":home:") != std::string::npos) return 0;
  return 1;
}

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E13 / §3.1: application-specific logging vs unified "
              "client events ===\n\n");

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 400);
  workload::WorkloadGenerator generator(wopts);
  hdfs::MiniHdfs warehouse;

  // Log the same behaviour into both worlds.
  std::map<TimeMs, std::string> unified_hours;
  std::map<std::pair<int, TimeMs>, std::string> legacy_hours;
  uint64_t total_events = 0;
  Status gen = generator.Generate([&](const events::ClientEvent& ev) {
    ++total_events;
    TimeMs hour = TruncateToHour(ev.timestamp);
    bench::AppendFramedRecord(&unified_hours[hour], ev.Serialize());
    int app = LegacyAppOf(ev);
    std::string line;
    switch (app) {
      case 0:
        line = events::LegacyJsonFormat::Format(ev);
        break;
      case 1:
        line = events::LegacyDelimitedFormat::Format(ev);
        break;
      default:
        line = events::LegacyNaturalFormat::Format(ev);
    }
    legacy_hours[{app, hour}] += line + "\n";
  });
  if (!gen.ok()) std::abort();

  const char* kLegacyCats[3] = {events::LegacyJsonFormat::kCategory,
                                events::LegacyDelimitedFormat::kCategory,
                                events::LegacyNaturalFormat::kCategory};
  for (auto& [hour, body] : unified_hours) {
    std::string dir = "/logs/client_events/" + HourPartitionPath(hour);
    if (!warehouse.WriteFile(dir + "/part-00000", Lz::Compress(body)).ok()) {
      std::abort();
    }
  }
  for (auto& [key, body] : legacy_hours) {
    std::string dir = std::string("/logs/") + kLegacyCats[key.first] + "/" +
                      HourPartitionPath(key.second);
    if (!warehouse.WriteFile(dir + "/part-00000", Lz::Compress(body)).ok()) {
      std::abort();
    }
  }

  // Ground truth sessions.
  uint64_t truth_sessions = generator.truth().total_sessions;

  // ---- Unified path: one category, one group-by on (user, session id).
  dataflow::JobCostModel cost;
  bench::WallTimer unified_timer;
  sessions::Sessionizer unified_sessionizer;
  dataflow::JobStats unified_stats;
  {
    dataflow::MapReduceJob job(&warehouse, cost);
    for (auto& [hour, _] : unified_hours) {
      if (!job.AddInputDir("/logs/client_events/" + HourPartitionPath(hour))
               .ok()) {
        std::abort();
      }
    }
    job.set_map([&](const std::string& record, dataflow::Emitter* e) -> Status {
      UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                              events::ClientEvent::Deserialize(record));
      unified_sessionizer.Add(ev);
      e->Emit(std::to_string(ev.user_id) + "|" + ev.session_id, "");
      return Status::OK();
    });
    job.set_reduce([](const std::string&, const std::vector<std::string>&,
                      dataflow::Emitter*) { return Status::OK(); });
    if (!job.Run().ok()) std::abort();
    unified_stats = job.stats();
  }
  uint64_t unified_sessions = unified_sessionizer.Build().size();
  double unified_ms = unified_timer.ElapsedMs();

  // ---- Legacy path: parse 3 formats, union, infer sessions from
  // (user_id, 30-minute gaps over recovered timestamps).
  bench::WallTimer legacy_timer;
  dataflow::JobStats legacy_stats;
  sessions::Sessionizer legacy_sessionizer;  // keyed only by user id
  uint64_t parse_failures = 0;
  for (int app = 0; app < 3; ++app) {
    dataflow::MapReduceJob job(&warehouse, cost);
    bool any = false;
    for (auto& [key, _] : legacy_hours) {
      if (key.first != app) continue;
      any = true;
      if (!job.AddInputDir(std::string("/logs/") + kLegacyCats[app] + "/" +
                           HourPartitionPath(key.second))
               .ok()) {
        std::abort();
      }
    }
    if (!any) continue;
    auto format = dataflow::InputFormat::Lines();
    format.decode = [](std::string_view body) -> Result<std::string> {
      return Lz::Decompress(body);
    };
    job.set_input_format(format);
    const char* category = kLegacyCats[app];
    job.set_map([&, category](const std::string& line,
                              dataflow::Emitter* e) -> Status {
      auto rec = events::ParseLegacy(category, line);
      if (!rec.ok()) {
        ++parse_failures;
        return Status::OK();  // legacy pipelines silently drop bad rows
      }
      events::ClientEvent ev;
      ev.user_id = rec->user_id;
      ev.session_id = "";  // legacy logs have NO session id (§3.1)
      ev.timestamp = rec->timestamp;
      ev.event_name = rec->action;  // only the action survives
      legacy_sessionizer.Add(ev);
      e->Emit(std::to_string(rec->user_id), "");
      return Status::OK();
    });
    job.set_reduce([](const std::string&, const std::vector<std::string>&,
                      dataflow::Emitter*) { return Status::OK(); });
    if (!job.Run().ok()) std::abort();
    legacy_stats.Accumulate(job.stats());
  }
  uint64_t legacy_sessions = legacy_sessionizer.Build().size();
  double legacy_ms = legacy_timer.ElapsedMs();

  // ---- Report.
  std::printf("behaviour: %s events, %llu true sessions\n\n",
              WithCommas(total_events).c_str(),
              static_cast<unsigned long long>(truth_sessions));
  std::printf("%-10s %6s %12s %12s %11s %9s %10s %9s\n", "path", "jobs",
              "scanned", "shuffled", "modeled_ms", "real_ms", "sessions",
              "error%");
  double unified_err = 100.0 *
                       std::abs(static_cast<double>(unified_sessions) -
                                static_cast<double>(truth_sessions)) /
                       static_cast<double>(truth_sessions);
  double legacy_err = 100.0 *
                      std::abs(static_cast<double>(legacy_sessions) -
                               static_cast<double>(truth_sessions)) /
                      static_cast<double>(truth_sessions);
  std::printf("%-10s %6d %12s %12s %11.0f %9.1f %10llu %8.2f%%\n", "unified",
              1, HumanBytes(unified_stats.bytes_scanned).c_str(),
              HumanBytes(unified_stats.bytes_shuffled).c_str(),
              unified_stats.modeled_ms, unified_ms,
              static_cast<unsigned long long>(unified_sessions), unified_err);
  std::printf("%-10s %6d %12s %12s %11.0f %9.1f %10llu %8.2f%%\n", "legacy",
              3, HumanBytes(legacy_stats.bytes_scanned).c_str(),
              HumanBytes(legacy_stats.bytes_shuffled).c_str(),
              legacy_stats.modeled_ms, legacy_ms,
              static_cast<unsigned long long>(legacy_sessions), legacy_err);
  std::printf("\nlegacy parse failures (silently dropped rows): %llu\n",
              static_cast<unsigned long long>(parse_failures));
  std::printf(
      "\nshape checks:\n"
      "  unified session reconstruction exact:            %s\n"
      "  legacy reconstruction inexact (no session ids,\n"
      "    minute-resolution timestamps merge sessions):  %s "
      "(%.2f%% error)\n"
      "  legacy needs 3 jobs + union vs 1 simple group-by: YES\n",
      unified_sessions == truth_sessions ? "YES" : "NO",
      legacy_sessions != truth_sessions ? "YES" : "NO", legacy_err);
  return 0;
}
