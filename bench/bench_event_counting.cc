// E7 (§5.2): ad hoc event counting over session sequences — the
// CountClientEvents UDF in both its SUM (total occurrences) and COUNT
// (sessions containing at least one) variants, plus pattern-expansion
// cost. Microbenchmarks over an in-memory day of sequences.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "analytics/udfs.h"
#include "bench_common.h"

namespace unilog {
namespace {

// One shared fixture for all microbenchmarks (building a day is costly).
const bench::DayFixture& Fixture() {
  static const bench::DayFixture* fx = [] {
    auto* f = new bench::DayFixture(bench::BuildDay(
        bench::DefaultWorkload(42, 400)));
    return f;
  }();
  return *fx;
}

void BM_CountSum(benchmark::State& state) {
  const bench::DayFixture& fx = Fixture();
  analytics::CountClientEvents udf(fx.daily.dictionary,
                                   events::EventPattern("*:impression"));
  for (auto _ : state) {
    uint64_t total = 0;
    for (const auto& seq : fx.daily.sequences) {
      total += udf.Count(seq);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.daily.sequences.size()));
}
BENCHMARK(BM_CountSum);

void BM_CountSessionsContaining(benchmark::State& state) {
  const bench::DayFixture& fx = Fixture();
  analytics::CountClientEvents udf(fx.daily.dictionary,
                                   events::EventPattern("*:profile_click"));
  for (auto _ : state) {
    uint64_t sessions = 0;
    for (const auto& seq : fx.daily.sequences) {
      if (udf.ContainsAny(seq)) ++sessions;
    }
    benchmark::DoNotOptimize(sessions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.daily.sequences.size()));
}
BENCHMARK(BM_CountSessionsContaining);

void BM_PatternExpansion(benchmark::State& state) {
  const bench::DayFixture& fx = Fixture();
  for (auto _ : state) {
    auto cps = fx.daily.dictionary.Expand(
        events::EventPattern("web:home:*:impression"));
    benchmark::DoNotOptimize(cps);
  }
}
BENCHMARK(BM_PatternExpansion);

void BM_CtrQuery(benchmark::State& state) {
  const bench::DayFixture& fx = Fixture();
  for (auto _ : state) {
    analytics::RateReport report = analytics::ComputeRate(
        fx.daily.sequences, fx.daily.dictionary,
        events::EventPattern("*:impression"),
        events::EventPattern("*:click"));
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.daily.sequences.size()));
}
BENCHMARK(BM_CtrQuery);

// Day-level scans at 1/2/4/8 threads over a replicated day (the fixture
// day is small; replication makes the parallel section measurable without
// changing per-item work). Checksums must agree across thread counts —
// the exec engine's determinism contract.
void PrintSpeedup(int requested_threads) {
  const bench::DayFixture& fx = Fixture();
  std::vector<sessions::SessionSequence> day;
  constexpr int kReplicas = 100;
  day.reserve(fx.daily.sequences.size() * kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    for (const auto& seq : fx.daily.sequences) day.push_back(seq);
  }
  analytics::CountClientEvents udf(fx.daily.dictionary,
                                   events::EventPattern("*:impression"));
  std::printf("replicated day: %zu sessions (requested --threads=%d)\n",
              day.size(), requested_threads);
  bench::SpeedupReport(
      "CountClientEvents SUM", [&](exec::Executor* exec) -> uint64_t {
        return udf.TotalCount(day, exec);
      });
  bench::SpeedupReport("CTR query", [&](exec::Executor* exec) -> uint64_t {
    analytics::RateReport report = analytics::ComputeRate(
        day, fx.daily.dictionary, events::EventPattern("*:impression"),
        events::EventPattern("*:click"), exec);
    return report.impressions * 1000003 + report.actions * 1009 +
           report.sessions_with_impression * 31 + report.sessions_with_action;
  });
}

void PrintHeader() {
  const bench::DayFixture& fx = Fixture();
  std::printf("=== E7 / §5.2: event counting over session sequences ===\n");
  analytics::CountClientEvents sum_udf(fx.daily.dictionary,
                                       events::EventPattern("*:impression"));
  analytics::CountClientEvents any_udf(
      fx.daily.dictionary, events::EventPattern("*:profile_click"));
  uint64_t total = 0, sessions = 0;
  for (const auto& seq : fx.daily.sequences) {
    total += sum_udf.Count(seq);
    if (any_udf.ContainsAny(seq)) ++sessions;
  }
  std::printf("day: %zu sessions, %s events\n", fx.daily.sequences.size(),
              WithCommas(fx.daily.histogram.total_events()).c_str());
  std::printf("CountClientEvents('*:impression')    SUM   = %llu\n",
              static_cast<unsigned long long>(total));
  std::printf("CountClientEvents('*:profile_click') COUNT = %llu sessions\n",
              static_cast<unsigned long long>(sessions));
  analytics::RateReport ctr = analytics::ComputeRate(
      fx.daily.sequences, fx.daily.dictionary,
      events::EventPattern("*:impression"), events::EventPattern("*:click"));
  std::printf("CTR = %llu clicks / %llu impressions = %.4f\n\n",
              static_cast<unsigned long long>(ctr.actions),
              static_cast<unsigned long long>(ctr.impressions), ctr.rate);
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  int threads = unilog::bench::ParseThreadsFlag(&argc, argv);
  unilog::PrintHeader();
  unilog::PrintSpeedup(threads);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
