// E16 (§4.2, design-decision analysis): session sequences vs the two
// alternatives the paper considered and rejected for the common-case
// (names-only) session query:
//
//   raw rows        — the status quo: full scan + big group-by;
//   session-ordered — "simply reorganize (rewrite) the complete Thrift
//                     messages by reconstructing user sessions": kills the
//                     group-by but "would have little impact on ... too
//                     many brute force scans";
//   RCFile columnar — "primarily focuses on reducing the running time of
//                     each map task; without modification, RCFiles would
//                     not reduce the number of mappers";
//   session seqs    — "address both the group-by and brute force scan
//                     issues at the same time".
//
// For the same day and the same names-only query, reports per layout:
// bytes on disk, bytes a projection query must touch, map tasks spawned,
// and whether a session group-by shuffle is still required.
//
// E18 (scan fast path) rides in the second half: the same day written as
// RCFile v2 (zone maps + dictionaries) and scanned with a selective
// timestamp-range + event-name ScanSpec, verifying the pushdown scan is
// byte-identical to full-scan-then-filter at 1/2/8 threads and measuring
// the reduction in bytes decompressed. Results land in BENCH_scan.json.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analytics/udfs.h"
#include "bench_common.h"
#include "columnar/rcfile.h"
#include "events/client_event.h"
#include "events/event_name.h"
#include "sessions/session_sequence.h"

namespace unilog {
namespace {

struct LayoutRow {
  const char* name;
  uint64_t disk_bytes = 0;
  uint64_t touched_bytes = 0;  // bytes decompressed by the names-only query
  uint64_t map_tasks = 0;      // blocks under the shared block size
  bool needs_group_by = false;
  uint64_t answer = 0;  // matching event count, must agree across layouts
};

// Order-sensitive digest of a result set; any reordering, dropped row, or
// field difference changes it.
uint64_t EventsDigest(const std::vector<events::ClientEvent>& events) {
  uint64_t h = 1469598103934665603ull;
  for (const auto& ev : events) {
    std::string record = ev.Serialize();
    PutVarint64(&record, record.size());
    for (unsigned char c : record) {
      h ^= c;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// E18: pushdown scan vs ReadAll-then-filter on the same v2 file. Returns
// false when a digest mismatches or the bytes-decompressed reduction is
// under 2x (the acceptance floor).
bool RunPushdownSection(const std::vector<events::ClientEvent>& all) {
  std::printf("\n=== E18: columnar scan fast path (zone maps + dictionary "
              "pushdown) ===\n\n");

  // The mover lays warehouse hours out in time order, so a day of parts
  // has strong time locality; sorting by timestamp reproduces that layout
  // in a single file (row groups become nearly hour-contiguous).
  std::vector<events::ClientEvent> rows = all;
  std::stable_sort(rows.begin(), rows.end(),
                   [](const events::ClientEvent& a,
                      const events::ClientEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  std::string body;
  columnar::RcFileWriter writer(&body, /*rows_per_group=*/1024);
  for (const auto& ev : rows) writer.Add(ev);
  if (!writer.Finish().ok()) return false;

  // The selective query: a mid-day four-hour window of clicks.
  columnar::ScanSpec spec;
  spec.min_timestamp = bench::kBenchDay + 10 * kMillisPerHour;
  spec.max_timestamp = bench::kBenchDay + 14 * kMillisPerHour - 1;
  spec.event_name_patterns.push_back("*:click");

  // Baseline: decompress every column of every group, filter afterwards.
  uint64_t baseline_bytes = 0;
  uint64_t baseline_digest = 0;
  size_t baseline_rows = 0;
  {
    columnar::RcFileReader reader(body);
    std::vector<events::ClientEvent> everything;
    if (!reader.ReadAll(columnar::kAllColumns, &everything).ok()) return false;
    baseline_bytes = reader.bytes_touched();
    events::EventPattern pattern("*:click");
    std::vector<events::ClientEvent> selected;
    for (const auto& ev : everything) {
      if (ev.timestamp >= *spec.min_timestamp &&
          ev.timestamp <= *spec.max_timestamp &&
          pattern.Matches(ev.event_name)) {
        selected.push_back(ev);
      }
    }
    baseline_rows = selected.size();
    baseline_digest = EventsDigest(selected);
  }

  // Pushdown, serial Scan().
  columnar::ScanStats stats;
  uint64_t pushdown_digest = 0;
  {
    columnar::RcFileReader reader(body);
    std::vector<events::ClientEvent> selected;
    if (!reader.Scan(spec, &selected, &stats).ok()) return false;
    pushdown_digest = EventsDigest(selected);
  }

  // Pushdown, group-parallel ScanGroup() at 1/2/8 threads: per-group
  // output slots merged in handle order must reproduce Scan() exactly.
  bool digests_identical = pushdown_digest == baseline_digest;
  columnar::RcFileReader reader(body);
  auto groups = reader.IndexGroups();
  if (!groups.ok()) return false;
  std::printf("%8s %12s  %s\n", "threads", "best_ms", "digest");
  for (int threads : {1, 2, 8}) {
    exec::ExecOptions eopts;
    eopts.threads = threads;
    exec::Executor executor(eopts);
    double best_ms = 0;
    uint64_t digest = 0;
    for (int rep = 0; rep < 3; ++rep) {
      bench::WallTimer timer;
      std::vector<std::vector<events::ClientEvent>> slots(groups->size());
      Status st = executor.ParallelForStatus(
          "bench_scan", groups->size(), [&](size_t g) {
            return reader.ScanGroup((*groups)[g], spec, &slots[g], nullptr);
          });
      if (!st.ok()) return false;
      std::vector<events::ClientEvent> merged;
      for (auto& slot : slots) {
        for (auto& ev : slot) merged.push_back(std::move(ev));
      }
      digest = EventsDigest(merged);
      double ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    bool same = digest == baseline_digest;
    digests_identical = digests_identical && same;
    std::printf("%8d %12.2f  %s\n", threads, best_ms,
                same ? "identical" : "MISMATCH!");
  }

  double reduction =
      stats.bytes_decompressed > 0
          ? static_cast<double>(baseline_bytes) /
                static_cast<double>(stats.bytes_decompressed)
          : static_cast<double>(baseline_bytes);
  std::printf("\nquery: 4h window + '*:click' over %zu rows\n", rows.size());
  std::printf("  groups: %llu total, %llu skipped (zone map/dictionary), "
              "%llu scanned\n",
              static_cast<unsigned long long>(stats.groups_total),
              static_cast<unsigned long long>(stats.groups_skipped),
              static_cast<unsigned long long>(stats.groups_scanned));
  std::printf("  rows: %llu pruned before materialization, %llu returned "
              "(baseline %zu)\n",
              static_cast<unsigned long long>(stats.rows_pruned),
              static_cast<unsigned long long>(stats.rows_returned),
              baseline_rows);
  std::printf("  bytes decompressed: %s pushdown vs %s ReadAll -> %.1fx "
              "reduction (floor 2.0x)\n",
              HumanBytes(stats.bytes_decompressed).c_str(),
              HumanBytes(baseline_bytes).c_str(), reduction);
  std::printf("  pushdown == full-scan-then-filter at 1/2/8 threads: %s\n",
              digests_identical ? "YES" : "NO");

  bool pass = digests_identical && reduction >= 2.0;
  Json section = Json::Object();
  section.Set("rows", Json::Int(static_cast<int64_t>(rows.size())));
  section.Set("query", Json::Str("timestamp in [day+10h, day+14h) and "
                                 "event_name matches *:click"));
  section.Set("groups_total", Json::Int(stats.groups_total));
  section.Set("groups_skipped", Json::Int(stats.groups_skipped));
  section.Set("groups_scanned", Json::Int(stats.groups_scanned));
  section.Set("rows_pruned", Json::Int(stats.rows_pruned));
  section.Set("rows_returned", Json::Int(stats.rows_returned));
  section.Set("baseline_bytes_decompressed",
              Json::Int(static_cast<int64_t>(baseline_bytes)));
  section.Set("pushdown_bytes_decompressed",
              Json::Int(static_cast<int64_t>(stats.bytes_decompressed)));
  section.Set("bytes_reduction", Json::Number(reduction));
  section.Set("digests_identical_threads_1_2_8",
              Json::Bool(digests_identical));
  section.Set("pass", Json::Bool(pass));
  Status js = bench::MergeBenchJsonSection("BENCH_scan.json",
                                           "rcfile_pushdown", section);
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_scan.json write failed: %s\n",
                 js.ToString().c_str());
    return false;
  }
  std::printf("  wrote BENCH_scan.json section 'rcfile_pushdown'\n");
  return pass;
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  int users = bench::ParseUsersFlag(&argc, argv);
  std::printf("=== E16 / §4.2: session sequences vs rejected alternatives "
              "(RCFile, session-ordered rows) ===\n\n");

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, users);
  wopts.extra_detail_pairs = 5;  // production-verbosity payloads
  workload::WorkloadGenerator generator(wopts);
  std::vector<events::ClientEvent> all;
  if (!generator.Generate(
          [&](const events::ClientEvent& ev) { all.push_back(ev); }).ok()) {
    return 1;
  }

  const uint64_t kBlock = 256 * 1024;
  auto blocks = [&](uint64_t bytes) { return (bytes + kBlock - 1) / kBlock; };
  events::EventPattern query("*:click");

  // ---- Layout A: raw rows (arrival order), framed + compressed. --------
  LayoutRow raw{"raw rows"};
  {
    std::string body;
    events::ClientEventWriter writer(&body);
    for (const auto& ev : all) writer.Add(ev);
    std::string disk = Lz::Compress(body);
    raw.disk_bytes = disk.size();
    raw.touched_bytes = disk.size();  // must decompress everything
    raw.map_tasks = blocks(raw.disk_bytes);
    raw.needs_group_by = true;
    events::ClientEventReader reader(body);
    std::string name;
    while (reader.NextEventNameOnly(&name).ok()) {
      if (query.Matches(name)) ++raw.answer;
    }
  }

  // ---- Layout B: session-ordered rows (rewritten by session). ----------
  LayoutRow ordered{"session-ordered rows"};
  {
    std::vector<events::ClientEvent> sorted = all;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const events::ClientEvent& a,
                        const events::ClientEvent& b) {
                       if (a.user_id != b.user_id) return a.user_id < b.user_id;
                       if (a.session_id != b.session_id) {
                         return a.session_id < b.session_id;
                       }
                       return a.timestamp < b.timestamp;
                     });
    std::string body;
    events::ClientEventWriter writer(&body);
    for (const auto& ev : sorted) writer.Add(ev);
    std::string disk = Lz::Compress(body);
    ordered.disk_bytes = disk.size();
    ordered.touched_bytes = disk.size();
    ordered.map_tasks = blocks(ordered.disk_bytes);
    ordered.needs_group_by = false;  // sessions are physically contiguous
    events::ClientEventReader reader(body);
    std::string name;
    while (reader.NextEventNameOnly(&name).ok()) {
      if (query.Matches(name)) ++ordered.answer;
    }
  }

  // ---- Layout C: RCFile columnar. ---------------------------------------
  LayoutRow rcfile{"rcfile columnar"};
  {
    std::string body;
    // The plain v1 layout: §4.2 weighed RCFile as-published, without the
    // zone-map/dictionary fast path E18 adds below.
    columnar::RcFileWriterOptions wo;
    wo.rows_per_group = 1024;
    wo.format_version = 1;
    columnar::RcFileWriter writer(&body, wo);
    for (const auto& ev : all) writer.Add(ev);
    writer.Finish();
    rcfile.disk_bytes = body.size();
    rcfile.map_tasks = blocks(rcfile.disk_bytes);
    rcfile.needs_group_by = true;  // layout is still arrival-ordered
    columnar::RcFileReader reader(body);
    if (!reader
             .ForEachEventName([&](std::string_view name) {
               if (query.Matches(name)) ++rcfile.answer;
             })
             .ok()) {
      return 1;
    }
    rcfile.touched_bytes = reader.bytes_touched();
  }

  // ---- Layout D: session sequences. -------------------------------------
  LayoutRow seqs{"session sequences"};
  {
    sessions::EventHistogram hist;
    sessions::Sessionizer sessionizer;
    for (const auto& ev : all) {
      hist.Add(ev.event_name);
      sessionizer.Add(ev);
    }
    auto dict =
        sessions::EventDictionary::FromSortedCounts(hist.SortedByFrequency());
    std::string body;
    std::vector<sessions::SessionSequence> sequences;
    for (const auto& session : sessionizer.Build()) {
      auto seq = sessions::EncodeSession(session, *dict);
      sessions::AppendSequenceRecord(&body, *seq);
      sequences.push_back(std::move(*seq));
    }
    std::string disk = Lz::Compress(body);
    seqs.disk_bytes = disk.size();
    seqs.touched_bytes = disk.size();
    seqs.map_tasks = blocks(seqs.disk_bytes);
    seqs.needs_group_by = false;
    analytics::CountClientEvents udf(*dict, query);
    for (const auto& s : sequences) seqs.answer += udf.Count(s);
  }

  std::printf("names-only query: count events matching '*:click' "
              "(%zu events total, 256 KiB blocks)\n\n",
              all.size());
  std::printf("%-22s %12s %14s %10s %15s %9s\n", "layout", "on disk",
              "bytes touched", "map tasks", "needs group-by", "answer");
  for (const LayoutRow& row : {raw, ordered, rcfile, seqs}) {
    std::printf("%-22s %12s %14s %10llu %15s %9llu\n", row.name,
                HumanBytes(row.disk_bytes).c_str(),
                HumanBytes(row.touched_bytes).c_str(),
                static_cast<unsigned long long>(row.map_tasks),
                row.needs_group_by ? "YES" : "no",
                static_cast<unsigned long long>(row.answer));
  }

  bool answers_agree = raw.answer == ordered.answer &&
                       raw.answer == rcfile.answer && raw.answer == seqs.answer;
  std::printf("\nshape checks (the paper's §4.2 reasoning):\n");
  std::printf("  all layouts give the same answer:                    %s\n",
              answers_agree ? "YES" : "NO");
  std::printf("  session-ordered kills group-by but not scans:        %s "
              "(disk %s vs raw %s)\n",
              !ordered.needs_group_by &&
                      ordered.disk_bytes > raw.disk_bytes / 2
                  ? "YES"
                  : "NO",
              HumanBytes(ordered.disk_bytes).c_str(),
              HumanBytes(raw.disk_bytes).c_str());
  std::printf("  rcfile cuts per-task bytes but not mappers/group-by: %s "
              "(touched %s, tasks %llu vs %llu)\n",
              rcfile.touched_bytes < raw.touched_bytes / 4 &&
                      rcfile.map_tasks >= raw.map_tasks / 2 &&
                      rcfile.needs_group_by
                  ? "YES"
                  : "NO",
              HumanBytes(rcfile.touched_bytes).c_str(),
              static_cast<unsigned long long>(rcfile.map_tasks),
              static_cast<unsigned long long>(raw.map_tasks));
  std::printf("  sequences fix both (fewest tasks, fewest bytes):     %s\n",
              seqs.map_tasks <= rcfile.map_tasks &&
                      seqs.map_tasks <= ordered.map_tasks &&
                      seqs.touched_bytes < rcfile.touched_bytes &&
                      !seqs.needs_group_by
                  ? "YES"
                  : "NO");

  bool pushdown_ok = RunPushdownSection(all);
  return answers_agree && pushdown_ok ? 0 : 1;
}
