// E16 (§4.2, design-decision analysis): session sequences vs the two
// alternatives the paper considered and rejected for the common-case
// (names-only) session query:
//
//   raw rows        — the status quo: full scan + big group-by;
//   session-ordered — "simply reorganize (rewrite) the complete Thrift
//                     messages by reconstructing user sessions": kills the
//                     group-by but "would have little impact on ... too
//                     many brute force scans";
//   RCFile columnar — "primarily focuses on reducing the running time of
//                     each map task; without modification, RCFiles would
//                     not reduce the number of mappers";
//   session seqs    — "address both the group-by and brute force scan
//                     issues at the same time".
//
// For the same day and the same names-only query, reports per layout:
// bytes on disk, bytes a projection query must touch, map tasks spawned,
// and whether a session group-by shuffle is still required.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analytics/udfs.h"
#include "bench_common.h"
#include "columnar/rcfile.h"
#include "events/client_event.h"
#include "sessions/session_sequence.h"

namespace unilog {
namespace {

struct LayoutRow {
  const char* name;
  uint64_t disk_bytes = 0;
  uint64_t touched_bytes = 0;  // bytes decompressed by the names-only query
  uint64_t map_tasks = 0;      // blocks under the shared block size
  bool needs_group_by = false;
  uint64_t answer = 0;  // matching event count, must agree across layouts
};

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E16 / §4.2: session sequences vs rejected alternatives "
              "(RCFile, session-ordered rows) ===\n\n");

  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 400);
  wopts.extra_detail_pairs = 5;  // production-verbosity payloads
  workload::WorkloadGenerator generator(wopts);
  std::vector<events::ClientEvent> all;
  if (!generator.Generate(
          [&](const events::ClientEvent& ev) { all.push_back(ev); }).ok()) {
    return 1;
  }

  const uint64_t kBlock = 256 * 1024;
  auto blocks = [&](uint64_t bytes) { return (bytes + kBlock - 1) / kBlock; };
  events::EventPattern query("*:click");

  // ---- Layout A: raw rows (arrival order), framed + compressed. --------
  LayoutRow raw{"raw rows"};
  {
    std::string body;
    events::ClientEventWriter writer(&body);
    for (const auto& ev : all) writer.Add(ev);
    std::string disk = Lz::Compress(body);
    raw.disk_bytes = disk.size();
    raw.touched_bytes = disk.size();  // must decompress everything
    raw.map_tasks = blocks(raw.disk_bytes);
    raw.needs_group_by = true;
    events::ClientEventReader reader(body);
    std::string name;
    while (reader.NextEventNameOnly(&name).ok()) {
      if (query.Matches(name)) ++raw.answer;
    }
  }

  // ---- Layout B: session-ordered rows (rewritten by session). ----------
  LayoutRow ordered{"session-ordered rows"};
  {
    std::vector<events::ClientEvent> sorted = all;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const events::ClientEvent& a,
                        const events::ClientEvent& b) {
                       if (a.user_id != b.user_id) return a.user_id < b.user_id;
                       if (a.session_id != b.session_id) {
                         return a.session_id < b.session_id;
                       }
                       return a.timestamp < b.timestamp;
                     });
    std::string body;
    events::ClientEventWriter writer(&body);
    for (const auto& ev : sorted) writer.Add(ev);
    std::string disk = Lz::Compress(body);
    ordered.disk_bytes = disk.size();
    ordered.touched_bytes = disk.size();
    ordered.map_tasks = blocks(ordered.disk_bytes);
    ordered.needs_group_by = false;  // sessions are physically contiguous
    events::ClientEventReader reader(body);
    std::string name;
    while (reader.NextEventNameOnly(&name).ok()) {
      if (query.Matches(name)) ++ordered.answer;
    }
  }

  // ---- Layout C: RCFile columnar. ---------------------------------------
  LayoutRow rcfile{"rcfile columnar"};
  {
    std::string body;
    columnar::RcFileWriter writer(&body, /*rows_per_group=*/1024);
    for (const auto& ev : all) writer.Add(ev);
    writer.Finish();
    rcfile.disk_bytes = body.size();
    rcfile.map_tasks = blocks(rcfile.disk_bytes);
    rcfile.needs_group_by = true;  // layout is still arrival-ordered
    columnar::RcFileReader reader(body);
    if (!reader
             .ForEachEventName([&](std::string_view name) {
               if (query.Matches(name)) ++rcfile.answer;
             })
             .ok()) {
      return 1;
    }
    rcfile.touched_bytes = reader.bytes_touched();
  }

  // ---- Layout D: session sequences. -------------------------------------
  LayoutRow seqs{"session sequences"};
  {
    sessions::EventHistogram hist;
    sessions::Sessionizer sessionizer;
    for (const auto& ev : all) {
      hist.Add(ev.event_name);
      sessionizer.Add(ev);
    }
    auto dict =
        sessions::EventDictionary::FromSortedCounts(hist.SortedByFrequency());
    std::string body;
    std::vector<sessions::SessionSequence> sequences;
    for (const auto& session : sessionizer.Build()) {
      auto seq = sessions::EncodeSession(session, *dict);
      sessions::AppendSequenceRecord(&body, *seq);
      sequences.push_back(std::move(*seq));
    }
    std::string disk = Lz::Compress(body);
    seqs.disk_bytes = disk.size();
    seqs.touched_bytes = disk.size();
    seqs.map_tasks = blocks(seqs.disk_bytes);
    seqs.needs_group_by = false;
    analytics::CountClientEvents udf(*dict, query);
    for (const auto& s : sequences) seqs.answer += udf.Count(s);
  }

  std::printf("names-only query: count events matching '*:click' "
              "(%zu events total, 256 KiB blocks)\n\n",
              all.size());
  std::printf("%-22s %12s %14s %10s %15s %9s\n", "layout", "on disk",
              "bytes touched", "map tasks", "needs group-by", "answer");
  for (const LayoutRow& row : {raw, ordered, rcfile, seqs}) {
    std::printf("%-22s %12s %14s %10llu %15s %9llu\n", row.name,
                HumanBytes(row.disk_bytes).c_str(),
                HumanBytes(row.touched_bytes).c_str(),
                static_cast<unsigned long long>(row.map_tasks),
                row.needs_group_by ? "YES" : "no",
                static_cast<unsigned long long>(row.answer));
  }

  bool answers_agree = raw.answer == ordered.answer &&
                       raw.answer == rcfile.answer && raw.answer == seqs.answer;
  std::printf("\nshape checks (the paper's §4.2 reasoning):\n");
  std::printf("  all layouts give the same answer:                    %s\n",
              answers_agree ? "YES" : "NO");
  std::printf("  session-ordered kills group-by but not scans:        %s "
              "(disk %s vs raw %s)\n",
              !ordered.needs_group_by &&
                      ordered.disk_bytes > raw.disk_bytes / 2
                  ? "YES"
                  : "NO",
              HumanBytes(ordered.disk_bytes).c_str(),
              HumanBytes(raw.disk_bytes).c_str());
  std::printf("  rcfile cuts per-task bytes but not mappers/group-by: %s "
              "(touched %s, tasks %llu vs %llu)\n",
              rcfile.touched_bytes < raw.touched_bytes / 4 &&
                      rcfile.map_tasks >= raw.map_tasks / 2 &&
                      rcfile.needs_group_by
                  ? "YES"
                  : "NO",
              HumanBytes(rcfile.touched_bytes).c_str(),
              static_cast<unsigned long long>(rcfile.map_tasks),
              static_cast<unsigned long long>(raw.map_tasks));
  std::printf("  sequences fix both (fewest tasks, fewest bytes):     %s\n",
              seqs.map_tasks <= rcfile.map_tasks &&
                      seqs.map_tasks <= ordered.map_tasks &&
                      seqs.touched_bytes < rcfile.touched_bytes &&
                      !seqs.needs_group_by
                  ? "YES"
                  : "NO");
  return answers_agree ? 0 : 1;
}
