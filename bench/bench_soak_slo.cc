// E22: fleet-scale soak with chaos injection, scored against SLOs. The
// default configuration is the full soak — 1200 daemons across two DCs
// (one aggregator-chain, one broker-tier), two simulated days of per-hour
// workload shards, a seed-derived ChaosSchedule (rolling crashes, zk
// expiry storms, HDFS brownouts, clock skew, corrupt parts) — drained to
// quiescence and judged by SloChecker: the delivery-audit identity must
// hold with zero in flight, tail latencies and memory peaks must stay
// under their bounds, and the Oink warm pass must hit its cache floor.
// Any violation exits nonzero and prints the seed that reproduces it.
//
// Flags: --seed=N --hours=H --daemons=D (per DC) --inject-loss
// CI smoke: --hours=6 --daemons=200 (same code path, scaled down).
// --inject-loss deletes one staged file mid-run behind the accounting's
// back; the run MUST fail — it proves the quiescence gate can detect
// unrecovered loss at all.

#include <cstdio>

#include "bench_common.h"
#include "soak/harness.h"

int main(int argc, char** argv) {
  using namespace unilog;
  uint64_t seed = bench::ParseSeedFlag(&argc, argv, 42);
  long long hours = bench::ParseIntFlag(&argc, argv, "--hours", 48);
  long long daemons = bench::ParseIntFlag(&argc, argv, "--daemons", 600);
  bool inject_loss = bench::ParseSwitchFlag(&argc, argv, "--inject-loss");

  soak::SoakOptions options;
  options.seed = seed;
  options.hours = static_cast<int>(hours);
  options.daemons_per_dc = static_cast<int>(daemons);
  options.inject_unrecovered_loss = inject_loss;

  std::printf(
      "=== E22: fleet-scale soak & chaos (seed %llu, %d simulated hours, "
      "%d daemons/DC x %zu DCs)%s ===\n",
      static_cast<unsigned long long>(seed), options.hours,
      options.daemons_per_dc, options.datacenters.size(),
      inject_loss ? " [INJECTING UNRECOVERED LOSS]" : "");

  bench::WallTimer timer;
  soak::SoakHarness harness(options);
  auto result = harness.Run();
  double wall_ms = timer.ElapsedMs();
  if (!result.ok()) {
    std::fprintf(stderr, "soak run failed: %s\nreproduce with --seed=%llu\n",
                 result.status().ToString().c_str(),
                 static_cast<unsigned long long>(seed));
    return 1;
  }

  std::printf("%s\n", result->ToString().c_str());
  std::printf("wall time: %.0f ms for %d simulated hours\n", wall_ms,
              options.hours);

  Json section = result->ToJson();
  section.Set("daemons_per_dc", Json::Int(options.daemons_per_dc));
  section.Set("inject_loss", Json::Bool(inject_loss));
  section.Set("wall_ms", Json::Number(wall_ms));
  Status js =
      bench::MergeBenchJsonSection("BENCH_soak.json", "soak_slo", section);
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_soak.json write failed: %s\n",
                 js.ToString().c_str());
  }

  if (!result->passed) {
    std::fprintf(stderr,
                 "SLO VIOLATION(S) — reproduce with --seed=%llu "
                 "--hours=%d --daemons=%d%s\n",
                 static_cast<unsigned long long>(seed), options.hours,
                 options.daemons_per_dc, inject_loss ? " --inject-loss" : "");
  }
  return result->passed ? 0 : 1;
}
