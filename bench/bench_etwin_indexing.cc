// E12 (§6): Elephant Twin indexing — predicate push-down at the
// InputFormat level lets highly-selective queries skip whole files "for
// free". Sweeps selectivity and reports files read, bytes scanned, and
// modeled/real time with and without the index.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "dataflow/mapreduce.h"
#include "etwin/index.h"
#include "events/client_event.h"

namespace unilog {
namespace {

struct QueryCost {
  uint64_t files = 0;
  uint64_t bytes_scanned = 0;
  double modeled_ms = 0;
  double real_ms = 0;
  uint64_t matches = 0;
};

QueryCost RunQuery(const bench::DayFixture& fx, const std::string& pattern_str,
                   const etwin::EventNameIndex* index,
                   const dataflow::JobCostModel& cost) {
  events::EventPattern pattern(pattern_str);
  bench::WallTimer timer;
  dataflow::MapReduceJob job(fx.warehouse.get(), cost);
  pipeline::DailyPipeline helper(fx.warehouse.get(), cost);
  uint64_t candidate_files = 0;
  for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
    if (!job.AddInputDir(dir).ok()) std::abort();
  }
  auto format = dataflow::InputFormat::CompressedFramed();
  if (index != nullptr) {
    format = format.WithFileFilter(index->FileFilter(pattern));
  }
  job.set_input_format(format);
  uint64_t matches = 0;
  job.set_map([&pattern, &matches](const std::string& record,
                                   dataflow::Emitter*) -> Status {
    // Name-only projection: the cheapest possible raw-scan query.
    events::ClientEventReader single(record);
    UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                            events::ClientEvent::Deserialize(record));
    if (pattern.Matches(ev.event_name)) ++matches;
    return Status::OK();
  });
  if (!job.Run().ok()) std::abort();
  QueryCost qc;
  qc.files = candidate_files;  // unused; reported via stats below
  qc.bytes_scanned = job.stats().bytes_scanned;
  qc.modeled_ms = job.stats().modeled_ms;
  qc.real_ms = timer.ElapsedMs();
  qc.matches = matches;
  qc.files = job.stats().map_tasks;
  return qc;
}

}  // namespace
}  // namespace unilog

int main() {
  using namespace unilog;
  std::printf("=== E12 / §6: Elephant Twin index push-down for selective "
              "queries ===\n\n");

  // Larger hierarchy → rarer individual events; many small files per hour
  // (16 KiB) so selective predicates can actually skip files, as in the
  // paper's "highly-selective queries" use case.
  workload::WorkloadOptions wopts = bench::DefaultWorkload(42, 500);
  wopts.hierarchy_scale = 3;
  bench::DayFixture fx = bench::BuildDay(wopts, dataflow::JobCostModel{},
                                         hdfs::HdfsOptions{},
                                         /*target_file_bytes=*/16 * 1024);

  // Build per-hour indexes (they live alongside the data).
  bench::WallTimer build_timer;
  pipeline::DailyPipeline helper(fx.warehouse.get(), dataflow::JobCostModel{});
  std::vector<std::unique_ptr<etwin::EventNameIndex>> hour_indexes;
  // A single merged view: reuse one index per hour through a combined
  // filter. Simplest faithful approach: build and load each, and AND the
  // accepts (a file belongs to exactly one hour's index).
  std::vector<etwin::EventNameIndex> indexes;
  for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
    if (!etwin::EventNameIndex::BuildForDir(fx.warehouse.get(), dir).ok()) {
      std::abort();
    }
    indexes.push_back(*etwin::EventNameIndex::Load(*fx.warehouse, dir));
  }
  std::printf("index build over %zu hourly partitions: %.0f ms\n\n",
              indexes.size(), build_timer.ElapsedMs());

  // Merge the per-hour indexes into one (serialize/deserialize round trip
  // keeps this honest: combine name->file maps).
  // For filtering we wrap all of them: a file passes if ANY index accepts
  // it and claims it, or no index knows it.
  struct MergedIndex {
    std::vector<etwin::EventNameIndex>* parts;
    std::function<bool(const std::string&)> Filter(
        const events::EventPattern& pattern) const {
      std::vector<std::function<bool(const std::string&)>> filters;
      for (const auto& idx : *parts) filters.push_back(idx.FileFilter(pattern));
      return [filters](const std::string& path) {
        // Each per-hour filter accepts unknown files; a file is skipped
        // only if its owning hour's index rejects it — i.e. all filters
        // must accept.
        for (const auto& f : filters) {
          if (!f(path)) return false;
        }
        return true;
      };
    }
  };

  // Query sweep: a broad family, a rare surface, and the two rarest exact
  // event names observed that day (the "highly-selective" regime §6
  // targets).
  dataflow::JobCostModel cost;
  cost.cluster_slots = 16;
  std::vector<std::string> patterns = {"*:profile_click",
                                       "iphone:messages:inbox:thread_list:*"};
  {
    auto sorted = fx.daily.histogram.SortedByFrequency();
    for (size_t i = sorted.size(); i-- > 0 && patterns.size() < 4;) {
      patterns.push_back(sorted[i].first);
    }
  }

  std::printf("%-52s %7s %7s %12s %12s %12s %8s\n", "query", "files",
              "files*", "scanned*", "modeled_ms*", "modeled_ms", "answer");
  for (const std::string& pattern : patterns) {
    QueryCost no_index = RunQuery(fx, pattern, nullptr, cost);

    // With push-down: combine all hour filters.
    events::EventPattern p(pattern);
    bench::WallTimer timer;
    dataflow::MapReduceJob job(fx.warehouse.get(), cost);
    for (const auto& dir : helper.HourDirsFor(bench::kBenchDay)) {
      if (!job.AddInputDir(dir).ok()) std::abort();
    }
    MergedIndex merged{&indexes};
    job.set_input_format(dataflow::InputFormat::CompressedFramed()
                             .WithFileFilter(merged.Filter(p)));
    uint64_t matches = 0;
    job.set_map([&p, &matches](const std::string& record,
                               dataflow::Emitter*) -> Status {
      UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                              events::ClientEvent::Deserialize(record));
      if (p.Matches(ev.event_name)) ++matches;
      return Status::OK();
    });
    if (!job.Run().ok()) std::abort();

    std::printf("%-52s %7llu %7llu %12s %12.0f %12.0f %8llu%s\n",
                pattern.c_str(),
                static_cast<unsigned long long>(no_index.files),
                static_cast<unsigned long long>(job.stats().map_tasks),
                HumanBytes(job.stats().bytes_scanned).c_str(),
                job.stats().modeled_ms, no_index.modeled_ms,
                static_cast<unsigned long long>(matches),
                matches == no_index.matches ? "" : "  ANSWER MISMATCH");
  }
  std::printf("\n(* = with index push-down; without, every file is "
              "scanned)\n");
  std::printf("shape check — the rarer the predicate, the fewer files "
              "touched, same answers.\n");
  return 0;
}
