// E1 (Figure 1): the Scribe delivery infrastructure end to end —
// daemons → aggregators → per-datacenter staging clusters → log mover →
// main warehouse — with fault injection (aggregator crash + staging HDFS
// outage). The paper claims the pipeline is "robust with respect to
// transient failures"; this harness quantifies delivery under three
// scenarios and prints the delivery accounting for each.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "scribe/cluster.h"
#include "sim/simulator.h"

namespace unilog {
namespace {

using bench::kBenchDay;

struct ScenarioResult {
  scribe::ClusterStats stats;
  uint64_t warehouse_files = 0;
  uint64_t staging_files_read = 0;
  uint64_t hours_moved = 0;
  uint64_t events_processed = 0;
};

ScenarioResult RunScenario(const std::string& name, bool crash_aggregator,
                           bool staging_outage) {
  Simulator sim(kBenchDay);
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1", "dc2", "dc3"};
  topo.aggregators_per_dc = 2;
  topo.daemons_per_dc = 8;
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 30 * kMillisPerSecond;
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = 5 * kMillisPerMinute;
  mopts.grace_ms = 2 * kMillisPerMinute;
  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/1234);
  if (!cluster.Start().ok()) std::abort();

  // 3 hours of Poisson-ish traffic: 60k messages across 3 DCs.
  const int kMessages = 60000;
  const TimeMs kWindow = 3 * kMillisPerHour;
  Rng rng(7);
  TimeMs t = kBenchDay;
  for (int i = 0; i < kMessages; ++i) {
    t += static_cast<TimeMs>(rng.Exponential(
        static_cast<double>(kWindow) / kMessages));
    if (t >= kBenchDay + kWindow) t = kBenchDay + kWindow - 1;
    size_t dc = rng.Uniform(3);
    sim.At(t, [&cluster, dc, i]() {
      cluster.Log(dc, scribe::LogEntry{
                          "client_events",
                          "event-payload-" + std::to_string(i) +
                              std::string(120, 'x')});
    });
  }

  if (crash_aggregator) {
    sim.At(kBenchDay + 40 * kMillisPerMinute,
           [&cluster]() { cluster.CrashAggregator(0, 0); });
    sim.At(kBenchDay + 55 * kMillisPerMinute, [&cluster]() {
      if (!cluster.RestartAggregator(0, 0).ok()) std::abort();
    });
  }
  if (staging_outage) {
    sim.At(kBenchDay + 80 * kMillisPerMinute,
           [&cluster]() { cluster.SetStagingAvailable(1, false); });
    sim.At(kBenchDay + 100 * kMillisPerMinute,
           [&cluster]() { cluster.SetStagingAvailable(1, true); });
  }

  // Run until every closed hour has been moved.
  sim.RunUntil(kBenchDay + kWindow + 2 * kMillisPerHour);

  ScenarioResult result;
  result.stats = cluster.TotalStats();
  result.hours_moved = cluster.mover()->stats().hours_moved;
  result.staging_files_read = cluster.mover()->stats().staging_files_read;
  result.events_processed = sim.EventsProcessed();
  auto files = cluster.warehouse()->ListRecursive("/logs/client_events");
  result.warehouse_files = files.ok() ? files->size() : 0;

  std::printf(
      "%-22s logged=%-6llu delivered=%-6llu crash_lost=%-4llu "
      "dropped=%-3llu rediscoveries=%-3llu staging_files=%-4llu "
      "warehouse_files=%-3llu hours_moved=%llu\n",
      name.c_str(),
      static_cast<unsigned long long>(result.stats.entries_logged),
      static_cast<unsigned long long>(result.stats.messages_in_warehouse),
      static_cast<unsigned long long>(result.stats.entries_lost_in_crashes),
      static_cast<unsigned long long>(
          result.stats.entries_dropped_at_daemons),
      static_cast<unsigned long long>(result.stats.daemon_rediscoveries),
      static_cast<unsigned long long>(result.staging_files_read),
      static_cast<unsigned long long>(result.warehouse_files),
      static_cast<unsigned long long>(result.hours_moved));
  return result;
}

}  // namespace
}  // namespace unilog

int main() {
  std::printf(
      "=== E1 / Figure 1: Scribe delivery pipeline (3 DCs, 24 daemons, "
      "6 aggregators, 60k messages over 3h) ===\n");
  std::printf(
      "paper: robust, scalable delivery; daemons re-discover aggregators "
      "via ZooKeeper on crash;\n       aggregators buffer on HDFS outage; "
      "log mover slides whole hours atomically.\n\n");

  auto healthy = unilog::RunScenario("healthy", false, false);
  auto crash = unilog::RunScenario("aggregator-crash", true, false);
  auto outage = unilog::RunScenario("staging-outage", false, true);

  std::printf("\nshape checks:\n");
  bool healthy_lossless =
      healthy.stats.messages_in_warehouse == healthy.stats.entries_logged;
  bool outage_lossless =
      outage.stats.messages_in_warehouse == outage.stats.entries_logged;
  double crash_loss_pct =
      100.0 * static_cast<double>(crash.stats.entries_lost_in_crashes) /
      static_cast<double>(crash.stats.entries_logged);
  std::printf("  healthy run lossless:            %s\n",
              healthy_lossless ? "YES" : "NO");
  std::printf("  staging outage lossless (buffered): %s\n",
              outage_lossless ? "YES" : "NO");
  std::printf(
      "  crash loss bounded to roll window:  %.2f%% of traffic "
      "(delivered+lost=logged: %s)\n",
      crash_loss_pct,
      crash.stats.messages_in_warehouse + crash.stats.entries_lost_in_crashes ==
              crash.stats.entries_logged
          ? "YES"
          : "NO");
  std::printf("  daemons re-discovered after crash:  %s\n",
              crash.stats.daemon_rediscoveries >
                      healthy.stats.daemon_rediscoveries
                  ? "YES"
                  : "NO");
  std::printf(
      "  mover merged many staging files into few warehouse files: "
      "%llu -> %llu\n",
      static_cast<unsigned long long>(healthy.staging_files_read),
      static_cast<unsigned long long>(healthy.warehouse_files));
  return 0;
}
