// E1 (Figure 1): the Scribe delivery infrastructure end to end —
// daemons → aggregators → per-datacenter staging clusters → log mover →
// main warehouse — with fault injection (aggregator crash + staging HDFS
// outage). The paper claims the pipeline is "robust with respect to
// transient failures"; this harness quantifies delivery under three
// scenarios, prints the delivery-audit accounting for each (the identity
// logged == warehoused + every loss channel + in-flight must hold
// exactly), and dumps the unified metrics report.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "obs/delivery_audit.h"
#include "pipeline/unified_pipeline.h"
#include "scribe/cluster.h"
#include "sim/simulator.h"

namespace unilog {
namespace {

using bench::kBenchDay;

struct ScenarioResult {
  scribe::ClusterStats stats;
  obs::DeliverySnapshot audit;
  bool audit_ok = false;
  uint64_t warehouse_files = 0;
  uint64_t staging_files_read = 0;
  uint64_t hours_moved = 0;
  std::string metrics_report;
};

ScenarioResult RunScenario(const std::string& name, bool crash_aggregator,
                           bool staging_outage) {
  Simulator sim(kBenchDay);
  pipeline::UnifiedPipelineOptions opts;
  opts.topology.datacenters = {"dc1", "dc2", "dc3"};
  opts.topology.aggregators_per_dc = 2;
  opts.topology.daemons_per_dc = 8;
  opts.scribe.roll_interval_ms = 30 * kMillisPerSecond;
  // Small enough that a 20-minute staging outage overflows the buffer,
  // exercising the dropped_overflow loss channel in the audit.
  opts.scribe.aggregator_buffer_limit_bytes = 256 * 1024;
  opts.mover.run_interval_ms = 5 * kMillisPerMinute;
  opts.mover.grace_ms = 2 * kMillisPerMinute;
  opts.seed = 1234;
  pipeline::UnifiedLoggingPipeline pipe(&sim, opts);
  if (!pipe.Start().ok()) std::abort();
  scribe::ScribeCluster& cluster = *pipe.cluster();

  // 3 hours of Poisson-ish traffic: 60k messages across 3 DCs.
  const int kMessages = 60000;
  const TimeMs kWindow = 3 * kMillisPerHour;
  Rng rng(7);
  TimeMs t = kBenchDay;
  for (int i = 0; i < kMessages; ++i) {
    t += static_cast<TimeMs>(rng.Exponential(
        static_cast<double>(kWindow) / kMessages));
    if (t >= kBenchDay + kWindow) t = kBenchDay + kWindow - 1;
    size_t dc = rng.Uniform(3);
    sim.At(t, [&cluster, dc, i]() {
      cluster.Log(dc, scribe::LogEntry{
                          "client_events",
                          "event-payload-" + std::to_string(i) +
                              std::string(120, 'x')});
    });
  }

  if (crash_aggregator) {
    sim.At(kBenchDay + 40 * kMillisPerMinute,
           [&cluster]() { cluster.CrashAggregator(0, 0); });
    sim.At(kBenchDay + 55 * kMillisPerMinute, [&cluster]() {
      if (!cluster.RestartAggregator(0, 0).ok()) std::abort();
    });
  }
  if (staging_outage) {
    sim.At(kBenchDay + 80 * kMillisPerMinute,
           [&cluster]() { cluster.SetStagingAvailable(1, false); });
    sim.At(kBenchDay + 100 * kMillisPerMinute,
           [&cluster]() { cluster.SetStagingAvailable(1, true); });
  }

  // The audit identity must hold *during* the faults, not only at the end.
  bool mid_run_balanced = true;
  for (TimeMs cp :
       {kBenchDay + 45 * kMillisPerMinute, kBenchDay + 90 * kMillisPerMinute,
        kBenchDay + 2 * kMillisPerHour}) {
    sim.At(cp, [&pipe, &mid_run_balanced]() {
      if (!pipe.CheckDeliveryAudit().ok()) mid_run_balanced = false;
    });
  }

  // Run until every closed hour has been moved.
  sim.RunUntil(kBenchDay + kWindow + 2 * kMillisPerHour);

  ScenarioResult result;
  result.stats = cluster.TotalStats();
  result.audit = pipe.Audit();
  result.audit_ok = mid_run_balanced && pipe.CheckDeliveryAudit().ok();
  result.hours_moved = cluster.mover()->stats().hours_moved;
  result.staging_files_read = cluster.mover()->stats().staging_files_read;
  result.metrics_report = pipe.MetricsTextReport();
  auto files = cluster.warehouse()->ListRecursive("/logs/client_events");
  result.warehouse_files = files.ok() ? files->size() : 0;

  std::printf(
      "%-22s logged=%-6llu delivered=%-6llu crash_lost=%-4llu "
      "overflow_dropped=%-4llu late_dropped=%-3llu rediscoveries=%-3llu "
      "warehouse_files=%-3llu hours_moved=%llu\n",
      name.c_str(),
      static_cast<unsigned long long>(result.stats.entries_logged),
      static_cast<unsigned long long>(result.stats.messages_in_warehouse),
      static_cast<unsigned long long>(result.stats.entries_lost_in_crashes),
      static_cast<unsigned long long>(result.stats.entries_dropped_overflow),
      static_cast<unsigned long long>(result.stats.late_entries_dropped),
      static_cast<unsigned long long>(result.stats.daemon_rediscoveries),
      static_cast<unsigned long long>(result.warehouse_files),
      static_cast<unsigned long long>(result.hours_moved));
  std::printf("  %s%s\n", result.audit.ToString().c_str(),
              result.audit_ok ? "" : "  <-- IMBALANCE");
  return result;
}

/// Prints only the fleet-level slices of the metrics report (per-host
/// daemon series are elided to keep the output readable).
void PrintReportExcerpt(const std::string& report) {
  size_t start = 0;
  while (start < report.size()) {
    size_t end = report.find('\n', start);
    if (end == std::string::npos) end = report.size();
    std::string line = report.substr(start, end - start);
    start = end + 1;
    if (line.rfind("counter daemon.", 0) == 0 ||
        line.rfind("gauge daemon.", 0) == 0 ||
        line.rfind("histogram daemon.", 0) == 0) {
      continue;
    }
    std::printf("  %s\n", line.c_str());
  }
}

}  // namespace
}  // namespace unilog

int main() {
  std::printf(
      "=== E1 / Figure 1: Scribe delivery pipeline (3 DCs, 24 daemons, "
      "6 aggregators, 60k messages over 3h) ===\n");
  std::printf(
      "paper: robust, scalable delivery; daemons re-discover aggregators "
      "via ZooKeeper on crash;\n       aggregators buffer on HDFS outage; "
      "log mover slides whole hours atomically.\n\n");

  auto healthy = unilog::RunScenario("healthy", false, false);
  auto crash = unilog::RunScenario("aggregator-crash", true, false);
  auto outage = unilog::RunScenario("staging-outage", false, true);

  std::printf("\nshape checks:\n");
  bool healthy_lossless =
      healthy.stats.messages_in_warehouse == healthy.stats.entries_logged;
  double crash_loss_pct =
      100.0 * static_cast<double>(crash.stats.entries_lost_in_crashes) /
      static_cast<double>(crash.stats.entries_logged);
  std::printf("  healthy run lossless:               %s\n",
              healthy_lossless ? "YES" : "NO");
  std::printf(
      "  crash loss bounded to roll window:  %.2f%% of traffic\n",
      crash_loss_pct);
  std::printf("  daemons re-discovered after crash:  %s\n",
              crash.stats.daemon_rediscoveries >
                      healthy.stats.daemon_rediscoveries
                  ? "YES"
                  : "NO");
  std::printf(
      "  mover merged many staging files into few warehouse files: "
      "%llu -> %llu\n",
      static_cast<unsigned long long>(healthy.staging_files_read),
      static_cast<unsigned long long>(healthy.warehouse_files));
  bool all_balanced =
      healthy.audit_ok && crash.audit_ok && outage.audit_ok;
  std::printf(
      "  delivery audit balanced in all scenarios (incl. mid-fault): %s\n",
      all_balanced ? "YES" : "NO");

  std::printf(
      "\nunified metrics report (staging-outage scenario; per-host daemon "
      "series elided):\n");
  unilog::PrintReportExcerpt(outage.metrics_report);

  // The audit identity is this bench's contract: fail loudly if any
  // scenario ever leaks an uncounted entry.
  return all_balanced ? 0 : 1;
}
