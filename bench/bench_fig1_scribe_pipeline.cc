// E1 (Figure 1): the Scribe delivery infrastructure end to end —
// daemons → aggregators → per-datacenter staging clusters → log mover →
// main warehouse — with fault injection (aggregator crash + staging HDFS
// outage). The paper claims the pipeline is "robust with respect to
// transient failures"; this harness quantifies delivery under three
// scenarios, prints the delivery-audit accounting for each (the identity
// logged == warehoused + every loss channel + in-flight must hold
// exactly), and dumps the unified metrics report.

#include <cstdio>
#include <map>
#include <string>
#include <thread>

#include "alloc_hooks.h"
#include "bench_common.h"
#include "obs/delivery_audit.h"
#include "pipeline/unified_pipeline.h"
#include "scribe/cluster.h"
#include "scribe/message.h"
#include "sim/simulator.h"

namespace unilog {
namespace {

using bench::kBenchDay;

struct ScenarioResult {
  scribe::ClusterStats stats;
  obs::DeliverySnapshot audit;
  bool audit_ok = false;
  uint64_t warehouse_files = 0;
  uint64_t staging_files_read = 0;
  uint64_t hours_moved = 0;
  std::string metrics_report;
  /// Warehouse contents, for the threads=1 vs threads=N identity check.
  std::map<std::string, std::string> warehouse;
};

ScenarioResult RunScenario(const std::string& name, bool crash_aggregator,
                           bool staging_outage, int ingest_threads = 1,
                           uint64_t seed = 1234) {
  Simulator sim(kBenchDay);
  pipeline::UnifiedPipelineOptions opts;
  opts.topology.datacenters = {"dc1", "dc2", "dc3"};
  opts.topology.aggregators_per_dc = 2;
  opts.topology.daemons_per_dc = 8;
  opts.scribe.roll_interval_ms = 30 * kMillisPerSecond;
  // Small enough that a 20-minute staging outage overflows the buffer,
  // exercising the dropped_overflow loss channel in the audit.
  opts.scribe.aggregator_buffer_limit_bytes = 256 * 1024;
  opts.mover.run_interval_ms = 5 * kMillisPerMinute;
  opts.mover.grace_ms = 2 * kMillisPerMinute;
  opts.seed = seed;
  opts.ingest_threads = ingest_threads;
  pipeline::UnifiedLoggingPipeline pipe(&sim, opts);
  if (!pipe.Start().ok()) std::abort();
  scribe::ScribeCluster& cluster = *pipe.cluster();

  // 3 hours of Poisson-ish traffic: 60k messages across 3 DCs.
  const int kMessages = 60000;
  const TimeMs kWindow = 3 * kMillisPerHour;
  Rng rng(seed ^ 7);
  TimeMs t = kBenchDay;
  for (int i = 0; i < kMessages; ++i) {
    t += static_cast<TimeMs>(rng.Exponential(
        static_cast<double>(kWindow) / kMessages));
    if (t >= kBenchDay + kWindow) t = kBenchDay + kWindow - 1;
    size_t dc = rng.Uniform(3);
    sim.At(t, [&cluster, dc, i]() {
      cluster.Log(dc, scribe::LogEntry{
                          "client_events",
                          "event-payload-" + std::to_string(i) +
                              std::string(120, 'x')});
    });
  }

  if (crash_aggregator) {
    sim.At(kBenchDay + 40 * kMillisPerMinute,
           [&cluster]() { cluster.CrashAggregator(0, 0); });
    sim.At(kBenchDay + 55 * kMillisPerMinute, [&cluster]() {
      if (!cluster.RestartAggregator(0, 0).ok()) std::abort();
    });
  }
  if (staging_outage) {
    sim.At(kBenchDay + 80 * kMillisPerMinute,
           [&cluster]() { cluster.SetStagingAvailable(1, false); });
    sim.At(kBenchDay + 100 * kMillisPerMinute,
           [&cluster]() { cluster.SetStagingAvailable(1, true); });
  }

  // The audit identity must hold *during* the faults, not only at the end.
  bool mid_run_balanced = true;
  for (TimeMs cp :
       {kBenchDay + 45 * kMillisPerMinute, kBenchDay + 90 * kMillisPerMinute,
        kBenchDay + 2 * kMillisPerHour}) {
    sim.At(cp, [&pipe, &mid_run_balanced]() {
      if (!pipe.CheckDeliveryAudit().ok()) mid_run_balanced = false;
    });
  }

  // Run until every closed hour has been moved.
  sim.RunUntil(kBenchDay + kWindow + 2 * kMillisPerHour);

  ScenarioResult result;
  result.stats = cluster.TotalStats();
  result.audit = pipe.Audit();
  result.audit_ok = mid_run_balanced && pipe.CheckDeliveryAudit().ok();
  result.hours_moved = cluster.mover()->stats().hours_moved;
  result.staging_files_read = cluster.mover()->stats().staging_files_read;
  result.metrics_report = pipe.MetricsTextReport();
  auto files = cluster.warehouse()->ListRecursive("/logs/client_events");
  result.warehouse_files = files.ok() ? files->size() : 0;
  if (files.ok()) {
    for (const auto& f : *files) {
      auto body = cluster.warehouse()->ReadFile(f.path);
      if (body.ok()) result.warehouse[f.path] = *body;
    }
  }

  std::printf(
      "%-22s logged=%-6llu delivered=%-6llu crash_lost=%-4llu "
      "overflow_dropped=%-4llu late_dropped=%-3llu rediscoveries=%-3llu "
      "warehouse_files=%-3llu hours_moved=%llu\n",
      name.c_str(),
      static_cast<unsigned long long>(result.stats.entries_logged),
      static_cast<unsigned long long>(result.stats.messages_in_warehouse),
      static_cast<unsigned long long>(result.stats.entries_lost_in_crashes),
      static_cast<unsigned long long>(result.stats.entries_dropped_overflow),
      static_cast<unsigned long long>(result.stats.late_entries_dropped),
      static_cast<unsigned long long>(result.stats.daemon_rediscoveries),
      static_cast<unsigned long long>(result.warehouse_files),
      static_cast<unsigned long long>(result.hours_moved));
  std::printf("  %s%s\n", result.audit.ToString().c_str(),
              result.audit_ok ? "" : "  <-- IMBALANCE");
  return result;
}

/// Prints only the fleet-level slices of the metrics report (per-host
/// daemon series are elided to keep the output readable).
void PrintReportExcerpt(const std::string& report) {
  size_t start = 0;
  while (start < report.size()) {
    size_t end = report.find('\n', start);
    if (end == std::string::npos) end = report.size();
    std::string line = report.substr(start, end - start);
    start = end + 1;
    if (line.rfind("counter daemon.", 0) == 0 ||
        line.rfind("gauge daemon.", 0) == 0 ||
        line.rfind("histogram daemon.", 0) == 0) {
      continue;
    }
    std::printf("  %s\n", line.c_str());
  }
}

// ---------------------------------------------------------------------------
// Ingest hot-path throughput: the mover's CPU kernel (decompress+unframe
// staged files, merge, frame+compress warehouse parts) measured two ways.
// "baseline" reproduces the seed serial path exactly: fresh strings and a
// fresh-state compressor per file/part. "optimized" is the shipped path:
// pooled buffers, reused hash-chain state, and unilog::exec fan-out — and
// must produce byte-identical part bytes.

struct IngestWorkload {
  std::vector<std::string> staged;  // compressed staged file bodies
  uint64_t uncompressed_bytes = 0;  // framed bytes the kernel processes
};

IngestWorkload BuildIngestWorkload(int files, int messages_per_file) {
  IngestWorkload w;
  Rng rng(99);
  for (int f = 0; f < files; ++f) {
    std::vector<std::string> msgs;
    for (int m = 0; m < messages_per_file; ++m) {
      std::string payload = "web:home:mentions:stream:avatar:profile_click|"
                            "f" + std::to_string(f) + "m" + std::to_string(m) +
                            "|";
      size_t noise = 40 + rng.Uniform(80);
      for (size_t i = 0; i < noise; ++i) {
        payload.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      msgs.push_back(std::move(payload));
    }
    std::string framed = scribe::FrameMessages(msgs);
    w.uncompressed_bytes += framed.size();
    w.staged.push_back(Lz::Compress(framed));
  }
  return w;
}

constexpr uint64_t kIngestTargetPartBytes = 64 * 1024;

/// Seed serial path: fresh allocations everywhere, fresh compressor state
/// per file and per part. Returns concatenated part bytes for identity.
std::string IngestBaselineRep(const IngestWorkload& w) {
  std::vector<std::string> merged;
  for (const std::string& file : w.staged) {
    auto raw = Lz::Decompress(file);
    if (!raw.ok()) std::abort();
    auto msgs = scribe::UnframeMessages(*raw);
    if (!msgs.ok()) std::abort();
    for (auto& m : *msgs) merged.push_back(std::move(m));
  }
  std::string sink;
  std::string body;
  uint64_t body_bytes = 0;
  for (const std::string& m : merged) {
    scribe::AppendFramed(&body, m);
    body_bytes = body.size();
    if (body_bytes >= kIngestTargetPartBytes) {
      sink += Lz::CompressReference(body);
      body = std::string();  // fresh buffer, as the seed path allocated
    }
  }
  if (!body.empty()) sink += Lz::CompressReference(body);
  return sink;
}

/// Shipped path: pooled buffers + reused compressor state, part builds
/// fanned out on the executor exactly as LogMover::MoveCategoryHour does.
std::string IngestOptimizedRep(const IngestWorkload& w,
                               exec::Executor* executor,
                               scribe::BufferPool* pool) {
  std::vector<std::vector<std::string>> slots(w.staged.size());
  executor->ParallelFor("bench.unstage", w.staged.size(), [&](size_t i) {
    auto raw = Lz::Decompress(w.staged[i]);
    if (!raw.ok()) std::abort();
    auto msgs = scribe::UnframeMessages(*raw);
    if (!msgs.ok()) std::abort();
    slots[i] = std::move(*msgs);
  });
  std::vector<std::string> merged;
  for (auto& slot : slots) {
    for (auto& m : slot) merged.push_back(std::move(m));
  }
  std::vector<size_t> part_ends =
      scribe::PlanFramedParts(merged, kIngestTargetPartBytes);
  std::vector<scribe::BufferPool::Lease> parts(part_ends.size());
  executor->ParallelFor("bench.build_parts", part_ends.size(), [&](size_t p) {
    size_t begin = p == 0 ? 0 : part_ends[p - 1];
    scribe::BufferPool::Lease framed = pool->Acquire();
    scribe::AppendFramedRange(framed.get(), merged, begin, part_ends[p]);
    scribe::BufferPool::Lease out = pool->Acquire();
    Lz::Pooled().CompressTo(*framed, out.get());
    parts[p] = std::move(out);
  });
  std::string sink;
  for (auto& part : parts) {
    sink += *part;
    part.Release();
  }
  return sink;
}

struct IngestMeasurement {
  double best_ms = 0;
  double mb_per_sec = 0;
  uint64_t allocs_per_rep = 0;
};

IngestMeasurement MeasureIngest(const IngestWorkload& w, int reps,
                                const std::function<std::string()>& rep,
                                std::string* out_bytes) {
  IngestMeasurement m;
  for (int r = 0; r < reps; ++r) {
    bench::AllocScope allocs;
    bench::WallTimer timer;
    std::string bytes = rep();
    double ms = timer.ElapsedMs();
    if (r == 0) {
      m.best_ms = ms;
      *out_bytes = std::move(bytes);
    } else if (ms < m.best_ms) {
      m.best_ms = ms;
    }
    m.allocs_per_rep = allocs.Delta();  // last rep: pools warmed up
  }
  m.mb_per_sec = m.best_ms > 0
                     ? static_cast<double>(w.uncompressed_bytes) / 1e6 /
                           (m.best_ms / 1e3)
                     : 0;
  return m;
}

}  // namespace
}  // namespace unilog

int main(int argc, char** argv) {
  using namespace unilog;
  int threads = bench::ParseThreadsFlag(&argc, argv);
  uint64_t seed = bench::ParseSeedFlag(&argc, argv, 1234);
  std::printf(
      "=== E1 / Figure 1: Scribe delivery pipeline (3 DCs, 24 daemons, "
      "6 aggregators, 60k messages over 3h) ===\n");
  std::printf("seed: %llu (pass --seed=N to vary the run)\n",
              static_cast<unsigned long long>(seed));
  std::printf(
      "paper: robust, scalable delivery; daemons re-discover aggregators "
      "via ZooKeeper on crash;\n       aggregators buffer on HDFS outage; "
      "log mover slides whole hours atomically.\n");
  std::printf("ingest threads: %d (pass --threads=N to change)\n\n", threads);

  auto healthy = RunScenario("healthy", false, false, threads, seed);
  auto crash = RunScenario("aggregator-crash", true, false, threads, seed);
  auto outage = RunScenario("staging-outage", false, true, threads, seed);

  // Parallel staging must not change a single warehouse byte: re-run the
  // healthy scenario serially and diff the two warehouses.
  bool byte_identical = true;
  if (threads > 1) {
    auto serial = RunScenario("healthy-serial-check", false, false, 1, seed);
    byte_identical = serial.warehouse == healthy.warehouse;
  } else {
    auto parallel =
        RunScenario("healthy-parallel-check", false, false, 8, seed);
    byte_identical = parallel.warehouse == healthy.warehouse;
  }

  std::printf("\nshape checks:\n");
  bool healthy_lossless =
      healthy.stats.messages_in_warehouse == healthy.stats.entries_logged;
  double crash_loss_pct =
      100.0 * static_cast<double>(crash.stats.entries_lost_in_crashes) /
      static_cast<double>(crash.stats.entries_logged);
  std::printf("  healthy run lossless:               %s\n",
              healthy_lossless ? "YES" : "NO");
  std::printf(
      "  crash loss bounded to roll window:  %.2f%% of traffic\n",
      crash_loss_pct);
  std::printf("  daemons re-discovered after crash:  %s\n",
              crash.stats.daemon_rediscoveries >
                      healthy.stats.daemon_rediscoveries
                  ? "YES"
                  : "NO");
  std::printf(
      "  mover merged many staging files into few warehouse files: "
      "%llu -> %llu\n",
      static_cast<unsigned long long>(healthy.staging_files_read),
      static_cast<unsigned long long>(healthy.warehouse_files));
  bool all_balanced =
      healthy.audit_ok && crash.audit_ok && outage.audit_ok;
  std::printf(
      "  delivery audit balanced in all scenarios (incl. mid-fault): %s\n",
      all_balanced ? "YES" : "NO");
  std::printf(
      "  warehouse byte-identical across ingest thread counts:       %s\n",
      byte_identical ? "YES" : "NO");

  // --- Ingest hot-path throughput (seed serial vs pooled+parallel) ---
  std::printf("\n--- ingest hot path: mover CPU kernel, %d thread(s) ---\n",
              threads);
  IngestWorkload w = BuildIngestWorkload(/*files=*/48,
                                         /*messages_per_file=*/220);
  const int kReps = 5;
  std::string base_bytes, opt_serial_bytes, opt_bytes;
  IngestMeasurement base = MeasureIngest(
      w, kReps, [&w]() { return IngestBaselineRep(w); }, &base_bytes);

  exec::Executor serial_exec(exec::ExecOptions{.threads = 1});
  scribe::BufferPool pool_serial, pool_parallel;
  IngestMeasurement opt1 = MeasureIngest(
      w, kReps,
      [&]() { return IngestOptimizedRep(w, &serial_exec, &pool_serial); },
      &opt_serial_bytes);

  exec::Executor parallel_exec(exec::ExecOptions{.threads = threads});
  IngestMeasurement optn = MeasureIngest(
      w, kReps,
      [&]() { return IngestOptimizedRep(w, &parallel_exec, &pool_parallel); },
      &opt_bytes);

  bool kernel_identical = base_bytes == opt_serial_bytes &&
                          base_bytes == opt_bytes;
  double speedup_serial = opt1.best_ms > 0 ? base.best_ms / opt1.best_ms : 0;
  double speedup = optn.best_ms > 0 ? base.best_ms / optn.best_ms : 0;
  std::printf("%-28s %10s %10s %12s %9s\n", "path", "best_ms", "MB/s",
              "allocs/rep", "speedup");
  std::printf("%-28s %10.2f %10.1f %12llu %8.2fx\n",
              "baseline (seed serial)", base.best_ms, base.mb_per_sec,
              static_cast<unsigned long long>(base.allocs_per_rep), 1.0);
  std::printf("%-28s %10.2f %10.1f %12llu %8.2fx\n",
              "pooled (1 thread)", opt1.best_ms, opt1.mb_per_sec,
              static_cast<unsigned long long>(opt1.allocs_per_rep),
              speedup_serial);
  std::printf("%-28s %10.2f %10.1f %12llu %8.2fx\n",
              ("pooled (" + std::to_string(threads) + " threads)").c_str(),
              optn.best_ms, optn.mb_per_sec,
              static_cast<unsigned long long>(optn.allocs_per_rep), speedup);
  std::printf("  part bytes identical across all three paths: %s\n",
              kernel_identical ? "YES" : "NO");

  // The wall-clock floor only binds where the hardware can express it:
  // ISSUE acceptance asks ≥2x (floor 1.3x) on a multi-core host with
  // --threads>=4. On one core the deterministic checks above still bind.
  unsigned hw = std::thread::hardware_concurrency();
  bool floor_enforced = threads >= 4 && hw >= 4;
  bool floor_met = !floor_enforced || speedup >= 1.3;
  if (floor_enforced) {
    std::printf("  speedup floor (>=1.3x at %d threads, hw=%u): %s "
                "(%.2fx, target 2x)\n",
                threads, hw, floor_met ? "MET" : "MISSED", speedup);
  } else {
    std::printf("  speedup floor not enforced (threads=%d, hw=%u; needs "
                "both >=4)\n", threads, hw);
  }

  Json section = Json::Object();
  section.Set("threads", Json::Number(threads));
  section.Set("hardware_concurrency", Json::Number(static_cast<double>(hw)));
  section.Set("uncompressed_mb",
              Json::Number(static_cast<double>(w.uncompressed_bytes) / 1e6));
  section.Set("baseline_ms", Json::Number(base.best_ms));
  section.Set("baseline_mb_per_sec", Json::Number(base.mb_per_sec));
  section.Set("baseline_allocs_per_rep",
              Json::Number(static_cast<double>(base.allocs_per_rep)));
  section.Set("pooled_serial_ms", Json::Number(opt1.best_ms));
  section.Set("pooled_serial_mb_per_sec", Json::Number(opt1.mb_per_sec));
  section.Set("pooled_serial_allocs_per_rep",
              Json::Number(static_cast<double>(opt1.allocs_per_rep)));
  section.Set("pooled_parallel_ms", Json::Number(optn.best_ms));
  section.Set("pooled_parallel_mb_per_sec", Json::Number(optn.mb_per_sec));
  section.Set("pooled_parallel_allocs_per_rep",
              Json::Number(static_cast<double>(optn.allocs_per_rep)));
  section.Set("speedup_vs_baseline", Json::Number(speedup));
  section.Set("kernel_byte_identical", Json::Bool(kernel_identical));
  section.Set("warehouse_byte_identical", Json::Bool(byte_identical));
  section.Set("audit_balanced", Json::Bool(all_balanced));
  section.Set("floor_enforced", Json::Bool(floor_enforced));
  section.Set("floor_met", Json::Bool(floor_met));
  Status js = bench::MergeBenchJsonSection("BENCH_ingest.json",
                                           "fig1_scribe_pipeline", section);
  if (!js.ok()) {
    std::fprintf(stderr, "BENCH_ingest.json write failed: %s\n",
                 js.ToString().c_str());
  }

  std::printf(
      "\nunified metrics report (staging-outage scenario; per-host daemon "
      "series elided):\n");
  PrintReportExcerpt(outage.metrics_report);

  // This bench's contract: the audit identity, the byte-identity of the
  // parallel staging path, and (on capable hardware) the speedup floor.
  bool ok = all_balanced && byte_identical && kernel_identical && floor_met;
  if (!ok) {
    std::fprintf(stderr,
                 "CONTRACT VIOLATED — reproduce with --seed=%llu\n",
                 static_cast<unsigned long long>(seed));
  }
  return ok ? 0 : 1;
}
