// Assorted edge-case and cross-feature tests: mover-built indexes, funnel
// stage repetition, event-name character policing, and UDF corner cases.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytics/udfs.h"
#include "etwin/index.h"
#include "events/client_event.h"
#include "events/event_name.h"
#include "events/rollup.h"
#include "scribe/aggregator.h"
#include "scribe/log_mover.h"
#include "sessions/dictionary.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog {
namespace {

constexpr TimeMs kT0 = 1345507200000;

TEST(LogMoverIndexTest, MoverBuildsUsableIndexForConfiguredCategories) {
  Simulator sim(kT0);
  zk::ZooKeeper zk(&sim);
  hdfs::MiniHdfs staging(&sim), warehouse(&sim);
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 10 * kMillisPerSecond;
  scribe::Aggregator agg(&sim, &zk, &staging, "dc1", "a1", sopts);
  ASSERT_TRUE(agg.Start().ok());
  std::vector<scribe::Aggregator*> aggs = {&agg};

  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;
  mopts.index_categories = {"client_events"};
  scribe::LogMover mover(&sim,
                         {scribe::DatacenterHandle{"dc1", &staging, &aggs}},
                         &warehouse, mopts);
  mover.Start(kT0);

  // Two categories: only client_events gets indexed.
  events::ClientEvent ev;
  ev.event_name = "web:home:::tweet:impression";
  ev.user_id = 1;
  ev.session_id = "s";
  ev.ip = "10.0.0.1";
  ev.timestamp = kT0;
  ASSERT_TRUE(agg.Receive({{"client_events", ev.Serialize()},
                           {"other_logs", "plain text line"}})
                  .ok());
  agg.RollAll();
  sim.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);

  std::string hour_dir = "/logs/client_events/2012/08/21/00";
  ASSERT_TRUE(warehouse.Exists(hour_dir));
  ASSERT_TRUE(warehouse.Exists(hour_dir + "/_etwin_index"));
  EXPECT_FALSE(warehouse.Exists("/logs/other_logs/2012/08/21/00/_etwin_index"));

  // The index is loadable and points at real warehouse files.
  auto index = etwin::EventNameIndex::Load(warehouse, hour_dir);
  ASSERT_TRUE(index.ok());
  auto files = index->FilesMatching(events::EventPattern("*:impression"));
  ASSERT_EQ(files.size(), 1u);
  EXPECT_TRUE(warehouse.Exists(files[0]));
}

TEST(FunnelEdgeTest, RepeatedStageEventsCountInOrder) {
  auto dict = sessions::EventDictionary::FromNamesInGivenOrder({"a", "b"});
  ASSERT_TRUE(dict.ok());
  // A funnel whose two stages are the SAME event: "a then a again".
  auto funnel = analytics::Funnel::Make(*dict, {"a", "a"});
  ASSERT_TRUE(funnel.ok());
  sessions::SessionSequence once, twice, interleaved;
  once.sequence = dict->EncodeNames({"a"}).value();
  twice.sequence = dict->EncodeNames({"a", "a"}).value();
  interleaved.sequence = dict->EncodeNames({"a", "b", "a"}).value();
  EXPECT_EQ(funnel->StagesCompleted(once), 1u);
  EXPECT_EQ(funnel->StagesCompleted(twice), 2u);
  EXPECT_EQ(funnel->StagesCompleted(interleaved), 2u);
}

TEST(FunnelEdgeTest, StageEventRevisitsDoNotDoubleCount) {
  auto dict =
      sessions::EventDictionary::FromNamesInGivenOrder({"s0", "s1", "x"});
  auto funnel = analytics::Funnel::Make(*dict, {"s0", "s1"});
  ASSERT_TRUE(funnel.ok());
  // Completing stage 0 twice without stage 1 stays at 1.
  sessions::SessionSequence seq;
  seq.sequence = dict->EncodeNames({"s0", "x", "s0", "x"}).value();
  EXPECT_EQ(funnel->StagesCompleted(seq), 1u);
}

TEST(EventNameEdgeTest, PatternMetacharactersRejectedInNames) {
  // '*' and ':' can never appear inside a component, so patterns cannot
  // be confused with real names.
  EXPECT_FALSE(events::EventName::Make("web", "ho*me", "", "", "", "click")
                   .ok());
  EXPECT_FALSE(events::EventName::Make("we:b", "home", "", "", "", "click")
                   .ok());
  EXPECT_FALSE(events::EventName::Parse("web:home:::tweet:cl*ck").ok());
}

TEST(EventNameEdgeTest, AllEmptyMiddleRoundTrips) {
  auto name = events::EventName::Parse("web:::::click");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->ToString(), "web:::::click");
  EXPECT_EQ(name->page(), "");
  // Rollup keys stay well-formed even with empty middles.
  EXPECT_EQ(events::RollupKeyFor(*name, events::RollupLevel::kNoPage),
            "web:*:*:*:*:click");
  EXPECT_EQ(events::RollupKeyFor(*name, events::RollupLevel::kFull),
            "web:::::click");
}

TEST(CountUdfEdgeTest, PatternMatchingEmptyExpansionIsCheap) {
  auto dict = sessions::EventDictionary::FromNamesInGivenOrder({"a", "b"});
  analytics::CountClientEvents udf(*dict,
                                   events::EventPattern("zzz:*"));
  EXPECT_EQ(udf.target_count(), 0u);
  sessions::SessionSequence seq;
  seq.sequence = dict->EncodeNames({"a", "b", "a"}).value();
  EXPECT_EQ(udf.Count(seq), 0u);
}

TEST(DictionaryEdgeTest, EmptyDictionary) {
  auto dict = sessions::EventDictionary::FromNamesInGivenOrder({});
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->size(), 0u);
  EXPECT_TRUE(dict->EncodeNames({}).ok());
  EXPECT_TRUE(dict->CodePointFor("x").status().IsNotFound());
  EXPECT_TRUE(dict->Expand(events::EventPattern("*")).empty());
  // Serialization of empty dictionary round-trips.
  auto back = sessions::EventDictionary::Deserialize(dict->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

}  // namespace
}  // namespace unilog
