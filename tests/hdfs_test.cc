// Unit tests for the simulated HDFS: namespace semantics, atomic rename
// (the log mover's primitive), block accounting, and outage injection.

#include <gtest/gtest.h>

#include <string>

#include "hdfs/mini_hdfs.h"
#include "sim/simulator.h"

namespace unilog::hdfs {
namespace {

TEST(MiniHdfsTest, WriteReadRoundTrip) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/logs/a.log", "hello").ok());
  EXPECT_EQ(fs.ReadFile("/logs/a.log").value(), "hello");
  EXPECT_TRUE(fs.Exists("/logs/a.log"));
  EXPECT_TRUE(fs.IsDir("/logs"));
  EXPECT_EQ(fs.file_count(), 1u);
  EXPECT_EQ(fs.total_file_bytes(), 5u);
}

TEST(MiniHdfsTest, CreateFailsIfExists) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/f", "x").ok());
  EXPECT_TRUE(fs.WriteFile("/f", "y").IsAlreadyExists());
}

TEST(MiniHdfsTest, AppendCreatesOrExtends) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.AppendFile("/f", "ab").ok());
  ASSERT_TRUE(fs.AppendFile("/f", "cd").ok());
  EXPECT_EQ(fs.ReadFile("/f").value(), "abcd");
  EXPECT_TRUE(fs.Mkdirs("/d").ok());
  EXPECT_TRUE(fs.AppendFile("/d", "x").IsFailedPrecondition());
}

TEST(MiniHdfsTest, MkdirsCreatesAncestors) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.Mkdirs("/a/b/c").ok());
  EXPECT_TRUE(fs.IsDir("/a"));
  EXPECT_TRUE(fs.IsDir("/a/b"));
  EXPECT_TRUE(fs.IsDir("/a/b/c"));
  // Idempotent.
  EXPECT_TRUE(fs.Mkdirs("/a/b/c").ok());
  // A file in the way fails.
  ASSERT_TRUE(fs.WriteFile("/a/b/f", "x").ok());
  EXPECT_TRUE(fs.Mkdirs("/a/b/f/g").IsFailedPrecondition());
}

TEST(MiniHdfsTest, PathValidation) {
  MiniHdfs fs;
  EXPECT_TRUE(fs.WriteFile("relative", "x").IsInvalidArgument());
  EXPECT_TRUE(fs.WriteFile("/trailing/", "x").IsInvalidArgument());
  EXPECT_TRUE(fs.WriteFile("/a//b", "x").IsInvalidArgument());
}

TEST(MiniHdfsTest, ReadMissingFileNotFound) {
  MiniHdfs fs;
  EXPECT_TRUE(fs.ReadFile("/nope").status().IsNotFound());
  EXPECT_TRUE(fs.Stat("/nope").status().IsNotFound());
}

TEST(MiniHdfsTest, ListDirectChildren) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/logs/cat/2012/a", "1").ok());
  ASSERT_TRUE(fs.WriteFile("/logs/cat/2012/b", "22").ok());
  ASSERT_TRUE(fs.WriteFile("/logs/cat/2013/c", "333").ok());
  auto ls = fs.List("/logs/cat");
  ASSERT_TRUE(ls.ok());
  ASSERT_EQ(ls->size(), 2u);
  EXPECT_EQ((*ls)[0].path, "/logs/cat/2012");
  EXPECT_TRUE((*ls)[0].is_dir);
  EXPECT_EQ((*ls)[1].path, "/logs/cat/2013");

  auto files = fs.List("/logs/cat/2012");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_EQ((*files)[0].size, 1u);
  EXPECT_EQ((*files)[1].size, 2u);

  EXPECT_TRUE(fs.List("/logs/cat/2012/a").status().IsFailedPrecondition());
  EXPECT_TRUE(fs.List("/nope").status().IsNotFound());
}

TEST(MiniHdfsTest, ListRecursiveReturnsOnlyFiles) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/w/x/1", "a").ok());
  ASSERT_TRUE(fs.WriteFile("/w/x/y/2", "b").ok());
  ASSERT_TRUE(fs.WriteFile("/w/3", "c").ok());
  auto all = fs.ListRecursive("/w");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[0].path, "/w/3");
  EXPECT_EQ((*all)[1].path, "/w/x/1");
  EXPECT_EQ((*all)[2].path, "/w/x/y/2");
}

TEST(MiniHdfsTest, RenameFileAtomic) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/tmp/part-0", "data").ok());
  ASSERT_TRUE(fs.Mkdirs("/logs/cat").ok());
  ASSERT_TRUE(fs.Rename("/tmp/part-0", "/logs/cat/part-0").ok());
  EXPECT_FALSE(fs.Exists("/tmp/part-0"));
  EXPECT_EQ(fs.ReadFile("/logs/cat/part-0").value(), "data");
}

TEST(MiniHdfsTest, RenameDirectoryMovesSubtree) {
  // The log mover's atomic hourly slide: staging dir → warehouse dir.
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/staging/hour/part-0", "a").ok());
  ASSERT_TRUE(fs.WriteFile("/staging/hour/part-1", "b").ok());
  ASSERT_TRUE(fs.Mkdirs("/logs/client_events/2012/08/21").ok());
  ASSERT_TRUE(
      fs.Rename("/staging/hour", "/logs/client_events/2012/08/21/13").ok());
  EXPECT_FALSE(fs.Exists("/staging/hour"));
  EXPECT_EQ(fs.ReadFile("/logs/client_events/2012/08/21/13/part-0").value(),
            "a");
  EXPECT_EQ(fs.ReadFile("/logs/client_events/2012/08/21/13/part-1").value(),
            "b");
}

TEST(MiniHdfsTest, RenameEdgeCases) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/a", "x").ok());
  ASSERT_TRUE(fs.WriteFile("/b", "y").ok());
  EXPECT_TRUE(fs.Rename("/a", "/b").IsAlreadyExists());
  EXPECT_TRUE(fs.Rename("/nope", "/c").IsNotFound());
  EXPECT_TRUE(fs.Rename("/a", "/missing_dir/c").IsNotFound());
  ASSERT_TRUE(fs.Mkdirs("/d/e").ok());
  EXPECT_TRUE(fs.Rename("/d", "/d/e/f").IsInvalidArgument());
}

TEST(MiniHdfsTest, DeleteSemantics) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/dir/f1", "abc").ok());
  ASSERT_TRUE(fs.WriteFile("/dir/f2", "de").ok());
  EXPECT_TRUE(fs.Delete("/dir").IsFailedPrecondition());
  ASSERT_TRUE(fs.Delete("/dir/f1").ok());
  EXPECT_EQ(fs.total_file_bytes(), 2u);
  ASSERT_TRUE(fs.Delete("/dir", /*recursive=*/true).ok());
  EXPECT_FALSE(fs.Exists("/dir"));
  EXPECT_EQ(fs.file_count(), 0u);
  EXPECT_EQ(fs.total_file_bytes(), 0u);
  EXPECT_TRUE(fs.Delete("/").IsInvalidArgument());
}

TEST(MiniHdfsTest, BlockAccounting) {
  HdfsOptions opts;
  opts.block_size = 10;
  MiniHdfs fs(nullptr, opts);
  EXPECT_EQ(fs.BlocksFor(0), 1u);
  EXPECT_EQ(fs.BlocksFor(1), 1u);
  EXPECT_EQ(fs.BlocksFor(10), 1u);
  EXPECT_EQ(fs.BlocksFor(11), 2u);
  ASSERT_TRUE(fs.WriteFile("/f", std::string(25, 'x')).ok());
  EXPECT_EQ(fs.Stat("/f")->block_count, 3u);
  EXPECT_EQ(fs.total_blocks(), 3u);
}

TEST(MiniHdfsTest, OutageMakesOperationsUnavailable) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/f", "x").ok());
  fs.SetAvailable(false);
  EXPECT_TRUE(fs.WriteFile("/g", "y").IsUnavailable());
  EXPECT_TRUE(fs.AppendFile("/f", "y").IsUnavailable());
  EXPECT_TRUE(fs.ReadFile("/f").status().IsUnavailable());
  EXPECT_TRUE(fs.Rename("/f", "/h").IsUnavailable());
  EXPECT_TRUE(fs.Delete("/f").IsUnavailable());
  EXPECT_TRUE(fs.List("/").status().IsUnavailable());
  fs.SetAvailable(true);
  EXPECT_EQ(fs.ReadFile("/f").value(), "x");
}

TEST(MiniHdfsTest, MtimeTracksSimClock) {
  Simulator sim(1000);
  MiniHdfs fs(&sim);
  ASSERT_TRUE(fs.WriteFile("/f", "x").ok());
  EXPECT_EQ(fs.Stat("/f")->mtime, 1000);
  sim.RunUntil(5000);
  ASSERT_TRUE(fs.AppendFile("/f", "y").ok());
  EXPECT_EQ(fs.Stat("/f")->mtime, 5000);
}

TEST(MiniHdfsTest, ByteCounters) {
  MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/f", "abcde").ok());
  ASSERT_TRUE(fs.ReadFile("/f").ok());
  ASSERT_TRUE(fs.ReadFile("/f").ok());
  EXPECT_EQ(fs.bytes_written(), 5u);
  EXPECT_EQ(fs.bytes_read(), 10u);
}

// --- Datanode sharding: per-block placement, brownouts, replication ---

TEST(MiniHdfsShardingTest, DefaultSingleNodeKeepsLegacyBehavior) {
  MiniHdfs fs;
  EXPECT_EQ(fs.num_datanodes(), 1);
  EXPECT_EQ(fs.live_datanodes(), 1);
  ASSERT_TRUE(fs.WriteFile("/f", "data").ok());
  ReplicaReport report = fs.Replicas();
  EXPECT_EQ(report.blocks, 1u);
  EXPECT_EQ(report.fully_available, 1u);
  EXPECT_EQ(report.unreadable, 0u);
}

TEST(MiniHdfsShardingTest, BrownoutFailsOnlyDarkBlocks) {
  HdfsOptions opts;
  opts.num_datanodes = 3;
  opts.replication = 1;
  MiniHdfs fs(nullptr, opts);
  // Rotating placement: three single-block files land on three distinct
  // datanodes, so darkening one node fails exactly one of them.
  ASSERT_TRUE(fs.WriteFile("/a", "x").ok());
  ASSERT_TRUE(fs.WriteFile("/b", "y").ok());
  ASSERT_TRUE(fs.WriteFile("/c", "z").ok());
  fs.SetDatanodeAvailable(0, false);
  EXPECT_EQ(fs.live_datanodes(), 2);
  int failed = 0;
  for (const char* path : {"/a", "/b", "/c"}) {
    if (fs.ReadFile(path).status().IsUnavailable()) ++failed;
  }
  EXPECT_EQ(failed, 1);
  EXPECT_GE(fs.brownout_rejections(), 1u);
  // Metadata operations are namenode-only and ride through the brownout.
  EXPECT_TRUE(fs.List("/").ok());
  EXPECT_TRUE(fs.Stat("/a").ok());
  ReplicaReport report = fs.Replicas();
  EXPECT_EQ(report.blocks, 3u);
  EXPECT_EQ(report.unreadable, 1u);
  fs.SetDatanodeAvailable(0, true);
  for (const char* path : {"/a", "/b", "/c"}) {
    EXPECT_TRUE(fs.ReadFile(path).ok()) << path;
  }
}

TEST(MiniHdfsShardingTest, ReplicationSurvivesSingleNodeLoss) {
  HdfsOptions opts;
  opts.num_datanodes = 3;
  opts.replication = 2;
  opts.block_size = 4;
  MiniHdfs fs(nullptr, opts);
  ASSERT_TRUE(fs.WriteFile("/big", std::string(20, 'a')).ok());
  ASSERT_TRUE(fs.WriteFile("/small", "bb").ok());
  for (int node = 0; node < 3; ++node) {
    fs.SetDatanodeAvailable(node, false);
    EXPECT_TRUE(fs.ReadFile("/big").ok()) << "node " << node << " down";
    EXPECT_TRUE(fs.ReadFile("/small").ok()) << "node " << node << " down";
    ReplicaReport report = fs.Replicas();
    EXPECT_EQ(report.unreadable, 0u) << "node " << node << " down";
    EXPECT_GT(report.degraded, 0u) << "node " << node << " down";
    fs.SetDatanodeAvailable(node, true);
  }
  ReplicaReport healthy = fs.Replicas();
  EXPECT_EQ(healthy.fully_available, healthy.blocks);
}

TEST(MiniHdfsShardingTest, PlacementFollowsRename) {
  HdfsOptions opts;
  opts.num_datanodes = 3;
  opts.replication = 1;
  MiniHdfs fs(nullptr, opts);
  ASSERT_TRUE(fs.WriteFile("/dir/f", "payload").ok());
  // Find the node holding the file's block.
  int holder = -1;
  for (int node = 0; node < 3 && holder < 0; ++node) {
    fs.SetDatanodeAvailable(node, false);
    if (!fs.ReadFile("/dir/f").ok()) holder = node;
    fs.SetDatanodeAvailable(node, true);
  }
  ASSERT_GE(holder, 0);
  // Renames move the path, not the blocks — the same node failing still
  // darkens the file at its new name.
  ASSERT_TRUE(fs.Rename("/dir/f", "/dir/g").ok());
  fs.SetDatanodeAvailable(holder, false);
  EXPECT_TRUE(fs.ReadFile("/dir/g").status().IsUnavailable());
  fs.SetDatanodeAvailable(holder, true);
  EXPECT_EQ(fs.ReadFile("/dir/g").value(), "payload");
}

TEST(MiniHdfsShardingTest, WriteDuringBrownoutIsUnderReplicated) {
  HdfsOptions opts;
  opts.num_datanodes = 2;
  opts.replication = 2;
  MiniHdfs fs(nullptr, opts);
  fs.SetDatanodeAvailable(1, false);
  ASSERT_TRUE(fs.WriteFile("/f", "written during brownout").ok());
  EXPECT_GE(fs.replica_shortfalls(), 1u);
  EXPECT_GT(fs.Replicas().under_replicated, 0u);
  EXPECT_TRUE(fs.ReadFile("/f").ok());
  // With every datanode dark there is nowhere to place new blocks.
  fs.SetDatanodeAvailable(0, false);
  EXPECT_TRUE(fs.WriteFile("/g", "x").IsUnavailable());
}

TEST(MiniHdfsShardingTest, CorruptFileFlipsOneByteSilently) {
  Simulator sim(1000);
  MiniHdfs fs(&sim);
  ASSERT_TRUE(fs.WriteFile("/f", "hello").ok());
  sim.RunUntil(5000);
  ASSERT_TRUE(fs.CorruptFile("/f", 1).ok());
  std::string body = fs.ReadFile("/f").value();
  ASSERT_EQ(body.size(), 5u);
  EXPECT_NE(body, "hello");
  EXPECT_EQ(body[0], 'h');
  EXPECT_NE(body[1], 'e');
  // Silent: no mtime bump, no write accounting — only the chaos counter.
  EXPECT_EQ(fs.Stat("/f")->mtime, 1000);
  EXPECT_EQ(fs.bytes_written(), 5u);
  EXPECT_EQ(fs.chaos_corruptions(), 1u);
  // Offsets wrap around the file size.
  ASSERT_TRUE(fs.CorruptFile("/f", 6).ok());
  EXPECT_NE(fs.ReadFile("/f").value()[1], body[1]);
  // Directories and empty files cannot be corrupted.
  ASSERT_TRUE(fs.Mkdirs("/d").ok());
  EXPECT_FALSE(fs.CorruptFile("/d", 0).ok());
  ASSERT_TRUE(fs.WriteFile("/empty", "").ok());
  EXPECT_FALSE(fs.CorruptFile("/empty", 0).ok());
}

}  // namespace
}  // namespace unilog::hdfs
