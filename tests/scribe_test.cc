// Tests for the Scribe delivery infrastructure (Figure 1): daemons,
// aggregators, ZooKeeper-based discovery and failover, staging writes,
// and the log mover's atomic hourly slide into the warehouse.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "columnar/rcfile.h"
#include "common/compress.h"
#include "common/sim_time.h"
#include "events/client_event.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "scribe/aggregator.h"
#include "scribe/buffer_pool.h"
#include "scribe/cluster.h"
#include "scribe/daemon.h"
#include "scribe/log_mover.h"
#include "scribe/message.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::scribe {
namespace {

constexpr TimeMs kT0 = 1345507200000;  // 2012-08-21 00:00 UTC

// ---------------------------------------------------------------------------
// Simulator basics

TEST(SimulatorTest, EventsRunInTimeThenFifoOrder) {
  Simulator sim(100);
  std::vector<int> order;
  sim.At(300, [&] { order.push_back(3); });
  sim.At(200, [&] { order.push_back(1); });
  sim.At(200, [&] { order.push_back(2); });  // same time: FIFO
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
  EXPECT_EQ(sim.EventsProcessed(), 3u);
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.At(50, [&] { ++fired; });
  sim.At(150, [&] { ++fired; });
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim(1000);
  TimeMs seen = -1;
  sim.At(5, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 1000);
}

TEST(SimulatorTest, CallbacksCanScheduleMore) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) sim.After(10, chain);
  };
  sim.After(10, chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 50);
}

// ---------------------------------------------------------------------------
// Message framing

TEST(MessageTest, FrameUnframeRoundTrip) {
  std::vector<std::string> msgs = {"a", "", std::string(500, 'x'), "end"};
  std::string body = FrameMessages(msgs);
  auto back = UnframeMessages(body);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, msgs);
  EXPECT_EQ(CountFramed(body).value(), 4u);
}

TEST(MessageTest, CorruptFramingDetected) {
  std::string body = FrameMessages({"hello", "world"});
  EXPECT_FALSE(UnframeMessages(body.substr(0, body.size() - 2)).ok());
  EXPECT_FALSE(CountFramed(body.substr(0, 3)).ok());
}

// ---------------------------------------------------------------------------
// Aggregator

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest()
      : sim_(kT0), zk_(&sim_), staging_(&sim_), options_() {
    options_.roll_interval_ms = 10 * kMillisPerSecond;
    options_.compress = true;
  }

  Simulator sim_;
  zk::ZooKeeper zk_;
  hdfs::MiniHdfs staging_;
  ScribeOptions options_;
};

TEST_F(AggregatorTest, StartRegistersEphemeralZnode) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  EXPECT_TRUE(zk_.Exists("/scribe/dc1/aggregators/agg0"));
  auto children = zk_.GetChildren(AggregatorRegistryPath("dc1"));
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, std::vector<std::string>{"agg0"});
}

TEST_F(AggregatorTest, ReceiveBuffersAndRollWritesCompressedFile) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  std::vector<LogEntry> batch = {{"client_events", "msg-one"},
                                 {"client_events", "msg-two"}};
  ASSERT_TRUE(agg.Receive(batch).ok());
  EXPECT_EQ(agg.stats().entries_received, 2u);
  EXPECT_EQ(agg.UnflushedWatermark(), TruncateToHour(kT0));

  agg.RollAll();
  EXPECT_EQ(agg.UnflushedWatermark(), INT64_MAX);
  auto files = staging_.ListRecursive("/staging/client_events");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  EXPECT_NE((*files)[0].path.find("/staging/client_events/2012/08/21/00/"),
            std::string::npos);

  auto body = staging_.ReadFile((*files)[0].path);
  ASSERT_TRUE(body.ok());
  auto raw = Lz::Decompress(*body);
  ASSERT_TRUE(raw.ok());
  auto msgs = UnframeMessages(*raw);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, (std::vector<std::string>{"msg-one", "msg-two"}));
}

TEST_F(AggregatorTest, PeriodicRollTimerFires) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  ASSERT_TRUE(agg.Receive({{"cat", "m"}}).ok());
  sim_.RunUntil(kT0 + 11 * kMillisPerSecond);
  EXPECT_EQ(agg.stats().files_written, 1u);
}

TEST_F(AggregatorTest, SizeTriggeredEarlyRoll) {
  options_.roll_bytes = 100;
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  ASSERT_TRUE(agg.Receive({{"cat", std::string(200, 'x')}}).ok());
  // Roll happened inline, before any timer.
  EXPECT_EQ(agg.stats().files_written, 1u);
}

TEST_F(AggregatorTest, CrashDropsBufferAndDeregisters) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  ASSERT_TRUE(agg.Receive({{"cat", "m1"}, {"cat", "m2"}}).ok());
  agg.Crash();
  EXPECT_FALSE(agg.alive());
  EXPECT_EQ(agg.stats().entries_lost_in_crash, 2u);
  sim_.Run();  // deliver watch events
  EXPECT_FALSE(zk_.Exists("/scribe/dc1/aggregators/agg0"));
  EXPECT_TRUE(agg.Receive({{"cat", "m3"}}).IsUnavailable());
}

TEST_F(AggregatorTest, RestartAfterCrashReRegisters) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  agg.Crash();
  ASSERT_TRUE(agg.Start().ok());
  EXPECT_TRUE(agg.alive());
  EXPECT_TRUE(zk_.Exists("/scribe/dc1/aggregators/agg0"));
  ASSERT_TRUE(agg.Receive({{"cat", "m"}}).ok());
}

TEST_F(AggregatorTest, HdfsOutageKeepsDataBuffered) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  ASSERT_TRUE(agg.Receive({{"cat", "m"}}).ok());
  staging_.SetAvailable(false);
  agg.RollAll();
  EXPECT_EQ(agg.stats().files_written, 0u);
  EXPECT_GE(agg.stats().hdfs_write_failures, 1u);
  EXPECT_EQ(agg.UnflushedWatermark(), TruncateToHour(kT0));
  // Recovery: next roll drains the buffer — no data lost.
  staging_.SetAvailable(true);
  agg.RollAll();
  EXPECT_EQ(agg.stats().files_written, 1u);
  EXPECT_EQ(agg.UnflushedWatermark(), INT64_MAX);
}

TEST_F(AggregatorTest, BufferLimitDropsOldestDuringOutage) {
  options_.aggregator_buffer_limit_bytes = 100;
  options_.roll_bytes = 1 << 20;  // no size-triggered roll
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  staging_.SetAvailable(false);
  // 25-byte messages against a 100-byte limit: only the newest 4 survive.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        agg.Receive({{"cat", "msg-" + std::to_string(i) + std::string(20, 'x')}})
            .ok());
  }
  EXPECT_EQ(agg.stats().entries_dropped_overflow, 6u);
  EXPECT_EQ(agg.BufferedEntries(), 4u);
  EXPECT_LE(agg.BufferedBytes(), 100u);

  // Recovery: the surviving (newest) messages reach staging; accounting
  // closes — received == staged + dropped.
  staging_.SetAvailable(true);
  agg.RollAll();
  EXPECT_EQ(agg.stats().entries_staged, 4u);
  EXPECT_EQ(agg.stats().entries_received,
            agg.stats().entries_staged + agg.stats().entries_dropped_overflow);
  auto files = staging_.ListRecursive("/staging/cat");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  auto raw = Lz::Decompress(*staging_.ReadFile((*files)[0].path));
  ASSERT_TRUE(raw.ok());
  auto msgs = UnframeMessages(*raw);
  ASSERT_TRUE(msgs.ok());
  ASSERT_EQ(msgs->size(), 4u);
  EXPECT_EQ((*msgs)[0].substr(0, 5), "msg-6");  // oldest were dropped
  EXPECT_EQ((*msgs)[3].substr(0, 5), "msg-9");
}

TEST_F(AggregatorTest, LongAggregatorIdsProduceDistinctStagedFiles) {
  // Two aggregators whose ids only differ past the 63rd character used to
  // collide onto one staged file name (fixed-buffer snprintf truncation):
  // the second roll then failed forever with AlreadyExists.
  std::string prefix(80, 'a');
  Aggregator agg1(&sim_, &zk_, &staging_, "dc1", prefix + "-1", options_);
  Aggregator agg2(&sim_, &zk_, &staging_, "dc1", prefix + "-2", options_);
  ASSERT_TRUE(agg1.Start().ok());
  ASSERT_TRUE(agg2.Start().ok());
  ASSERT_TRUE(agg1.Receive({{"cat", "from-1"}}).ok());
  ASSERT_TRUE(agg2.Receive({{"cat", "from-2"}}).ok());
  agg1.RollAll();
  agg2.RollAll();
  EXPECT_EQ(agg1.stats().files_written, 1u);
  EXPECT_EQ(agg2.stats().files_written, 1u);
  EXPECT_EQ(agg1.stats().hdfs_write_failures, 0u);
  EXPECT_EQ(agg2.stats().hdfs_write_failures, 0u);
  auto files = staging_.ListRecursive("/staging/cat");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 2u);
}

// ---------------------------------------------------------------------------
// Daemon + failover

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() : sim_(kT0), zk_(&sim_), staging_(&sim_) {
    options_.daemon_flush_interval_ms = kMillisPerSecond;
    options_.daemon_retry_backoff_ms = 2 * kMillisPerSecond;
  }

  ScribeDaemon MakeDaemon(const std::string& host) {
    auto resolver = [this](const std::string& name) -> Aggregator* {
      for (Aggregator* a : aggs_) {
        if (a->id() == name) return a;
      }
      return nullptr;
    };
    return ScribeDaemon(&sim_, &zk_, "dc1", host, resolver, Rng(42), options_);
  }

  Simulator sim_;
  zk::ZooKeeper zk_;
  hdfs::MiniHdfs staging_;
  ScribeOptions options_;
  std::vector<Aggregator*> aggs_;
};

TEST_F(DaemonTest, LogsFlowToAggregator) {
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());
  aggs_ = {&agg};
  ScribeDaemon daemon = MakeDaemon("host0");
  daemon.Start();
  daemon.Log("client_events", "hello");
  daemon.Log("client_events", "world");
  EXPECT_EQ(daemon.QueuedEntries(), 2u);
  sim_.RunUntil(kT0 + 2 * kMillisPerSecond);
  EXPECT_EQ(daemon.QueuedEntries(), 0u);
  EXPECT_EQ(daemon.stats().entries_sent, 2u);
  EXPECT_EQ(agg.stats().entries_received, 2u);
}

TEST_F(DaemonTest, FailoverToSurvivingAggregator) {
  Aggregator agg0(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  Aggregator agg1(&sim_, &zk_, &staging_, "dc1", "agg1", options_);
  ASSERT_TRUE(agg0.Start().ok());
  ASSERT_TRUE(agg1.Start().ok());
  aggs_ = {&agg0, &agg1};
  ScribeDaemon daemon = MakeDaemon("host0");
  daemon.Start();

  daemon.Log("cat", "before-crash");
  sim_.RunUntil(kT0 + 2 * kMillisPerSecond);
  EXPECT_EQ(daemon.QueuedEntries(), 0u);

  // Kill both; log while dark; restart one; daemon must re-discover.
  agg0.Crash();
  agg1.Crash();
  daemon.Log("cat", "while-dark");
  sim_.RunUntil(kT0 + 10 * kMillisPerSecond);
  EXPECT_EQ(daemon.QueuedEntries(), 1u);  // buffered, not lost

  ASSERT_TRUE(agg1.Start().ok());
  sim_.RunUntil(kT0 + 30 * kMillisPerSecond);
  EXPECT_EQ(daemon.QueuedEntries(), 0u);
  EXPECT_EQ(agg1.stats().entries_received, 1u);
  EXPECT_GE(daemon.stats().rediscoveries, 2u);
}

TEST_F(DaemonTest, BufferLimitDropsOldest) {
  options_.daemon_buffer_limit_bytes = 100;
  ScribeDaemon daemon = MakeDaemon("host0");  // no aggregators at all
  daemon.Start();
  for (int i = 0; i < 10; ++i) {
    daemon.Log("cat", std::string(30, 'x'));
  }
  EXPECT_GT(daemon.stats().entries_dropped, 0u);
  EXPECT_LE(daemon.QueuedEntries() * 30, 100u);
}

TEST_F(DaemonTest, RetryBackoffBoundsRediscoveryRate) {
  // With every aggregator dark, each failed flush doubles the retry delay
  // (capped at daemon_retry_backoff_max_ms, jittered into [1/2, 1]x). Over a
  // ten-minute outage the daemon should poll zk a bounded number of times,
  // not once per flush tick.
  options_.daemon_retry_backoff_ms = 2 * kMillisPerSecond;
  options_.daemon_retry_backoff_max_ms = 60 * kMillisPerSecond;
  auto run_outage = [this]() {
    Simulator sim(kT0);
    zk::ZooKeeper zk(&sim);
    hdfs::MiniHdfs staging(&sim);
    // A registered aggregator whose connection always fails (resolver
    // returns nullptr): every retry attempt shows up as a rediscovery.
    Aggregator ghost(&sim, &zk, &staging, "dc1", "ghost", options_);
    EXPECT_TRUE(ghost.Start().ok());
    auto resolver = [](const std::string&) -> Aggregator* { return nullptr; };
    ScribeDaemon daemon(&sim, &zk, "dc1", "host0", resolver, Rng(42),
                        options_);
    daemon.Start();
    daemon.Log("cat", "stuck");
    sim.RunUntil(kT0 + 10 * kMillisPerMinute);
    return daemon.stats().rediscoveries;
  };
  uint64_t rediscoveries = run_outage();
  // Doubling 2s -> 60s cap with >= 1/2x jitter: ~6 ramp attempts plus at
  // most one per 30s at the cap — far below the ~600 an uncapped 1s flush
  // loop would issue. 30 leaves slack for jitter landing at the low edge.
  EXPECT_GE(rediscoveries, 5u);
  EXPECT_LE(rediscoveries, 30u);
  // Jitter is Rng-seeded, so the schedule is deterministic per seed.
  EXPECT_EQ(run_outage(), rediscoveries);
}

// ---------------------------------------------------------------------------
// Log mover

class LogMoverTest : public ::testing::Test {
 protected:
  LogMoverTest() : sim_(kT0), zk_(&sim_), warehouse_(&sim_) {
    scribe_options_.roll_interval_ms = 10 * kMillisPerSecond;
    mover_options_.run_interval_ms = kMillisPerMinute;
    mover_options_.grace_ms = kMillisPerMinute;
  }

  Simulator sim_;
  zk::ZooKeeper zk_;
  hdfs::MiniHdfs warehouse_;
  ScribeOptions scribe_options_;
  LogMoverOptions mover_options_;
};

TEST_F(LogMoverTest, MovesClosedHourAcrossDatacenters) {
  hdfs::MiniHdfs staging1(&sim_), staging2(&sim_);
  Aggregator agg1(&sim_, &zk_, &staging1, "dc1", "a1", scribe_options_);
  Aggregator agg2(&sim_, &zk_, &staging2, "dc2", "a2", scribe_options_);
  ASSERT_TRUE(agg1.Start().ok());
  ASSERT_TRUE(agg2.Start().ok());
  std::vector<Aggregator*> dc1 = {&agg1}, dc2 = {&agg2};
  LogMover mover(&sim_,
                 {DatacenterHandle{"dc1", &staging1, &dc1},
                  DatacenterHandle{"dc2", &staging2, &dc2}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  ASSERT_TRUE(agg1.Receive({{"client_events", "from-dc1-a"},
                            {"client_events", "from-dc1-b"}})
                  .ok());
  ASSERT_TRUE(agg2.Receive({{"client_events", "from-dc2"}}).ok());
  agg1.RollAll();
  agg2.RollAll();

  // Run past the hour close + grace; the mover should slide the hour.
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);
  std::string dir = "/logs/client_events/2012/08/21/00";
  ASSERT_TRUE(warehouse_.Exists(dir));
  auto files = warehouse_.ListRecursive(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_GE(files->size(), 1u);

  // All three messages present after decompress+unframe.
  std::vector<std::string> all;
  for (const auto& f : *files) {
    auto body = warehouse_.ReadFile(f.path);
    ASSERT_TRUE(body.ok());
    auto raw = Lz::Decompress(*body);
    ASSERT_TRUE(raw.ok());
    auto msgs = UnframeMessages(*raw);
    ASSERT_TRUE(msgs.ok());
    for (auto& m : *msgs) all.push_back(std::move(m));
  }
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(mover.stats().messages_moved, 3u);
  EXPECT_EQ(mover.stats().hours_moved, 1u);

  // Staging is cleaned up.
  EXPECT_FALSE(staging1.Exists("/staging/client_events/2012/08/21/00"));
  EXPECT_FALSE(staging2.Exists("/staging/client_events/2012/08/21/00"));
}

TEST_F(LogMoverTest, BarrierWaitsForUnflushedAggregator) {
  hdfs::MiniHdfs staging1(&sim_);
  Aggregator agg(&sim_, &zk_, &staging1, "dc1", "a1", scribe_options_);
  ASSERT_TRUE(agg.Start().ok());
  std::vector<Aggregator*> dc1 = {&agg};
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &dc1}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  // Simulate an HDFS outage so the periodic roll cannot flush: data for
  // hour 0 stays buffered past the hour boundary.
  ASSERT_TRUE(agg.Receive({{"cat", "stuck"}}).ok());
  staging1.SetAvailable(false);
  sim_.RunUntil(kT0 + kMillisPerHour + 10 * kMillisPerMinute);
  EXPECT_EQ(mover.next_hour(), TruncateToHour(kT0));  // barrier holds

  // Outage ends; aggregator flushes on its timer; mover advances.
  staging1.SetAvailable(true);
  sim_.RunUntil(kT0 + kMillisPerHour + 20 * kMillisPerMinute);
  EXPECT_GT(mover.next_hour(), TruncateToHour(kT0));
  EXPECT_TRUE(warehouse_.Exists("/logs/cat/2012/08/21/00"));
}

TEST_F(LogMoverTest, CorruptStagingFileSkippedNotFatal) {
  hdfs::MiniHdfs staging1(&sim_);
  std::vector<Aggregator*> none;
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &none}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  // One good file, one garbage file.
  std::string good = Lz::Compress(FrameMessages({"ok-message"}));
  ASSERT_TRUE(
      staging1.WriteFile("/staging/cat/2012/08/21/00/good", good).ok());
  ASSERT_TRUE(
      staging1.WriteFile("/staging/cat/2012/08/21/00/bad", "garbage!").ok());
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);
  EXPECT_TRUE(warehouse_.Exists("/logs/cat/2012/08/21/00"));
  EXPECT_EQ(mover.stats().messages_moved, 1u);
  EXPECT_EQ(mover.stats().corrupt_files_skipped, 1u);
}

TEST_F(LogMoverTest, MergesManySmallFilesIntoFew) {
  hdfs::MiniHdfs staging1(&sim_);
  std::vector<Aggregator*> none;
  mover_options_.target_file_bytes = 1 << 20;
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &none}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);
  for (int i = 0; i < 40; ++i) {
    std::string body =
        Lz::Compress(FrameMessages({"m" + std::to_string(i)}));
    ASSERT_TRUE(staging1
                    .WriteFile("/staging/cat/2012/08/21/00/f" +
                                   std::to_string(i),
                               body)
                    .ok());
  }
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);
  auto files = warehouse_.ListRecursive("/logs/cat/2012/08/21/00");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 1u);  // 40 small files → 1 big file
  EXPECT_EQ(mover.stats().staging_files_read, 40u);
  EXPECT_EQ(mover.stats().messages_moved, 40u);
}

TEST_F(LogMoverTest, ColumnarCategoryWritesRcFileParts) {
  hdfs::MiniHdfs staging1(&sim_);
  std::vector<Aggregator*> none;
  mover_options_.columnar_categories = {"client_events"};
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &none}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  // An hour of parseable client events plus one foreign message.
  std::vector<std::string> messages;
  std::vector<events::ClientEvent> staged;
  for (int i = 0; i < 6; ++i) {
    events::ClientEvent ev;
    ev.initiator = events::EventInitiator::kClientUser;
    ev.event_name = i % 2 == 0 ? "web:home:::tweet:click"
                               : "web:home:::tweet:impression";
    ev.user_id = 100 + i;
    ev.session_id = "s" + std::to_string(i);
    ev.ip = "10.0.0.1";
    ev.timestamp = kT0 + i * 1000;
    staged.push_back(ev);
    messages.push_back(ev.Serialize());
  }
  messages.push_back("not-a-client-event");
  ASSERT_TRUE(staging1
                  .WriteFile("/staging/client_events/2012/08/21/00/f0",
                             Lz::Compress(FrameMessages(messages)))
                  .ok());
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);

  auto files = warehouse_.ListRecursive("/logs/client_events/2012/08/21/00");
  ASSERT_TRUE(files.ok());
  std::vector<events::ClientEvent> columnar_rows;
  std::vector<std::string> sidecar_messages;
  for (const auto& f : *files) {
    auto body = warehouse_.ReadFile(f.path);
    ASSERT_TRUE(body.ok());
    if (columnar::IsRcFile(*body)) {
      columnar::RcFileReader reader(*body);
      ASSERT_TRUE(reader.ReadAll(columnar::kAllColumns, &columnar_rows).ok());
    } else {
      // The fallback sidecar keeps unparseable messages verbatim.
      auto raw = Lz::Decompress(*body);
      ASSERT_TRUE(raw.ok());
      auto msgs = UnframeMessages(*raw);
      ASSERT_TRUE(msgs.ok());
      for (auto& m : *msgs) sidecar_messages.push_back(std::move(m));
    }
  }
  EXPECT_EQ(columnar_rows, staged);
  ASSERT_EQ(sidecar_messages.size(), 1u);
  EXPECT_EQ(sidecar_messages[0], "not-a-client-event");

  // Audit stays balanced: every merged message is accounted as moved.
  EXPECT_EQ(mover.stats().messages_moved, 7u);
  EXPECT_GE(mover.stats().columnar_files_written, 1u);
  EXPECT_EQ(mover.stats().columnar_parse_fallbacks, 1u);
}

TEST_F(LogMoverTest, ColumnarCategorySkipsEtwinIndex) {
  hdfs::MiniHdfs staging1(&sim_);
  std::vector<Aggregator*> none;
  mover_options_.columnar_categories = {"client_events"};
  mover_options_.index_categories = {"client_events"};
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &none}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  events::ClientEvent ev;
  ev.event_name = "web:home:::tweet:click";
  ev.user_id = 1;
  ev.session_id = "s";
  ev.ip = "10.0.0.1";
  ev.timestamp = kT0;
  ASSERT_TRUE(staging1
                  .WriteFile("/staging/client_events/2012/08/21/00/f0",
                             Lz::Compress(FrameMessages({ev.Serialize()})))
                  .ok());
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);

  std::string hour_dir = "/logs/client_events/2012/08/21/00";
  ASSERT_TRUE(warehouse_.Exists(hour_dir));
  // Zone maps and dictionaries in the RCFile headers subsume the index.
  EXPECT_FALSE(warehouse_.Exists(hour_dir + "/_etwin_index"));
}

TEST_F(LogMoverTest, LateStagedFileForMovedHourDroppedViaRetryPath) {
  // Regression: when the hour's warehouse directory already exists (a
  // previous attempt succeeded for this category), MoveCategoryHour used
  // to return early and leak whatever sat in staging forever, uncounted.
  hdfs::MiniHdfs staging1(&sim_);
  std::vector<Aggregator*> none;
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &none}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  ASSERT_TRUE(warehouse_.Mkdirs("/logs/cat/2012/08/21/00").ok());
  std::string body = Lz::Compress(FrameMessages({"late-1", "late-2"}));
  ASSERT_TRUE(
      staging1.WriteFile("/staging/cat/2012/08/21/00/straggler", body).ok());
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);

  EXPECT_EQ(mover.stats().late_files_dropped, 1u);
  EXPECT_EQ(mover.stats().late_entries_dropped, 2u);
  EXPECT_FALSE(staging1.Exists("/staging/cat/2012/08/21/00"));
  EXPECT_GT(mover.next_hour(), TruncateToHour(kT0));  // hour not stuck
}

TEST_F(LogMoverTest, SweepDropsStragglersStagedAfterHourMoved) {
  hdfs::MiniHdfs staging1(&sim_);
  std::vector<Aggregator*> none;
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &none}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  std::string good = Lz::Compress(FrameMessages({"on-time"}));
  ASSERT_TRUE(
      staging1.WriteFile("/staging/cat/2012/08/21/00/good", good).ok());
  sim_.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);
  ASSERT_EQ(mover.stats().messages_moved, 1u);

  // A straggler for the already-moved hour appears later; the periodic
  // sweep must drop and count it instead of leaking it.
  std::string late = Lz::Compress(FrameMessages({"too-late"}));
  ASSERT_TRUE(
      staging1.WriteFile("/staging/cat/2012/08/21/00/late", late).ok());
  sim_.RunUntil(kT0 + kMillisPerHour + 10 * kMillisPerMinute);
  EXPECT_EQ(mover.stats().late_files_dropped, 1u);
  EXPECT_EQ(mover.stats().late_entries_dropped, 1u);
  EXPECT_FALSE(staging1.Exists("/staging/cat/2012/08/21/00"));
  // The on-time data is untouched.
  EXPECT_TRUE(warehouse_.Exists("/logs/cat/2012/08/21/00"));
  EXPECT_EQ(mover.stats().messages_moved, 1u);
}

TEST_F(LogMoverTest, BarrierStallAndMoveRetryCountedSeparately) {
  // Regression: MoveHour failures (warehouse outage) used to be counted
  // as barrier_stalls, hiding real barrier behavior from operators.
  hdfs::MiniHdfs staging1(&sim_);
  Aggregator agg(&sim_, &zk_, &staging1, "dc1", "a1", scribe_options_);
  ASSERT_TRUE(agg.Start().ok());
  std::vector<Aggregator*> dc1 = {&agg};
  LogMover mover(&sim_, {DatacenterHandle{"dc1", &staging1, &dc1}},
                 &warehouse_, mover_options_);
  mover.Start(kT0);

  // Phase 1 — staging outage keeps the aggregator unflushed past the hour
  // close: barrier stalls, no move retries.
  ASSERT_TRUE(agg.Receive({{"cat", "stuck"}}).ok());
  staging1.SetAvailable(false);
  sim_.RunUntil(kT0 + kMillisPerHour + 5 * kMillisPerMinute);
  EXPECT_GT(mover.stats().barrier_stalls, 0u);
  EXPECT_EQ(mover.stats().move_retries, 0u);

  // Phase 2 — aggregator flushes, but the warehouse is down: the move
  // itself fails and is retried, with no new barrier stalls.
  staging1.SetAvailable(true);
  warehouse_.SetAvailable(false);
  uint64_t stalls_before = mover.stats().barrier_stalls;
  sim_.RunUntil(kT0 + kMillisPerHour + 15 * kMillisPerMinute);
  EXPECT_GT(mover.stats().move_retries, 0u);
  EXPECT_EQ(mover.stats().barrier_stalls, stalls_before);

  // Phase 3 — warehouse recovers; the hour moves with nothing lost.
  warehouse_.SetAvailable(true);
  sim_.RunUntil(kT0 + kMillisPerHour + 25 * kMillisPerMinute);
  EXPECT_EQ(mover.stats().messages_moved, 1u);
  EXPECT_TRUE(warehouse_.Exists("/logs/cat/2012/08/21/00"));
}

// ---------------------------------------------------------------------------
// Full cluster integration

TEST(ScribeClusterTest, EndToEndDeliveryConservation) {
  Simulator sim(kT0);
  ClusterTopology topo;
  topo.datacenters = {"dc1", "dc2"};
  topo.aggregators_per_dc = 2;
  topo.daemons_per_dc = 4;
  ScribeOptions sopts;
  sopts.roll_interval_ms = 30 * kMillisPerSecond;
  LogMoverOptions mopts;
  mopts.run_interval_ms = 2 * kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;
  ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/7);
  ASSERT_TRUE(cluster.Start().ok());

  // Produce traffic for 90 minutes of virtual time.
  const int kMessages = 2000;
  for (int i = 0; i < kMessages; ++i) {
    TimeMs at = kT0 + (i * 90 * kMillisPerMinute) / kMessages;
    size_t dc = i % 2;
    sim.At(at, [&cluster, dc, i]() {
      cluster.Log(dc, LogEntry{"client_events", "m" + std::to_string(i)});
    });
  }
  // Run long enough for hour 0 to be moved (closed at +60m, grace +1m).
  sim.RunUntil(kT0 + 2 * kMillisPerHour + 10 * kMillisPerMinute);

  ClusterStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.entries_logged, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.entries_dropped_at_daemons, 0u);
  EXPECT_EQ(stats.entries_lost_in_crashes, 0u);
  // Hour 0 (two-thirds of the messages) must be in the warehouse.
  EXPECT_TRUE(cluster.warehouse()->Exists("/logs/client_events/2012/08/21/00"));
  EXPECT_GT(stats.messages_in_warehouse, 0u);
}

TEST(ScribeClusterTest, AggregatorCrashCausesBoundedLossOnly) {
  Simulator sim(kT0);
  ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.aggregators_per_dc = 2;
  topo.daemons_per_dc = 3;
  ScribeOptions sopts;
  sopts.roll_interval_ms = 20 * kMillisPerSecond;
  LogMoverOptions mopts;
  mopts.run_interval_ms = 2 * kMillisPerMinute;
  ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/11);
  ASSERT_TRUE(cluster.Start().ok());

  const int kMessages = 1000;
  for (int i = 0; i < kMessages; ++i) {
    TimeMs at = kT0 + (i * 40 * kMillisPerMinute) / kMessages;
    sim.At(at, [&cluster, i]() {
      cluster.Log(0, LogEntry{"client_events", "m" + std::to_string(i)});
    });
  }
  // Crash one aggregator mid-stream; restart it later.
  sim.At(kT0 + 15 * kMillisPerMinute, [&]() { cluster.CrashAggregator(0, 0); });
  sim.At(kT0 + 25 * kMillisPerMinute,
         [&]() { ASSERT_TRUE(cluster.RestartAggregator(0, 0).ok()); });
  sim.RunUntil(kT0 + 2 * kMillisPerHour);

  ClusterStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.entries_logged, static_cast<uint64_t>(kMessages));
  // Loss is bounded by one roll interval's worth of buffered messages.
  EXPECT_LT(stats.entries_lost_in_crashes, 300u);
  // Delivered messages = logged - crash loss (hour 0 fully moved).
  EXPECT_EQ(stats.messages_in_warehouse,
            stats.entries_logged - stats.entries_lost_in_crashes);
  // Daemons noticed and re-discovered.
  EXPECT_GE(stats.daemon_rediscoveries, 1u);
}

TEST(ScribeClusterTest, StagingOutageDelaysButDoesNotLose) {
  Simulator sim(kT0);
  ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.aggregators_per_dc = 1;
  topo.daemons_per_dc = 2;
  ScribeOptions sopts;
  sopts.roll_interval_ms = 20 * kMillisPerSecond;
  LogMoverOptions mopts;
  mopts.run_interval_ms = 2 * kMillisPerMinute;
  ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/13);
  ASSERT_TRUE(cluster.Start().ok());

  const int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    TimeMs at = kT0 + (i * 50 * kMillisPerMinute) / kMessages;
    sim.At(at, [&cluster, i]() {
      cluster.Log(0, LogEntry{"client_events", "m" + std::to_string(i)});
    });
  }
  // 20-minute staging outage in the middle of the hour.
  sim.At(kT0 + 10 * kMillisPerMinute,
         [&]() { cluster.SetStagingAvailable(0, false); });
  sim.At(kT0 + 30 * kMillisPerMinute,
         [&]() { cluster.SetStagingAvailable(0, true); });
  sim.RunUntil(kT0 + 2 * kMillisPerHour);

  ClusterStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.entries_logged, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.entries_lost_in_crashes, 0u);
  EXPECT_EQ(stats.messages_in_warehouse, static_cast<uint64_t>(kMessages));
}

// ---------------------------------------------------------------------------
// Ingest buffer pool

TEST(BufferPoolTest, HitMissHighWaterAccounting) {
  BufferPool pool;
  {
    BufferPool::Lease a = pool.Acquire();
    BufferPool::Lease b = pool.Acquire();
    BufferPoolStats s = pool.stats();
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.outstanding, 2u);
    EXPECT_EQ(s.high_water, 2u);
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.pooled, 2u);
  BufferPool::Lease c = pool.Acquire();
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.high_water, 2u);  // never exceeded two simultaneous leases
}

TEST(BufferPoolTest, AcquireClearsButKeepsCapacity) {
  BufferPool pool;
  const std::string* addr;
  size_t cap;
  {
    BufferPool::Lease l = pool.Acquire();
    l->assign(100000, 'x');
    addr = l.get();
    cap = l->capacity();
  }
  BufferPool::Lease l = pool.Acquire();
  EXPECT_EQ(l.get(), addr);  // same buffer came back
  EXPECT_TRUE(l->empty());
  EXPECT_GE(l->capacity(), cap);
}

TEST(BufferPoolTest, FreelistBoundedByMaxPooled) {
  BufferPool pool(/*max_pooled=*/2);
  {
    std::vector<BufferPool::Lease> leases;
    for (int i = 0; i < 5; ++i) leases.push_back(pool.Acquire());
    EXPECT_EQ(pool.stats().high_water, 5u);
  }
  EXPECT_EQ(pool.stats().pooled, 2u);  // three extra buffers were freed
}

TEST(BufferPoolTest, OutstandingLeaseIsolatedFromOverflowChurn) {
  // The drop-oldest-overflow safety invariant: while a lease is held (an
  // in-flight flush framing/compressing into it), arbitrary pool churn —
  // including releases past max_pooled — must never hand the same buffer
  // to anyone else or disturb its contents.
  BufferPool pool(/*max_pooled=*/1);
  BufferPool::Lease held = pool.Acquire();
  held->assign("in-flight flush bytes");
  const std::string* held_addr = held.get();
  for (int round = 0; round < 20; ++round) {
    std::vector<BufferPool::Lease> churn;
    for (int i = 0; i < 4; ++i) {
      churn.push_back(pool.Acquire());
      EXPECT_NE(churn.back().get(), held_addr);
      churn.back()->assign(100, static_cast<char>('a' + i));
    }
  }
  EXPECT_EQ(*held, "in-flight flush bytes");
  EXPECT_EQ(held.get(), held_addr);
}

TEST(BufferPoolTest, LeaseMoveAndEarlyRelease) {
  BufferPool pool;
  BufferPool::Lease a = pool.Acquire();
  a->assign("payload");
  BufferPool::Lease b = std::move(a);
  EXPECT_FALSE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(*b, "payload");
  EXPECT_EQ(pool.stats().outstanding, 1u);
  b.Release();
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(pool.stats().outstanding, 0u);
  b.Release();  // idempotent
  EXPECT_EQ(pool.stats().pooled, 1u);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseStress) {
  // Hammer the pool from several real threads (the log-mover workers do
  // exactly this); run under -DUNILOG_SANITIZE_THREAD=ON to prove the
  // freelist and counters are race-free. Each thread checks its leases are
  // private by stamping and re-reading a thread-unique pattern.
  BufferPool pool(/*max_pooled=*/4);
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, &ok, t]() {
      for (int iter = 0; iter < 500; ++iter) {
        BufferPool::Lease a = pool.Acquire();
        BufferPool::Lease b = pool.Acquire();
        a->assign(64 + iter % 64, static_cast<char>('A' + t));
        b->assign(32, static_cast<char>('a' + t));
        if ((*a)[0] != static_cast<char>('A' + t) ||
            (*b)[0] != static_cast<char>('a' + t) || a.get() == b.get()) {
          ok = false;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok);
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.hits + s.misses, 4u * 500u * 2u);
  EXPECT_LE(s.pooled, 4u);
}

TEST(BufferPoolTest, PublishMetricsWritesLabeledRegistryEntries) {
  Simulator sim(kT0);
  obs::MetricsRegistry metrics(&sim);
  BufferPool pool;
  { BufferPool::Lease a = pool.Acquire(); }
  { BufferPool::Lease b = pool.Acquire(); }  // hit
  pool.PublishMetrics(&metrics, {{"component", "test"}});
  obs::Labels labels{{"component", "test"}};
  EXPECT_EQ(metrics.GetCounter("scribe.ingest.pool_hits", labels)->value(),
            1u);
  EXPECT_EQ(metrics.GetCounter("scribe.ingest.pool_misses", labels)->value(),
            1u);
  EXPECT_EQ(metrics.GetGauge("scribe.ingest.pool_free", labels)->value(), 1);
  // Publishing twice must not double-count (set-by-delta).
  pool.PublishMetrics(&metrics, {{"component", "test"}});
  EXPECT_EQ(metrics.GetCounter("scribe.ingest.pool_hits", labels)->value(),
            1u);
}

TEST(BufferPoolTest, DoubleReleaseRejectedNotRecycled) {
  // A buffer the pool never leased (or one returned twice) must not reach
  // the freelist: recycling it would alias two future leases onto the same
  // bytes. The owner-tag check drops it and counts the incident.
#ifdef UNILOG_SANITIZE
  BufferPool pool;
  EXPECT_DEATH(
      BufferPoolTestPeer::Return(&pool, std::make_unique<std::string>("x")),
      "double release");
#else
  BufferPool pool;
  {
    BufferPool::Lease lease = pool.Acquire();
    lease->assign("legit");
  }  // one legitimate buffer in the freelist
  BufferPoolStats before = pool.stats();
  ASSERT_EQ(before.pooled, 1u);
  BufferPoolTestPeer::Return(&pool, std::make_unique<std::string>("foreign"));
  BufferPoolStats after = pool.stats();
  EXPECT_EQ(after.double_releases, before.double_releases + 1);
  EXPECT_EQ(after.pooled, before.pooled);  // rejected, not pooled
  EXPECT_EQ(after.outstanding, before.outstanding);  // accounting untouched
#endif
}

TEST_F(AggregatorTest, OverflowDuringOutageDoesNotCorruptPooledRolls) {
  // Drop-oldest overflow during an outage interleaves with failed rolls
  // whose pooled buffers go back to the freelist; the eventual successful
  // roll must stage exactly the surviving messages, byte-identical to the
  // fresh-string path.
  options_.aggregator_buffer_limit_bytes = 64;
  Aggregator agg(&sim_, &zk_, &staging_, "dc1", "agg0", options_);
  ASSERT_TRUE(agg.Start().ok());

  staging_.SetAvailable(false);
  ASSERT_TRUE(agg.Receive({{"cat", std::string(30, 'a')}}).ok());
  agg.RollAll();  // fails: outage; pooled buffers released back
  ASSERT_TRUE(agg.Receive({{"cat", std::string(30, 'b')}}).ok());
  ASSERT_TRUE(agg.Receive({{"cat", std::string(30, 'c')}}).ok());  // drops 'a'
  EXPECT_EQ(agg.stats().entries_dropped_overflow, 1u);
  EXPECT_GE(agg.stats().hdfs_write_failures, 1u);

  staging_.SetAvailable(true);
  agg.RollAll();
  auto files = staging_.ListRecursive("/staging/cat");
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 1u);
  auto body = staging_.ReadFile((*files)[0].path);
  ASSERT_TRUE(body.ok());
  std::vector<std::string> survivors = {std::string(30, 'b'),
                                        std::string(30, 'c')};
  EXPECT_EQ(*body, Lz::CompressReference(FrameMessages(survivors)));
  auto raw = Lz::Decompress(*body);
  ASSERT_TRUE(raw.ok());
  auto msgs = UnframeMessages(*raw);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, survivors);
  EXPECT_GT(agg.ingest_pool_stats().hits, 0u);  // freelist actually reused
}

// ---------------------------------------------------------------------------
// Parallel log mover

// Stages a deterministic mixed workload for one (category, hour): many
// small compressed files across two datacenters plus one corrupt file.
void StageParallelMoverWorkload(hdfs::MiniHdfs* staging1,
                                hdfs::MiniHdfs* staging2) {
  for (int i = 0; i < 24; ++i) {
    std::vector<std::string> msgs;
    for (int m = 0; m < 8; ++m) {
      msgs.push_back("dc" + std::to_string(i % 2) + "-f" + std::to_string(i) +
                     "-m" + std::to_string(m) + std::string(200, 'x'));
    }
    hdfs::MiniHdfs* fs = (i % 2 == 0) ? staging1 : staging2;
    char name[16];
    std::snprintf(name, sizeof(name), "f%03d", i);
    ASSERT_TRUE(fs->WriteFile("/staging/cat/2012/08/21/00/" +
                                  std::string(name),
                              Lz::Compress(FrameMessages(msgs)))
                    .ok());
  }
  ASSERT_TRUE(
      staging1->WriteFile("/staging/cat/2012/08/21/00/zz-corrupt", "junk!")
          .ok());
}

// Runs the mover over the staged workload and returns the warehouse as a
// path→bytes map.
std::map<std::string, std::string> RunMoverOverWorkload(
    exec::Executor* executor) {
  Simulator sim(kT0);
  hdfs::MiniHdfs staging1(&sim), staging2(&sim), warehouse(&sim);
  StageParallelMoverWorkload(&staging1, &staging2);
  std::vector<Aggregator*> none;
  LogMoverOptions mopts;
  mopts.run_interval_ms = kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;
  mopts.target_file_bytes = 4096;  // forces several parts per hour
  mopts.executor = executor;
  LogMover mover(&sim,
                 {DatacenterHandle{"dc1", &staging1, &none},
                  DatacenterHandle{"dc2", &staging2, &none}},
                 &warehouse, mopts);
  mover.Start(kT0);
  sim.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);
  EXPECT_EQ(mover.stats().corrupt_files_skipped, 1u);
  EXPECT_EQ(mover.stats().messages_moved, 24u * 8u);
  if (executor != nullptr && executor->parallel()) {
    EXPECT_GT(mover.ingest_pool_stats().hits, 0u);
  }
  std::map<std::string, std::string> out;
  auto files = warehouse.ListRecursive("/logs/cat/2012/08/21/00");
  EXPECT_TRUE(files.ok());
  if (files.ok()) {
    for (const auto& f : *files) {
      auto body = warehouse.ReadFile(f.path);
      EXPECT_TRUE(body.ok());
      if (body.ok()) out[f.path] = *body;
    }
  }
  return out;
}

TEST_F(LogMoverTest, ParallelMoverByteIdenticalToSerial) {
  std::map<std::string, std::string> serial = RunMoverOverWorkload(nullptr);
  ASSERT_GT(serial.size(), 1u);  // the small target produced several parts

  exec::ExecOptions eo;
  eo.threads = 4;
  exec::Executor executor4(eo);
  std::map<std::string, std::string> parallel =
      RunMoverOverWorkload(&executor4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [path, bytes] : serial) {
    auto it = parallel.find(path);
    ASSERT_NE(it, parallel.end()) << path;
    EXPECT_EQ(it->second, bytes) << path;
  }

  // And a second parallel run is identical too (no run-to-run jitter).
  exec::Executor executor2(exec::ExecOptions{.threads = 2});
  EXPECT_EQ(RunMoverOverWorkload(&executor2), parallel);
}

TEST_F(LogMoverTest, ParallelMoverCountsWorkItems) {
  Simulator sim(kT0);
  hdfs::MiniHdfs staging1(&sim), staging2(&sim), warehouse(&sim);
  StageParallelMoverWorkload(&staging1, &staging2);
  std::vector<Aggregator*> none;
  obs::MetricsRegistry metrics(&sim);
  exec::Executor executor(exec::ExecOptions{.threads = 3});
  LogMoverOptions mopts;
  mopts.run_interval_ms = kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;
  mopts.target_file_bytes = 4096;
  mopts.executor = &executor;
  LogMover mover(&sim,
                 {DatacenterHandle{"dc1", &staging1, &none},
                  DatacenterHandle{"dc2", &staging2, &none}},
                 &warehouse, mopts, &metrics);
  mover.Start(kT0);
  sim.RunUntil(kT0 + kMillisPerHour + 3 * kMillisPerMinute);

  // Both parallel stages saw work (the corrupt file still counts as an
  // unstage item; parts were planned from 24 good files).
  EXPECT_EQ(metrics.CounterTotal("scribe.ingest.files_unstaged_parallel"),
            25u);
  EXPECT_GT(metrics.CounterTotal("scribe.ingest.parts_built_parallel"), 1u);
  EXPECT_GT(metrics.CounterTotal("scribe.ingest.pool_hits"), 0u);
}

TEST(ScribeClusterTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(kT0);
    ClusterTopology topo;
    topo.datacenters = {"dc1", "dc2"};
    ScribeCluster cluster(&sim, topo, ScribeOptions{}, LogMoverOptions{},
                          seed);
    EXPECT_TRUE(cluster.Start().ok());
    for (int i = 0; i < 200; ++i) {
      TimeMs at = kT0 + i * 500;
      size_t dc = i % 2;
      sim.At(at, [&cluster, dc, i]() {
        cluster.Log(dc, LogEntry{"cat", "m" + std::to_string(i)});
      });
    }
    sim.RunUntil(kT0 + 90 * kMillisPerMinute);
    ClusterStats s = cluster.TotalStats();
    return std::make_tuple(s.entries_logged, s.messages_in_warehouse,
                           sim.EventsProcessed());
  };
  EXPECT_EQ(run(99), run(99));
}

}  // namespace
}  // namespace unilog::scribe
