// Tests for the Elephant Bird-style typed adapter: declarative field
// descriptors generating writers, readers, and schemas.

#include <gtest/gtest.h>

#include <string>

#include "thrift/adapter.h"

namespace unilog::thrift {

// A "search event" an application team might declare (§3: developers
// "come up with a simple logging object definition in Thrift, start using
// it").
struct SearchEvent {
  int64_t user_id = 0;
  std::string query;
  int32_t result_count = 0;
  double latency_ms = 0;
  bool personalized = false;
  int8_t shard = 0;
  int16_t datacenter = 0;
};

template <>
struct ThriftTraits<SearchEvent> {
  static constexpr const char* kName = "search_event";
  static constexpr auto fields() {
    return std::make_tuple(
        Field(1, "user_id", &SearchEvent::user_id),
        Field(2, "query", &SearchEvent::query),
        Field(3, "result_count", &SearchEvent::result_count),
        Field(4, "latency_ms", &SearchEvent::latency_ms,
              /*required=*/false),
        Field(5, "personalized", &SearchEvent::personalized,
              /*required=*/false),
        Field(6, "shard", &SearchEvent::shard, /*required=*/false),
        Field(7, "datacenter", &SearchEvent::datacenter,
              /*required=*/false));
  }
};

namespace {

SearchEvent Sample() {
  SearchEvent ev;
  ev.user_id = 987654321;
  ev.query = "vldb 2012 istanbul";
  ev.result_count = 42;
  ev.latency_ms = 13.5;
  ev.personalized = true;
  ev.shard = 7;
  ev.datacenter = -2;
  return ev;
}

bool Same(const SearchEvent& a, const SearchEvent& b) {
  return a.user_id == b.user_id && a.query == b.query &&
         a.result_count == b.result_count && a.latency_ms == b.latency_ms &&
         a.personalized == b.personalized && a.shard == b.shard &&
         a.datacenter == b.datacenter;
}

TEST(TypedAdapterTest, RoundTrip) {
  SearchEvent ev = Sample();
  std::string wire = SerializeTyped(ev);
  auto back = DeserializeTyped<SearchEvent>(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(Same(*back, ev));
}

TEST(TypedAdapterTest, InteroperatesWithDynamicParser) {
  // The typed writer produces standard compact protocol: the dynamic
  // parser reads it.
  std::string wire = SerializeTyped(Sample());
  auto dynamic = ParseStruct(wire);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_EQ(dynamic->FindField(1)->i64_value(), 987654321);
  EXPECT_EQ(dynamic->FindField(2)->string_value(), "vldb 2012 istanbul");
  EXPECT_EQ(dynamic->FindField(5)->bool_value(), true);
}

TEST(TypedAdapterTest, UnknownFieldsSkipped) {
  // A v2 producer adds fields 20/21; the v1 reader skips them.
  auto v2 = ParseStruct(SerializeTyped(Sample()));
  ASSERT_TRUE(v2.ok());
  v2->SetField(20, ThriftValue::String("extra"));
  v2->SetField(21, ThriftValue::Double(1.5));
  std::string wire;
  ASSERT_TRUE(SerializeStruct(*v2, &wire).ok());
  auto back = DeserializeTyped<SearchEvent>(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(Same(*back, Sample()));
}

TEST(TypedAdapterTest, MissingRequiredFieldFails) {
  auto dynamic = ParseStruct(SerializeTyped(Sample()));
  ASSERT_TRUE(dynamic.ok());
  dynamic->mutable_struct().fields.erase(2);  // drop the required query
  std::string wire;
  ASSERT_TRUE(SerializeStruct(*dynamic, &wire).ok());
  Status st = DeserializeTyped<SearchEvent>(wire).status();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("query"), std::string::npos);
}

TEST(TypedAdapterTest, MissingOptionalFieldKeepsDefault) {
  auto dynamic = ParseStruct(SerializeTyped(Sample()));
  ASSERT_TRUE(dynamic.ok());
  dynamic->mutable_struct().fields.erase(4);  // optional latency_ms
  std::string wire;
  ASSERT_TRUE(SerializeStruct(*dynamic, &wire).ok());
  auto back = DeserializeTyped<SearchEvent>(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->latency_ms, 0);
  EXPECT_EQ(back->query, Sample().query);
}

TEST(TypedAdapterTest, WireTypeMismatchDetected) {
  auto dynamic = ParseStruct(SerializeTyped(Sample()));
  ASSERT_TRUE(dynamic.ok());
  dynamic->SetField(2, ThriftValue::I64(5));  // query must be a string
  std::string wire;
  ASSERT_TRUE(SerializeStruct(*dynamic, &wire).ok());
  Status st = DeserializeTyped<SearchEvent>(wire).status();
  EXPECT_TRUE(st.IsCorruption());
}

TEST(TypedAdapterTest, SchemaGeneration) {
  StructSchema schema = SchemaOfTyped<SearchEvent>();
  EXPECT_EQ(schema.name(), "search_event");
  ASSERT_EQ(schema.fields().size(), 7u);
  const FieldSchema* query = schema.FindFieldByName("query");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->id, 2);
  EXPECT_EQ(query->type, TType::kString);
  EXPECT_TRUE(query->required);
  const FieldSchema* latency = schema.FindField(4);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->type, TType::kDouble);
  EXPECT_FALSE(latency->required);

  // The generated schema validates the dynamic form of the typed message.
  auto dynamic = ParseStruct(SerializeTyped(Sample()));
  ASSERT_TRUE(dynamic.ok());
  EXPECT_TRUE(schema.Validate(*dynamic).ok());
}

TEST(TypedAdapterTest, TruncationDetected) {
  std::string wire = SerializeTyped(Sample());
  EXPECT_FALSE(
      DeserializeTyped<SearchEvent>(wire.substr(0, wire.size() / 2)).ok());
  EXPECT_FALSE(DeserializeTyped<SearchEvent>(wire + "x").ok());
}

}  // namespace
}  // namespace unilog::thrift
