// The vectorized batch engine's contract: every kernel is byte-compatible
// with the row engine (SerializeRelation equality, including bit-identical
// double SUMs and join key semantics), parallel output equals serial at
// any thread count, the columnar scan's batch path equals Materialize, and
// the cost-based planner's decisions are deterministic and answer-neutral.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/compress.h"
#include "common/rng.h"
#include "dataflow/column_batch.h"
#include "dataflow/columnar_scan.h"
#include "dataflow/planner.h"
#include "dataflow/relation.h"
#include "dataflow/relation_serde.h"
#include "dataflow/vector_engine.h"
#include "columnar/rcfile.h"
#include "events/client_event.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"

namespace unilog {
namespace {

using dataflow::Aggregate;
using dataflow::BatchRelation;
using dataflow::ColumnBatch;
using dataflow::ColumnKind;
using dataflow::FilterExpr;
using dataflow::Relation;
using dataflow::Row;
using dataflow::Value;

std::string Bytes(const Relation& rel) {
  return dataflow::SerializeRelation(rel);
}

std::string BatchBytes(const BatchRelation& b) {
  auto rel = b.ToRelation();
  EXPECT_TRUE(rel.ok()) << rel.status().ToString();
  return Bytes(*rel);
}

/// Mixed-type relation with low-cardinality strings (dictionary bait),
/// duplicate rows, and signed-zero reals in a key column.
Relation MixedRelation(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Relation rel({"id", "grp", "score", "flag", "tag"});
  for (size_t i = 0; i < rows; ++i) {
    double score = rng.NextDouble() * 100 - 50;
    if (rng.Uniform(17) == 0) score = rng.Uniform(2) == 0 ? 0.0 : -0.0;
    EXPECT_TRUE(
        rel.AddRow({Value::Int(static_cast<int64_t>(i % 23)),
                    Value::Int(static_cast<int64_t>(rng.Uniform(7))),
                    Value::Real(score), Value::Bool(rng.Uniform(2) == 0),
                    Value::Str("t" + std::to_string(rng.Uniform(5)))})
            .ok());
  }
  return rel;
}

exec::Executor MakeExecutor(int threads) {
  exec::ExecOptions opts;
  opts.threads = threads;
  opts.min_items_per_chunk = 4;
  return exec::Executor(opts);
}

// ---------------------------------------------------------------------------
// Conversion and column typing.

TEST(ColumnBatchTest, RoundTripPreservesBytes) {
  for (size_t batch_rows : {1ul, 3ul, 64ul, 4096ul}) {
    Relation rel = MixedRelation(257, 7);
    auto batch = BatchRelation::FromRelation(rel, batch_rows);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(BatchBytes(*batch), Bytes(rel)) << "batch_rows=" << batch_rows;
  }
  Relation empty({"a", "b"});
  auto batch = BatchRelation::FromRelation(empty);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(BatchBytes(*batch), Bytes(empty));
}

TEST(ColumnBatchTest, BuildColumnPicksTypedLayouts) {
  auto kind_of = [](std::vector<Value> vals) {
    return ColumnBatch::BuildColumn(vals)->kind;
  };
  EXPECT_EQ(kind_of({Value::Int(1), Value::Int(2)}), ColumnKind::kInt64);
  EXPECT_EQ(kind_of({Value::Real(1.5)}), ColumnKind::kDouble);
  EXPECT_EQ(kind_of({Value::Bool(true), Value::Bool(false)}),
            ColumnKind::kBool);
  EXPECT_EQ(kind_of({Value::Str("a"), Value::Str("b"), Value::Str("a")}),
            ColumnKind::kDict);
  EXPECT_EQ(kind_of({Value::Int(1), Value::Str("x")}), ColumnKind::kValue);

  // Cardinality above kMaxDictEntries falls back to plain strings — and
  // the boxed values still round-trip identically.
  std::vector<Value> wide;
  for (size_t i = 0; i < dataflow::kMaxDictEntries + 40; ++i) {
    wide.push_back(Value::Str("name-" + std::to_string(i)));
  }
  auto col = ColumnBatch::BuildColumn(wide);
  EXPECT_EQ(col->kind, ColumnKind::kString);
  ASSERT_EQ(col->size(), wide.size());
  for (size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(col->ValueAt(i), wide[i]);
  }
}

TEST(ColumnBatchTest, DictionaryKeepsFirstAppearanceOrder) {
  auto col = ColumnBatch::BuildColumn(
      {Value::Str("z"), Value::Str("a"), Value::Str("z"), Value::Str("m")});
  ASSERT_EQ(col->kind, ColumnKind::kDict);
  ASSERT_NE(col->dict, nullptr);
  EXPECT_EQ(*col->dict, (std::vector<std::string>{"z", "a", "m"}));
  EXPECT_EQ(col->codes, (std::vector<uint32_t>{0, 1, 0, 2}));
}

// ---------------------------------------------------------------------------
// Kernels vs the row engine, serial and parallel.

Relation RowFilter(const Relation& rel, const std::vector<FilterExpr>& exprs) {
  Relation out = rel;
  for (const auto& e : exprs) {
    size_t idx = out.ColumnIndex(e.column).value();
    out = out.Filter([&e, idx](const Row& row) {
      return dataflow::EvalFilterOp(row[idx], e.op, e.literal);
    });
  }
  return out;
}

TEST(VectorKernelTest, FilterMatchesRowEngine) {
  Relation rel = MixedRelation(300, 11);
  auto batch = BatchRelation::FromRelation(rel, 64).value();

  const std::vector<std::vector<FilterExpr>> cases = {
      {{"grp", "<", Value::Int(4)}},
      {{"score", ">=", Value::Real(0.0)}},
      {{"flag", "==", Value::Bool(true)}},
      {{"tag", "!=", Value::Str("t2")}},
      {{"tag", "matches", Value::Str("t?")}},
      {{"grp", "<", Value::Int(4)}, {"tag", "==", Value::Str("t1")}},
      // Type-mismatched literal: Int column vs Str literal has a constant
      // verdict under the Value total order (ints sort before strings).
      {{"grp", "<", Value::Str("zzz")}},
      {{"grp", "==", Value::Str("zzz")}},  // selects nothing
      {{"id", ">=", Value::Int(0)}},       // selects everything
  };
  for (const auto& exprs : cases) {
    std::string want = Bytes(RowFilter(rel, exprs));
    auto serial = batch.Filter(exprs);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_EQ(BatchBytes(*serial), want);
    for (int threads : {2, 8}) {
      exec::Executor executor = MakeExecutor(threads);
      auto par = batch.Filter(exprs, &executor);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(BatchBytes(*par), want) << "threads=" << threads;
    }
  }
}

TEST(VectorKernelTest, FilterStacksOnExistingSelection) {
  Relation rel = MixedRelation(200, 13);
  auto batch = BatchRelation::FromRelation(rel, 32).value();
  auto first = batch.Filter({{"grp", "<", Value::Int(5)}}).value();
  auto second = first.Filter({{"flag", "==", Value::Bool(false)}}).value();
  std::string want = Bytes(RowFilter(
      rel, {{"grp", "<", Value::Int(5)}, {"flag", "==", Value::Bool(false)}}));
  EXPECT_EQ(BatchBytes(second), want);
}

TEST(VectorKernelTest, ProjectAndWithColumnMatchRowEngine) {
  Relation rel = MixedRelation(150, 17);
  auto batch = BatchRelation::FromRelation(rel, 50).value();
  // Project through a selection so gather paths are exercised.
  auto filtered = batch.Filter({{"grp", ">", Value::Int(1)}}).value();
  Relation row_filtered = RowFilter(rel, {{"grp", ">", Value::Int(1)}});

  auto projected = filtered.Project({"tag", "score"}).value();
  EXPECT_EQ(BatchBytes(projected),
            Bytes(row_filtered.Project({"tag", "score"}).value()));

  auto renamed = filtered.ProjectAs({"tag", "score"}, {"t", "s"}).value();
  auto row_renamed =
      Relation::FromRows(
          {"t", "s"},
          std::vector<Row>(
              row_filtered.Project({"tag", "score"}).value().rows()))
          .value();
  EXPECT_EQ(BatchBytes(renamed), Bytes(row_renamed));

  auto fn = [](const Row& row) {
    return Value::Real(row[2].AsNumber() * 2 + row[1].AsNumber());
  };
  auto with = filtered.WithColumn("derived", fn).value();
  EXPECT_EQ(BatchBytes(with),
            Bytes(row_filtered.WithColumn("derived", fn).value()));
  for (int threads : {2, 8}) {
    exec::Executor executor = MakeExecutor(threads);
    auto par = filtered.WithColumn("derived", fn, &executor).value();
    EXPECT_EQ(BatchBytes(par), BatchBytes(with)) << "threads=" << threads;
  }
}

TEST(VectorKernelTest, GroupByMatchesRowEngineBitForBit) {
  Relation rel = MixedRelation(400, 19);
  auto batch = BatchRelation::FromRelation(rel, 64).value();
  std::vector<Aggregate> aggs{{Aggregate::Op::kCount, "", "n"},
                              {Aggregate::Op::kSum, "score", "total"},
                              {Aggregate::Op::kMin, "score", "lo"},
                              {Aggregate::Op::kMax, "id", "hi"},
                              {Aggregate::Op::kCountDistinct, "tag", "tags"}};
  for (const auto& keys :
       std::vector<std::vector<std::string>>{{"grp"}, {"grp", "tag"},
                                             {"score"}, {"flag", "grp"}}) {
    std::string want = Bytes(rel.GroupBy(keys, aggs).value());
    auto got = batch.GroupBy(keys, aggs);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(Bytes(*got), want);
    for (int threads : {2, 8}) {
      exec::Executor executor = MakeExecutor(threads);
      auto par = batch.GroupBy(keys, aggs, &executor);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(Bytes(*par), want) << "threads=" << threads;
    }
  }
}

TEST(VectorKernelTest, GroupByThroughSelectionMatchesRowEngine) {
  Relation rel = MixedRelation(350, 23);
  std::vector<FilterExpr> pred{{"score", ">", Value::Real(-10.0)}};
  auto batch =
      BatchRelation::FromRelation(rel, 48).value().Filter(pred).value();
  Relation row = RowFilter(rel, pred);
  std::vector<Aggregate> aggs{{Aggregate::Op::kSum, "score", "total"},
                              {Aggregate::Op::kCount, "", "n"}};
  EXPECT_EQ(Bytes(batch.GroupBy({"grp"}, aggs).value()),
            Bytes(row.GroupBy({"grp"}, aggs).value()));
}

TEST(VectorKernelTest, SumOverNonNumericIsErrorNotGarbage) {
  Relation rel({"k", "s"});
  ASSERT_TRUE(rel.AddRow({Value::Int(1), Value::Str("oops")}).ok());
  ASSERT_TRUE(rel.AddRow({Value::Int(1), Value::Str("nope")}).ok());
  std::vector<Aggregate> aggs{{Aggregate::Op::kSum, "s", "total"}};

  auto row = rel.GroupBy({"k"}, aggs);
  ASSERT_FALSE(row.ok());
  EXPECT_TRUE(row.status().IsInvalidArgument()) << row.status().ToString();

  auto batch = BatchRelation::FromRelation(rel).value().GroupBy({"k"}, aggs);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
  // Same diagnostic either engine.
  EXPECT_EQ(batch.status().ToString(), row.status().ToString());

  // The parallel row path surfaces the same error (not a crash, not 0).
  exec::Executor executor = MakeExecutor(4);
  auto par = rel.GroupBy({"k"}, aggs, &executor);
  ASSERT_FALSE(par.ok());
  EXPECT_TRUE(par.status().IsInvalidArgument());

  // Bools are not numbers either (the old AsNumber folded them to 0/1).
  Relation bools({"k", "b"});
  ASSERT_TRUE(bools.AddRow({Value::Int(1), Value::Bool(true)}).ok());
  std::vector<Aggregate> bool_sum{{Aggregate::Op::kSum, "b", "total"}};
  EXPECT_FALSE(bools.GroupBy({"k"}, bool_sum).ok());
  EXPECT_FALSE(BatchRelation::FromRelation(bools)
                   .value()
                   .GroupBy({"k"}, bool_sum)
                   .ok());
}

TEST(VectorKernelTest, FusedFilterGroupByMatchesUnfused) {
  Relation rel = MixedRelation(400, 61);
  auto batch = BatchRelation::FromRelation(rel, 64).value();
  std::vector<Aggregate> aggs{{Aggregate::Op::kCount, "", "n"},
                              {Aggregate::Op::kSum, "score", "total"},
                              {Aggregate::Op::kMin, "score", "lo"},
                              {Aggregate::Op::kCountDistinct, "tag", "tags"}};
  const std::vector<std::vector<FilterExpr>> cases = {
      {},  // no predicate: fused degenerates to GroupBy
      {{"grp", "<", Value::Int(5)}},
      {{"tag", "matches", Value::Str("t?")}, {"grp", ">", Value::Int(1)}},
      {{"tag", "==", Value::Str("nope")}},  // empty selection
  };
  for (const auto& exprs : cases) {
    for (const auto& keys :
         std::vector<std::vector<std::string>>{{"tag"}, {"grp", "flag"}}) {
      std::string want =
          Bytes(RowFilter(rel, exprs).GroupBy(keys, aggs).value());
      EXPECT_EQ(Bytes(batch.Filter(exprs)
                          .value()
                          .GroupBy(keys, aggs)
                          .value()),
                want);
      auto fused = batch.FilterGroupBy(exprs, keys, aggs);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      EXPECT_EQ(Bytes(*fused), want);
      for (int threads : {2, 8}) {
        exec::Executor executor = MakeExecutor(threads);
        auto par = batch.FilterGroupBy(exprs, keys, aggs, &executor);
        ASSERT_TRUE(par.ok());
        EXPECT_EQ(Bytes(*par), want) << "threads=" << threads;
      }
    }
  }
}

TEST(VectorKernelTest, FusedSumOverNonNumericFailsLikeRowEngine) {
  Relation rel({"k", "s"});
  ASSERT_TRUE(rel.AddRow({Value::Int(1), Value::Str("oops")}).ok());
  std::vector<Aggregate> aggs{{Aggregate::Op::kSum, "s", "total"}};
  auto row = rel.GroupBy({"k"}, aggs);
  ASSERT_FALSE(row.ok());
  auto fused = BatchRelation::FromRelation(rel).value().FilterGroupBy(
      {{"k", ">=", Value::Int(0)}}, {"k"}, aggs);
  ASSERT_FALSE(fused.ok());
  EXPECT_EQ(fused.status().ToString(), row.status().ToString());
}

TEST(VectorKernelTest, KernelStatsCountDictDomainPruning) {
  // A pure dictionary column: every row the name filter drops must be
  // attributed to the code-domain verdict (its string never compared
  // per-row).
  Relation rel({"name", "v"});
  size_t t1_rows = 0;
  for (int i = 0; i < 120; ++i) {
    std::string name = "t" + std::to_string(i % 3);
    if (name == "t1") ++t1_rows;
    ASSERT_TRUE(rel.AddRow({Value::Str(name), Value::Int(i)}).ok());
  }
  auto batch = BatchRelation::FromRelation(rel, 40).value();

  dataflow::KernelStats stats;
  auto got = batch.Filter({{"name", "==", Value::Str("t1")}}, nullptr, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(stats.rows_in, 120u);
  EXPECT_EQ(stats.rows_out, t1_rows);
  EXPECT_EQ(stats.dict_domain_rows_pruned, 120u - t1_rows);

  // Two conjuncts on the same dictionary column AND-merge into a single
  // verdict table: the pruned count still covers every dropped row.
  dataflow::KernelStats merged;
  auto got2 = batch.Filter({{"name", "!=", Value::Str("t0")},
                            {"name", "matches", Value::Str("t?")}},
                           nullptr, &merged);
  ASSERT_TRUE(got2.ok());
  size_t survivors = got2->ToRelation().value().rows().size();
  EXPECT_EQ(merged.rows_out, survivors);
  EXPECT_EQ(merged.dict_domain_rows_pruned, 120u - survivors);

  // A non-dictionary conjunct contributes no dict-domain pruning.
  dataflow::KernelStats plain;
  auto got3 = batch.Filter({{"v", "<", Value::Int(60)}}, nullptr, &plain);
  ASSERT_TRUE(got3.ok());
  EXPECT_EQ(plain.dict_domain_rows_pruned, 0u);
  EXPECT_EQ(plain.rows_out, 60u);

  // The fused pipeline reports the same accounting.
  dataflow::KernelStats fused;
  std::vector<Aggregate> aggs{{Aggregate::Op::kCount, "", "n"}};
  ASSERT_TRUE(batch
                  .FilterGroupBy({{"name", "==", Value::Str("t1")}}, {"name"},
                                 aggs, nullptr, &fused)
                  .ok());
  EXPECT_EQ(fused.rows_in, 120u);
  EXPECT_EQ(fused.rows_out, t1_rows);
  EXPECT_EQ(fused.dict_domain_rows_pruned, 120u - t1_rows);
}

TEST(VectorKernelTest, JoinMatchesRowEngineIncludingMixedNumericKeys) {
  Relation left({"k", "a"});
  Relation right({"k", "b"});
  Rng rng(29);
  for (int i = 0; i < 120; ++i) {
    // Mix Int and Real keys: Relation::Join hash-matches Int(1) with
    // Real(1), and the batch engine must reproduce that exactly.
    Value key = rng.Uniform(2) == 0
                    ? Value::Int(static_cast<int64_t>(rng.Uniform(10)))
                    : Value::Real(static_cast<double>(rng.Uniform(10)));
    ASSERT_TRUE(left.AddRow({key, Value::Int(i)}).ok());
  }
  for (int i = 0; i < 40; ++i) {
    Value key = rng.Uniform(2) == 0
                    ? Value::Int(static_cast<int64_t>(rng.Uniform(10)))
                    : Value::Real(static_cast<double>(rng.Uniform(10)));
    ASSERT_TRUE(right.AddRow({key, Value::Str("r" + std::to_string(i))}).ok());
  }
  std::string want = Bytes(left.Join(right, "k", "k").value());

  auto bl = BatchRelation::FromRelation(left, 32).value();
  auto br = BatchRelation::FromRelation(right, 16).value();
  for (auto side : {dataflow::JoinBuildSide::kAuto,
                    dataflow::JoinBuildSide::kLeft,
                    dataflow::JoinBuildSide::kRight}) {
    auto joined = bl.Join(br, "k", "k", nullptr, side);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    EXPECT_EQ(BatchBytes(*joined), want);
    for (int threads : {2, 8}) {
      exec::Executor executor = MakeExecutor(threads);
      auto par = bl.Join(br, "k", "k", &executor, side);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(BatchBytes(*par), want) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Distinct / OrderBy executor determinism (satellite: they used to ignore
// the executor entirely).

TEST(RelationParallelTest, DistinctMatchesSerialAtAnyThreadCount) {
  Relation rel = MixedRelation(500, 31);
  // Project to a few columns so real duplicates exist.
  Relation narrowed = rel.Project({"grp", "flag", "tag"}).value();
  std::string want = Bytes(narrowed.Distinct());
  for (int threads : {1, 2, 8}) {
    exec::Executor executor = MakeExecutor(threads);
    EXPECT_EQ(Bytes(narrowed.Distinct(&executor)), want)
        << "threads=" << threads;
  }
}

TEST(RelationParallelTest, OrderByMatchesSerialStableSort) {
  Relation rel = MixedRelation(500, 37);
  for (bool descending : {false, true}) {
    // "grp" has heavy duplication, so stability is actually observable.
    std::string want = Bytes(rel.OrderBy("grp", descending).value());
    for (int threads : {1, 2, 8}) {
      exec::Executor executor = MakeExecutor(threads);
      EXPECT_EQ(Bytes(rel.OrderBy("grp", descending, &executor).value()), want)
          << "threads=" << threads << " desc=" << descending;
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar scan batch path.

events::ClientEvent ScanEvent(Rng& rng, int64_t base_ts) {
  events::ClientEvent ev;
  ev.initiator = static_cast<events::EventInitiator>(rng.Uniform(4));
  static const char* kNames[] = {"web:home:::tweet:click",
                                 "api:timeline:fetch",
                                 "web:profile:::follow",
                                 "web:home:::tweet:impression"};
  ev.event_name = kNames[rng.Uniform(4)];
  ev.user_id = static_cast<int64_t>(rng.Uniform(50));
  ev.session_id = "s" + std::to_string(rng.Uniform(12));
  ev.ip = "10.1.0." + std::to_string(rng.Uniform(100));
  ev.timestamp = base_ts + static_cast<int64_t>(rng.Uniform(3600000));
  return ev;
}

/// Warehouse dir with two v2 columnar parts (small groups, so several
/// ScanUnits) and one legacy framed part.
std::unique_ptr<hdfs::MiniHdfs> ScanWarehouse(uint64_t seed, int64_t base_ts,
                                              size_t events_per_part) {
  Rng rng(seed);
  auto fs = std::make_unique<hdfs::MiniHdfs>();
  for (int part = 0; part < 2; ++part) {
    std::string body;
    columnar::RcFileWriterOptions wopts;
    wopts.rows_per_group = 37;
    columnar::RcFileWriter writer(&body, wopts);
    for (size_t i = 0; i < events_per_part; ++i) {
      EXPECT_TRUE(writer.Add(ScanEvent(rng, base_ts)).ok());
    }
    EXPECT_TRUE(writer.Finish().ok());
    char name[32];
    std::snprintf(name, sizeof(name), "/events/part-%05d", part);
    EXPECT_TRUE(fs->WriteFile(name, body).ok());
  }
  std::string legacy;
  for (size_t i = 0; i < events_per_part / 2; ++i) {
    std::string record = ScanEvent(rng, base_ts).Serialize();
    PutVarint64(&legacy, record.size());
    legacy.append(record);
  }
  EXPECT_TRUE(fs->WriteFile("/events/part-legacy", Lz::Compress(legacy)).ok());
  return fs;
}

constexpr int64_t kScanBase = 1345507200000;

TEST(ScanBatchTest, MaterializeBatchesEqualsMaterialize) {
  auto fs = ScanWarehouse(41, kScanBase, 220);
  for (bool push : {false, true}) {
    auto scan = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
    if (push) {
      ASSERT_TRUE(scan->PushFilter("event_name", "matches",
                                   Value::Str("web:*")));
      ASSERT_TRUE(scan->PushFilter(
          "timestamp", "<", Value::Int(kScanBase + 1800000)));
    }
    auto rows = scan->Materialize(nullptr).value();
    for (int threads : {1, 2, 8}) {
      auto scan2 =
          std::static_pointer_cast<dataflow::ColumnarEventScan>(scan->Clone());
      exec::Executor executor = MakeExecutor(threads);
      auto batches = scan2->MaterializeBatches(&executor);
      ASSERT_TRUE(batches.ok()) << batches.status().ToString();
      EXPECT_EQ(BatchBytes(*batches), Bytes(rows))
          << "threads=" << threads << " push=" << push;
    }
  }
}

TEST(ScanBatchTest, ProjectedScanCarriesDictionariesThrough) {
  auto fs = ScanWarehouse(43, kScanBase, 150);
  auto scan = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
  ASSERT_TRUE(scan->PushProject({"event_name", "user_id"}, {"name", "uid"}));
  auto rows = scan->Materialize(nullptr).value();
  auto batches = scan->MaterializeBatches(nullptr).value();
  EXPECT_EQ(BatchBytes(batches), Bytes(rows));
  // The event-name column of every v2-sourced batch must be
  // dictionary-encoded — group dictionaries flow through, strings are
  // never materialized per row. (The legacy part contributes kDict too:
  // its names are built via BuildColumn's first-appearance dictionary.)
  size_t name_idx = batches.ColumnIndex("name").value();
  ASSERT_FALSE(batches.batches().empty());
  for (const auto& b : batches.batches()) {
    EXPECT_EQ(b.col(name_idx)->kind, ColumnKind::kDict);
  }
  // And a filter + group-by over the dictionary column agrees with the
  // row engine end to end.
  std::vector<FilterExpr> pred{{"name", "matches", Value::Str("web:*")}};
  std::vector<Aggregate> aggs{{Aggregate::Op::kCount, "", "n"}};
  EXPECT_EQ(
      Bytes(batches.Filter(pred).value().GroupBy({"name"}, aggs).value()),
      Bytes(RowFilter(rows, pred).GroupBy({"name"}, aggs).value()));
}

TEST(ScanBatchTest, SharedBatchesEqualPerMemberMaterialize) {
  auto fs = ScanWarehouse(47, kScanBase, 200);
  auto base = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();

  auto clicks =
      std::static_pointer_cast<dataflow::ColumnarEventScan>(base->Clone());
  ASSERT_TRUE(clicks->PushFilter("event_name", "==",
                                 Value::Str("web:home:::tweet:click")));
  auto early =
      std::static_pointer_cast<dataflow::ColumnarEventScan>(base->Clone());
  ASSERT_TRUE(early->PushFilter("timestamp", "<",
                                Value::Int(kScanBase + 600000)));
  auto everything =
      std::static_pointer_cast<dataflow::ColumnarEventScan>(base->Clone());

  std::vector<std::string> want;
  for (auto& m : {clicks, early, everything}) {
    auto solo = std::static_pointer_cast<dataflow::ColumnarEventScan>(
        m->Clone());
    want.push_back(Bytes(solo->Materialize(nullptr).value()));
  }
  for (int threads : {1, 2, 8}) {
    std::vector<std::shared_ptr<dataflow::ColumnarEventScan>> members;
    for (auto& m : {clicks, early, everything}) {
      members.push_back(
          std::static_pointer_cast<dataflow::ColumnarEventScan>(m->Clone()));
    }
    exec::Executor executor = MakeExecutor(threads);
    auto batches = dataflow::ColumnarEventScan::MaterializeSharedBatches(
        members, &executor);
    ASSERT_TRUE(batches.ok()) << batches.status().ToString();
    ASSERT_EQ(batches->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(BatchBytes((*batches)[i]), want[i])
          << "member " << i << " threads=" << threads;
    }
    // The shared pass fills member batch caches: a later MaterializeBatches
    // is served from cache and still agrees.
    EXPECT_EQ(BatchBytes(members[0]->MaterializeBatches(nullptr).value()),
              want[0]);
  }
}

// ---------------------------------------------------------------------------
// Planner statistics and decisions.

TEST(PlannerTest, StatsAggregateZoneMapsHeaderOnly) {
  auto fs = ScanWarehouse(53, kScanBase, 180);
  auto scan = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
  auto stats = scan->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // 2 v2 parts of 180 rows; the legacy part is opaque header-only (it
  // would need a decompression to count rows) and contributes bytes only.
  EXPECT_EQ(stats->total_rows, 2 * 180u);
  EXPECT_GT(stats->row_groups, 2u);  // 37-row groups => several per part
  EXPECT_GT(stats->data_bytes, 0u);
  // The legacy part has no zone maps, so the merged stats must say so.
  EXPECT_FALSE(stats->from_v2);
  ASSERT_TRUE(stats->min_timestamp.has_value());
  EXPECT_GE(*stats->min_timestamp, kScanBase);
  EXPECT_LE(*stats->max_timestamp, kScanBase + 3600000);
  // Dictionary names from the v2 parts are visible with row upper bounds.
  EXPECT_GT(stats->name_rows.count("web:home:::tweet:click"), 0u);
}

TEST(PlannerTest, OrderFiltersIsDeterministicAndSelectivityDriven) {
  dataflow::TableStats stats;
  stats.total_rows = 100000;
  stats.row_groups = 100;
  stats.data_bytes = 1 << 20;
  stats.min_timestamp = 0;
  stats.max_timestamp = 99999;
  stats.name_rows["rare"] = 100;
  stats.name_rows["common"] = 90000;
  stats.from_v2 = true;

  std::vector<FilterExpr> exprs = {
      {"timestamp", ">=", Value::Int(0)},          // selects ~everything
      {"event_name", "==", Value::Str("rare")},    // ~0.1% of rows
      {"timestamp", "<", Value::Int(50000)},       // ~half
      {"event_name", "==", Value::Str("common")},  // ~90%
  };
  auto ordered = dataflow::OrderFilters(stats, exprs);
  ASSERT_EQ(ordered.size(), exprs.size());
  // Most selective first: the rare-name equality leads; the all-pass
  // timestamp bound goes last.
  EXPECT_EQ(ordered[0].literal, Value::Str("rare"));
  EXPECT_EQ(ordered.back().op, ">=");

  // Any input permutation yields the same sequence.
  std::vector<std::string> want;
  for (const auto& e : ordered) want.push_back(dataflow::CanonicalFilterClause(e));
  std::sort(exprs.begin(), exprs.end(),
            [](const FilterExpr& a, const FilterExpr& b) {
              return dataflow::CanonicalFilterClause(a) >
                     dataflow::CanonicalFilterClause(b);
            });
  auto reordered = dataflow::OrderFilters(stats, exprs);
  for (size_t i = 0; i < reordered.size(); ++i) {
    EXPECT_EQ(dataflow::CanonicalFilterClause(reordered[i]), want[i]);
  }
}

TEST(PlannerTest, OrderingNeverChangesFilterAnswers) {
  Relation rel = MixedRelation(300, 59);
  auto batch = BatchRelation::FromRelation(rel, 64).value();
  std::vector<FilterExpr> exprs = {{"grp", "<", Value::Int(5)},
                                   {"tag", "==", Value::Str("t1")},
                                   {"score", ">", Value::Real(-20.0)}};
  std::string want = BatchBytes(batch.Filter(exprs).value());
  dataflow::TableStats stats;  // empty: priors only
  auto ordered = dataflow::OrderFilters(stats, exprs);
  EXPECT_EQ(BatchBytes(batch.Filter(ordered).value()), want);
  std::reverse(exprs.begin(), exprs.end());
  EXPECT_EQ(BatchBytes(batch.Filter(exprs).value()), want);
}

TEST(PlannerTest, PlanScanPushdownVsEager) {
  dataflow::TableStats stats;
  stats.total_rows = 1000000;
  stats.row_groups = 1000;
  stats.data_bytes = 64 << 20;
  stats.min_timestamp = 0;
  stats.max_timestamp = 999999;
  stats.from_v2 = true;
  dataflow::JobCostModel model;

  // No clauses: nothing to push, eager by definition.
  auto none = dataflow::PlanScan(stats, {}, model);
  EXPECT_EQ(none.strategy, dataflow::ScanStrategy::kEager);

  // A selective clause: pushdown reads predicate columns + survivors only,
  // strictly cheaper than decoding everything.
  std::vector<FilterExpr> selective{{"timestamp", "<", Value::Int(10000)}};
  auto push = dataflow::PlanScan(stats, selective, model);
  EXPECT_EQ(push.strategy, dataflow::ScanStrategy::kPushdown);
  EXPECT_LT(push.pushdown_ms, push.eager_ms);
  EXPECT_GT(push.selectivity, 0.0);
  EXPECT_LT(push.selectivity, 1.0);

  // Deterministic: same inputs, same plan.
  auto again = dataflow::PlanScan(stats, selective, model);
  EXPECT_EQ(again.strategy, push.strategy);
  EXPECT_EQ(again.pushdown_ms, push.pushdown_ms);
  EXPECT_EQ(again.eager_ms, push.eager_ms);
}

TEST(PlannerTest, ChooseBuildSidePrefersSmallerInput) {
  EXPECT_EQ(dataflow::ChooseBuildSide(1000, 10),
            dataflow::JoinBuildSide::kRight);
  EXPECT_EQ(dataflow::ChooseBuildSide(10, 1000),
            dataflow::JoinBuildSide::kLeft);
  // Ties keep the row engine's traditional right build.
  EXPECT_EQ(dataflow::ChooseBuildSide(50, 50),
            dataflow::JoinBuildSide::kRight);
}

TEST(PlannerTest, InitiatorSelectivityUsesCodeDomainStats) {
  dataflow::TableStats stats;
  stats.total_rows = 10000;
  stats.row_groups = 10;
  stats.data_bytes = 1 << 20;
  stats.initiator_rows["user"] = 1000;
  stats.initiator_rows["page"] = 8000;
  stats.from_v2 = true;

  EXPECT_DOUBLE_EQ(dataflow::EstimateClauseSelectivity(
                       stats, {"initiator", "==", Value::Str("user")}),
                   0.1);
  EXPECT_DOUBLE_EQ(dataflow::EstimateClauseSelectivity(
                       stats, {"initiator", "!=", Value::Str("page")}),
                   1.0 - 0.8);
  // An initiator absent from every group dictionary selects nothing.
  EXPECT_DOUBLE_EQ(dataflow::EstimateClauseSelectivity(
                       stats, {"initiator", "==", Value::Str("robot")}),
                   0.0);
  // Without initiator stats the clause falls back to the equality prior.
  dataflow::TableStats empty;
  empty.total_rows = 10000;
  EXPECT_DOUBLE_EQ(dataflow::EstimateClauseSelectivity(
                       empty, {"initiator", "==", Value::Str("user")}),
                   0.1);
}

TEST(PlannerTest, TableStatsCacheTwoLevelLookup) {
  dataflow::TableStatsCache cache;
  dataflow::TableStats stats;
  stats.total_rows = 42;
  stats.from_v2 = true;
  cache.Put("p1|100|5", "rcfp:abc", stats);

  // Level 1: stat-key hit.
  auto hit = cache.FindByStat("p1|100|5");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->total_rows, 42u);

  // Level 2: a renamed file misses by stat but hits by content, and the
  // new stat key is recorded as an alias for next time.
  EXPECT_EQ(cache.FindByStat("p2|100|9"), nullptr);
  auto content = cache.FindByContent("p2|100|9", "rcfp:abc");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(content->total_rows, 42u);
  EXPECT_NE(cache.FindByStat("p2|100|9"), nullptr);

  // A genuinely new file misses both levels.
  EXPECT_EQ(cache.FindByStat("p3|1|1"), nullptr);
  EXPECT_EQ(cache.FindByContent("p3|1|1", "rcfp:zzz"), nullptr);

  auto counts = cache.stats();
  EXPECT_EQ(counts.stat_hits, 2u);
  EXPECT_EQ(counts.content_hits, 1u);
  EXPECT_EQ(counts.misses, 1u);
}

TEST(PlannerTest, StatsThroughCacheMatchDirectAndSkipRereads) {
  auto fs = ScanWarehouse(67, kScanBase, 160);
  auto scan = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
  auto direct = scan->Stats();
  ASSERT_TRUE(direct.ok());

  dataflow::TableStatsCache cache;
  auto cold = scan->Stats(&cache);
  ASSERT_TRUE(cold.ok());
  auto after_cold = cache.stats();
  EXPECT_EQ(after_cold.stat_hits, 0u);
  EXPECT_EQ(after_cold.misses, 3u);  // 2 v2 parts + 1 legacy part

  auto warm = scan->Stats(&cache);
  ASSERT_TRUE(warm.ok());
  auto after_warm = cache.stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses);  // no re-reads
  EXPECT_EQ(after_warm.stat_hits, 3u);

  // All three agree with the uncached walk, field for field.
  for (const auto* s : {&*cold, &*warm}) {
    EXPECT_EQ(s->total_rows, direct->total_rows);
    EXPECT_EQ(s->row_groups, direct->row_groups);
    EXPECT_EQ(s->data_bytes, direct->data_bytes);
    EXPECT_EQ(s->min_timestamp, direct->min_timestamp);
    EXPECT_EQ(s->max_timestamp, direct->max_timestamp);
    EXPECT_EQ(s->min_user_id, direct->min_user_id);
    EXPECT_EQ(s->max_user_id, direct->max_user_id);
    EXPECT_EQ(s->name_rows, direct->name_rows);
    EXPECT_EQ(s->initiator_rows, direct->initiator_rows);
    EXPECT_EQ(s->from_v2, direct->from_v2);
  }

  // A second scan over the same warehouse resolves purely by stat key.
  auto scan2 = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
  ASSERT_TRUE(scan2->Stats(&cache).ok());
  EXPECT_EQ(cache.stats().misses, after_cold.misses);
}

TEST(PlannerTest, StatsExposeInitiatorDictionaries) {
  auto fs = ScanWarehouse(71, kScanBase, 140);
  auto scan = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
  auto stats = scan->Stats();
  ASSERT_TRUE(stats.ok());
  // ScanEvent draws initiators uniformly from all four, so the v2 parts'
  // initiator dictionaries surface with nonzero row bounds.
  EXPECT_FALSE(stats->initiator_rows.empty());
  uint64_t bound = 0;
  for (const auto& [name, rows] : stats->initiator_rows) {
    EXPECT_FALSE(name.empty());
    bound = std::max(bound, rows);
  }
  EXPECT_LE(bound, stats->total_rows);
}

TEST(ScanBatchTest, PushedNameFilterCountsDictDomainPruning) {
  auto fs = ScanWarehouse(73, kScanBase, 200);
  auto scan = dataflow::ColumnarEventScan::Open(fs.get(), "/events").value();
  ASSERT_TRUE(scan->PushFilter("event_name", "==",
                               Value::Str("web:home:::tweet:click")));
  ASSERT_TRUE(scan->Materialize(nullptr).ok());
  const columnar::ScanStats& st = scan->last_stats();
  // The v2 parts prune non-click rows by encoded id: attributed to the
  // dictionary-domain counter, a subset of overall row pruning.
  EXPECT_GT(st.dict_domain_rows_pruned, 0u);
  EXPECT_LE(st.dict_domain_rows_pruned, st.rows_pruned);
}

}  // namespace
}  // namespace unilog
