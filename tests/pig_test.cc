// Tests for the mini Pig Latin interpreter and the unilog stdlib bindings
// — including a verbatim run of the paper's §5.2 event-counting script and
// the §5.3 funnel script.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytics/pig_stdlib.h"
#include "columnar/rcfile.h"
#include "common/compress.h"
#include "dataflow/pig.h"
#include "events/client_event.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog::dataflow {
namespace {

constexpr TimeMs kDay = 1345507200000;  // 2012-08-21

// A tiny in-memory loader for interpreter-core tests.
Relation TestEvents() {
  Relation r({"user_id", "event", "n"});
  auto add = [&r](int64_t u, const char* e, int64_t n) {
    EXPECT_TRUE(r.AddRow({Value::Int(u), Value::Str(e), Value::Int(n)}).ok());
  };
  add(1, "impression", 10);
  add(1, "click", 2);
  add(2, "impression", 5);
  add(2, "click", 1);
  add(3, "impression", 7);
  return r;
}

class PigCoreTest : public ::testing::Test {
 protected:
  PigCoreTest() {
    pig_.RegisterLoader("TestLoader",
                        [](const std::string&, const std::vector<std::string>&)
                            -> Result<Relation> { return TestEvents(); });
    pig_.RegisterUdfFactory(
        "Double", [](const std::vector<std::string>&)
                      -> Result<PigInterpreter::ScalarUdf> {
          return PigInterpreter::ScalarUdf(
              [](const std::vector<Value>& args) -> Result<Value> {
                if (args.size() != 1) {
                  return Status::InvalidArgument("Double takes one arg");
                }
                return Value::Int(args[0].int_value() * 2);
              });
        });
  }

  PigInterpreter pig_;
};

TEST_F(PigCoreTest, LoadAndDump) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader(); DUMP raw;").ok());
  ASSERT_EQ(pig_.output().size(), 5u);
  EXPECT_EQ(pig_.output()[0], "(1, impression, 10)");
}

TEST_F(PigCoreTest, FilterByComparisons) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "big = FILTER raw BY n >= 5;"
                       "DUMP big;")
                  .ok());
  EXPECT_EQ(pig_.output().size(), 3u);
  pig_.ClearOutput();
  ASSERT_TRUE(pig_.Run("clicks = FILTER raw BY event == 'click'; DUMP clicks;")
                  .ok());
  EXPECT_EQ(pig_.output().size(), 2u);
}

TEST_F(PigCoreTest, FilterByMatches) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "imp = FILTER raw BY event MATCHES 'imp*';"
                       "DUMP imp;")
                  .ok());
  EXPECT_EQ(pig_.output().size(), 3u);
}

TEST_F(PigCoreTest, ForEachColumnsAndUdf) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "gen = FOREACH raw GENERATE user_id, Double(n) AS n2;"
                       "DUMP gen;")
                  .ok());
  ASSERT_EQ(pig_.output().size(), 5u);
  EXPECT_EQ(pig_.output()[0], "(1, 20)");
}

TEST_F(PigCoreTest, GroupAllWithAggregates) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "g = GROUP raw ALL;"
                       "t = FOREACH g GENERATE SUM(n) AS total, COUNT(*) AS c;"
                       "DUMP t;")
                  .ok());
  ASSERT_EQ(pig_.output().size(), 1u);
  EXPECT_EQ(pig_.output()[0], "(25, 5)");
}

TEST_F(PigCoreTest, GroupByKeyWithAggregates) {
  ASSERT_TRUE(
      pig_.Run("raw = LOAD 'x' USING TestLoader();"
               "g = GROUP raw BY event;"
               "t = FOREACH g GENERATE event, COUNT(*) AS c, SUM(n) AS s,"
               "    COUNT_DISTINCT(user_id) AS users;"
               "sorted = ORDER t BY event;"
               "DUMP sorted;")
          .ok());
  ASSERT_EQ(pig_.output().size(), 2u);
  EXPECT_EQ(pig_.output()[0], "(click, 2, 3, 2)");
  EXPECT_EQ(pig_.output()[1], "(impression, 3, 22, 3)");
}

TEST_F(PigCoreTest, DistinctOrderLimitJoin) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "users = FOREACH raw GENERATE user_id;"
                       "du = DISTINCT users;"
                       "top = ORDER du BY user_id DESC;"
                       "two = LIMIT top 2;"
                       "DUMP two;")
                  .ok());
  ASSERT_EQ(pig_.output().size(), 2u);
  EXPECT_EQ(pig_.output()[0], "(3)");
  EXPECT_EQ(pig_.output()[1], "(2)");

  pig_.ClearOutput();
  ASSERT_TRUE(pig_.Run("j = JOIN raw BY user_id, du BY user_id;").ok());
  auto joined = pig_.Lookup("j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 5u);
}

TEST_F(PigCoreTest, DescribeShowsSchema) {
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader(); DESCRIBE raw;")
                  .ok());
  ASSERT_EQ(pig_.output().size(), 1u);
  EXPECT_EQ(pig_.output()[0], "raw: {user_id, event, n}");
}

TEST_F(PigCoreTest, ParamSubstitution) {
  pig_.SetParam("MIN", "6");
  ASSERT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "big = FILTER raw BY n >= $MIN; DUMP big;")
                  .ok());
  EXPECT_EQ(pig_.output().size(), 2u);
  EXPECT_TRUE(pig_.Run("z = FILTER raw BY n >= $UNDEFINED;")
                  .IsInvalidArgument());
}

TEST_F(PigCoreTest, CommentsIgnored) {
  ASSERT_TRUE(pig_.Run("-- this is the §5.2 style comment\n"
                       "raw = LOAD 'x' USING TestLoader(); -- trailing\n"
                       "DUMP raw;")
                  .ok());
  EXPECT_EQ(pig_.output().size(), 5u);
}

TEST_F(PigCoreTest, ErrorsAreInformative) {
  EXPECT_TRUE(pig_.Run("DUMP nothing;").IsInvalidArgument());
  EXPECT_TRUE(pig_.Run("x = LOAD 'p' USING NopeLoader();").IsInvalidArgument());
  EXPECT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "bad = FILTER raw BY missing_col == 1;")
                  .IsInvalidArgument());
  // Aggregates without GROUP.
  EXPECT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "t = FOREACH raw GENERATE SUM(n);")
                  .IsInvalidArgument());
  // Non-key bare column in grouped FOREACH.
  EXPECT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "g = GROUP raw BY event;"
                       "t = FOREACH g GENERATE user_id, COUNT(*);")
                  .IsInvalidArgument());
  // DUMP of a grouped alias.
  EXPECT_TRUE(pig_.Run("raw = LOAD 'x' USING TestLoader();"
                       "g = GROUP raw ALL; DUMP g;")
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Stdlib over a real warehouse partition: the paper's scripts verbatim.

class PigStdlibTest : public ::testing::Test {
 protected:
  PigStdlibTest() {
    // Build a small sequence partition.
    auto dict = sessions::EventDictionary::FromNamesInGivenOrder(
        {"web:home:::tweet:impression", "web:home:::tweet:click",
         "web:signup:flow:form:page:stage_00",
         "web:signup:flow:form:page:stage_01"});
    dict_ = *dict;
    std::vector<sessions::SessionSequence> seqs;
    auto make = [&](int64_t uid, const std::vector<std::string>& names) {
      sessions::SessionSequence s;
      s.user_id = uid;
      s.session_id = "s" + std::to_string(uid);
      s.ip = "10.0.0.1";
      s.sequence = dict_.EncodeNames(names).value();
      s.duration_seconds = 30;
      seqs.push_back(s);
    };
    // 3 sessions: 2 with clicks, 1 signup reaching stage 1.
    make(1, {"web:home:::tweet:impression", "web:home:::tweet:click",
             "web:home:::tweet:impression"});
    make(2, {"web:home:::tweet:impression", "web:home:::tweet:click",
             "web:home:::tweet:click"});
    make(3, {"web:signup:flow:form:page:stage_00",
             "web:signup:flow:form:page:stage_01"});
    EXPECT_TRUE(
        sessions::SequenceStore::WriteDaily(&warehouse_, kDay, seqs, dict_)
            .ok());
    analytics::InstallPigStdlib(&pig_, &warehouse_);
    pig_.SetParam("DATE", "2012-08-21");
  }

  hdfs::MiniHdfs warehouse_;
  sessions::EventDictionary dict_;
  PigInterpreter pig_;
};

TEST_F(PigStdlibTest, PaperEventCountingScript) {
  // §5.2, lightly normalized quoting. SUM variant.
  pig_.SetParam("EVENTS", "*:click");
  std::string script = R"(
    define CountClicks CountClientEvents('$EVENTS');
    raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
    generated = foreach raw generate CountClicks(sequence) as symbols;
    grouped = group generated all;
    count = foreach grouped generate SUM(symbols);
    dump count;
  )";
  ASSERT_TRUE(pig_.Run(script).ok()) << pig_.Run(script).ToString();
  ASSERT_EQ(pig_.output().size(), 1u);
  EXPECT_EQ(pig_.output()[0], "(3)");  // 1 + 2 clicks
}

TEST_F(PigStdlibTest, PaperCountVariantSessionsContaining) {
  // "a replacement of SUM by COUNT ... number of user sessions that
  // contain at least one instance".
  std::string script = R"(
    define HasClick ContainsClientEvents('*:click');
    raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
    flagged = foreach raw generate HasClick(sequence) as has;
    hits = filter flagged by has == 1;
    grouped = group hits all;
    count = foreach grouped generate COUNT(*);
    dump count;
  )";
  ASSERT_TRUE(pig_.Run(script).ok());
  ASSERT_EQ(pig_.output().size(), 1u);
  EXPECT_EQ(pig_.output()[0], "(2)");
}

TEST_F(PigStdlibTest, PaperFunnelScript) {
  // §5.3: per-stage counts via the funnel UDF + group-by.
  std::string script = R"(
    define Funnel ClientEventsFunnel('web:signup:flow:form:page:stage_00',
                                     'web:signup:flow:form:page:stage_01');
    raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
    staged = foreach raw generate Funnel(sequence) as stages;
    grouped = group staged by stages;
    counts = foreach grouped generate stages, COUNT(*) as sessions;
    ordered = order counts by stages;
    dump ordered;
  )";
  ASSERT_TRUE(pig_.Run(script).ok());
  ASSERT_EQ(pig_.output().size(), 2u);
  EXPECT_EQ(pig_.output()[0], "(0, 2)");  // two browsing sessions
  EXPECT_EQ(pig_.output()[1], "(2, 1)");  // one completed both stages
}

TEST_F(PigStdlibTest, EventCountAndDemographicJoin) {
  std::string script = R"(
    raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
    lens = foreach raw generate user_id, EventCount(sequence) as n;
    dump lens;
  )";
  ASSERT_TRUE(pig_.Run(script).ok());
  ASSERT_EQ(pig_.output().size(), 3u);
  EXPECT_EQ(pig_.output()[0], "(1, 3)");
}

TEST_F(PigStdlibTest, ClientEventsLoaderReadsRawLogs) {
  // Write one raw hour and load it.
  events::ClientEvent ev;
  ev.event_name = "web:home:::tweet:impression";
  ev.user_id = 7;
  ev.session_id = "s7";
  ev.ip = "10.0.0.1";
  ev.timestamp = kDay;
  std::string body;
  events::ClientEventWriter writer(&body);
  writer.Add(ev);
  ASSERT_TRUE(warehouse_
                  .WriteFile("/logs/client_events/2012/08/21/00/part-0",
                             Lz::Compress(body))
                  .ok());
  std::string script = R"(
    ev = load '/logs/client_events/2012/08/21/00' using ClientEventsLoader();
    names = foreach ev generate event_name, user_id;
    dump names;
  )";
  ASSERT_TRUE(pig_.Run(script).ok());
  ASSERT_EQ(pig_.output().size(), 1u);
  EXPECT_EQ(pig_.output()[0], "(web:home:::tweet:impression, 7)");
}

// ---------------------------------------------------------------------------
// Columnar pushdown fusion: LOAD ... USING ColumnarEventsLoader() defers
// the scan; FILTER/FOREACH fuse into it; results must equal the eager
// ClientEventsLoader pipeline on the same directory.

class PigFusionTest : public ::testing::Test {
 protected:
  PigFusionTest() {
    // A mixed warehouse hour: one columnar RCFile v2 part plus one legacy
    // framed-compressed part (the layout a partially-migrated category
    // has).
    const std::string dir = "/logs/client_events/2012/08/21/00";
    std::string columnar_body;
    columnar::RcFileWriter writer(&columnar_body, /*rows_per_group=*/8);
    std::string legacy_body;
    events::ClientEventWriter legacy(&legacy_body);
    for (int i = 0; i < 60; ++i) {
      events::ClientEvent ev;
      ev.initiator = static_cast<events::EventInitiator>(i % 2);
      ev.event_name = i % 3 == 0 ? "web:home:::tweet:click"
                                 : "web:home:::tweet:impression";
      ev.user_id = 100 + i % 5;
      ev.session_id = "s" + std::to_string(i % 5);
      ev.ip = "10.0.0.1";
      ev.timestamp = kDay + static_cast<TimeMs>(i) * 60000;
      if (i < 40) {
        EXPECT_TRUE(writer.Add(ev).ok());
      } else {
        legacy.Add(ev);
      }
    }
    EXPECT_TRUE(writer.Finish().ok());
    EXPECT_TRUE(warehouse_.WriteFile(dir + "/part-00000", columnar_body).ok());
    EXPECT_TRUE(
        warehouse_.WriteFile(dir + "/part-00001", Lz::Compress(legacy_body))
            .ok());
    analytics::InstallPigStdlib(&pig_, &warehouse_, &metrics_);
  }

  // Runs a script and returns the captured DUMP/DESCRIBE lines.
  std::vector<std::string> RunAndCapture(const std::string& script) {
    pig_.ClearOutput();
    Status st = pig_.Run(script);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return pig_.output();
  }

  // The same statement tail run through both loaders must dump the same
  // lines (`$L` is the loader name).
  void ExpectFusedMatchesEager(const std::string& tail) {
    const std::string dir = "/logs/client_events/2012/08/21/00";
    auto fused = RunAndCapture(
        "ev = load '" + dir + "' using ColumnarEventsLoader();" + tail);
    auto eager = RunAndCapture(
        "ev = load '" + dir + "' using ClientEventsLoader();" + tail);
    EXPECT_FALSE(eager.empty());
    EXPECT_EQ(fused, eager);
  }

  hdfs::MiniHdfs warehouse_;
  obs::MetricsRegistry metrics_;
  PigInterpreter pig_;
};

TEST_F(PigFusionTest, PlainLoadDumpMatchesEager) {
  ExpectFusedMatchesEager("dump ev;");
}

TEST_F(PigFusionTest, FusedNamePatternFilterMatchesEager) {
  ExpectFusedMatchesEager(
      "clicks = filter ev by event_name matches '*:click'; dump clicks;");
}

TEST_F(PigFusionTest, FusedNameEqualityFilterMatchesEager) {
  ExpectFusedMatchesEager(
      "c = filter ev by event_name == 'web:home:::tweet:click'; dump c;");
}

TEST_F(PigFusionTest, FusedTimestampRangeAndProjectionMatchesEager) {
  // Two chained range filters (both fuse) + a pure projection with a
  // rename; the scan materializes only at DUMP.
  std::string tail =
      "a = filter ev by timestamp >= " + std::to_string(kDay + 600000) + ";" +
      "b = filter a by timestamp <= " + std::to_string(kDay + 1800000) + ";" +
      "names = foreach b generate event_name as name, user_id; dump names;";
  ExpectFusedMatchesEager(tail);
  // The selective range let zone maps skip whole groups.
  EXPECT_GT(metrics_.CounterTotal("columnar.groups_skipped"), 0u);
  EXPECT_GT(metrics_.CounterTotal("columnar.rows_returned"), 0u);
}

TEST_F(PigFusionTest, LiteralOnLeftComparisonFuses) {
  std::string tail = "late = filter ev by " + std::to_string(kDay + 1200000) +
                     " <= timestamp; dump late;";
  ExpectFusedMatchesEager(tail);
}

TEST_F(PigFusionTest, NonFusiblePredicateFallsBackCorrectly) {
  // `!=` on user_id cannot be pushed into the scan; the interpreter must
  // materialize and filter eagerly with identical results.
  ExpectFusedMatchesEager("o = filter ev by user_id != 102; dump o;");
}

TEST_F(PigFusionTest, FilterDoesNotMutateLoadedAlias) {
  const std::string dir = "/logs/client_events/2012/08/21/00";
  auto out = RunAndCapture(
      "ev = load '" + dir + "' using ColumnarEventsLoader();" +
      "c = filter ev by event_name == 'nope:never'; dump c; dump ev;");
  // The filtered alias is empty but `ev` still dumps all 60 rows: the
  // FILTER tightened a clone, not the original scan.
  EXPECT_EQ(out.size(), 60u);
}

TEST_F(PigFusionTest, DescribeShowsDeferredScan) {
  const std::string dir = "/logs/client_events/2012/08/21/00";
  auto out = RunAndCapture("ev = load '" + dir +
                           "' using ColumnarEventsLoader(); describe ev;");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].find("(columnar scan)"), std::string::npos) << out[0];
  EXPECT_NE(out[0].find("event_name"), std::string::npos) << out[0];
}

TEST_F(PigStdlibTest, UdfBeforeLoadFailsGracefully) {
  // Using a dictionary-dependent UDF without loading a partition first.
  PigInterpreter fresh;
  analytics::InstallPigStdlib(&fresh, &warehouse_);
  Relation r({"sequence"});
  ASSERT_TRUE(r.AddRow({Value::Str("\x01")}).ok());
  fresh.RegisterLoader("Mem",
                       [r](const std::string&, const std::vector<std::string>&)
                           -> Result<Relation> { return r; });
  EXPECT_FALSE(fresh
                   .Run("x = load 'm' using Mem();"
                        "y = foreach x generate CountClientEvents(sequence);")
                   .ok());
}

}  // namespace
}  // namespace unilog::dataflow
