// Unit tests for the ZooKeeper-style coordination service, focused on the
// semantics the Scribe infrastructure depends on: ephemeral registration,
// session expiry, and one-shot watches (§2 of the paper).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::zk {
namespace {

TEST(ZooKeeperTest, RootExists) {
  ZooKeeper zk;
  EXPECT_TRUE(zk.Exists("/"));
  EXPECT_EQ(zk.znode_count(), 1u);
}

TEST(ZooKeeperTest, CreateGetSetDelete) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  auto created = zk.Create(s, "/config", "v1", CreateMode::kPersistent);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, "/config");
  EXPECT_EQ(zk.GetData("/config").value(), "v1");

  ASSERT_TRUE(zk.SetData(s, "/config", "v2").ok());
  EXPECT_EQ(zk.GetData("/config").value(), "v2");
  EXPECT_EQ(zk.Stat("/config")->version, 1);

  ASSERT_TRUE(zk.Delete(s, "/config").ok());
  EXPECT_FALSE(zk.Exists("/config"));
}

TEST(ZooKeeperTest, PathValidation) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  EXPECT_TRUE(zk.Create(s, "noslash", "", CreateMode::kPersistent)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(zk.Create(s, "/trailing/", "", CreateMode::kPersistent)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(zk.Create(s, "/a//b", "", CreateMode::kPersistent)
                  .status().IsInvalidArgument());
}

TEST(ZooKeeperTest, ParentMustExist) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  EXPECT_TRUE(zk.Create(s, "/a/b", "", CreateMode::kPersistent)
                  .status().IsNotFound());
  ASSERT_TRUE(zk.Create(s, "/a", "", CreateMode::kPersistent).ok());
  EXPECT_TRUE(zk.Create(s, "/a/b", "", CreateMode::kPersistent).ok());
}

TEST(ZooKeeperTest, DuplicateCreateFails) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/x", "", CreateMode::kPersistent).ok());
  EXPECT_TRUE(zk.Create(s, "/x", "", CreateMode::kPersistent)
                  .status().IsAlreadyExists());
}

TEST(ZooKeeperTest, DeleteWithChildrenFails) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/a", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(zk.Create(s, "/a/b", "", CreateMode::kPersistent).ok());
  EXPECT_TRUE(zk.Delete(s, "/a").IsFailedPrecondition());
  ASSERT_TRUE(zk.Delete(s, "/a/b").ok());
  EXPECT_TRUE(zk.Delete(s, "/a").ok());
}

TEST(ZooKeeperTest, GetChildrenSorted) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/agg", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(zk.Create(s, "/agg/c", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(zk.Create(s, "/agg/a", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(zk.Create(s, "/agg/b", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(zk.Create(s, "/agg/a/nested", "", CreateMode::kPersistent).ok());
  auto children = zk.GetChildren("/agg");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"a", "b", "c"}));
  // Nested nodes are not direct children.
  auto root_children = zk.GetChildren("/");
  ASSERT_TRUE(root_children.ok());
  EXPECT_EQ(*root_children, std::vector<std::string>{"agg"});
}

TEST(ZooKeeperTest, SequentialNodesGetIncreasingSuffixes) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/q", "", CreateMode::kPersistent).ok());
  auto a = zk.Create(s, "/q/item-", "", CreateMode::kPersistentSequential);
  auto b = zk.Create(s, "/q/item-", "", CreateMode::kPersistentSequential);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, "/q/item-0000000000");
  EXPECT_EQ(*b, "/q/item-0000000001");
  EXPECT_LT(*a, *b);
}

TEST(ZooKeeperTest, EphemeralNodesDieWithSession) {
  ZooKeeper zk;
  SessionId daemon = zk.CreateSession();
  SessionId agg = zk.CreateSession();
  ASSERT_TRUE(zk.Create(daemon, "/aggregators", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(
      zk.Create(agg, "/aggregators/agg1", "host1:1463", CreateMode::kEphemeral)
          .ok());
  EXPECT_TRUE(zk.Exists("/aggregators/agg1"));
  EXPECT_EQ(zk.Stat("/aggregators/agg1")->ephemeral_owner, agg);

  // Aggregator crashes → session expires → ephemeral node disappears (§2).
  ASSERT_TRUE(zk.CloseSession(agg).ok());
  EXPECT_FALSE(zk.Exists("/aggregators/agg1"));
  // Persistent parent survives.
  EXPECT_TRUE(zk.Exists("/aggregators"));
}

TEST(ZooKeeperTest, EphemeralCannotHaveChildren) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/e", "", CreateMode::kEphemeral).ok());
  EXPECT_TRUE(zk.Create(s, "/e/child", "", CreateMode::kPersistent)
                  .status().IsFailedPrecondition());
}

TEST(ZooKeeperTest, ClosedSessionRejected) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.CloseSession(s).ok());
  EXPECT_FALSE(zk.SessionAlive(s));
  EXPECT_TRUE(zk.Create(s, "/x", "", CreateMode::kPersistent)
                  .status().IsFailedPrecondition());
  EXPECT_TRUE(zk.CloseSession(s).IsNotFound());
}

TEST(ZooKeeperTest, ExistsWatchFiresOnceOnCreate) {
  ZooKeeper zk;  // synchronous watches (no simulator)
  SessionId s = zk.CreateSession();
  std::vector<std::string> fired;
  zk.WatchExists("/new", [&](WatchEvent ev, const std::string& path) {
    fired.push_back(std::string(WatchEventName(ev)) + ":" + path);
  });
  ASSERT_TRUE(zk.Create(s, "/new", "", CreateMode::kPersistent).ok());
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "created:/new");
  // One-shot: a second change does not re-fire.
  ASSERT_TRUE(zk.Delete(s, "/new").ok());
  EXPECT_EQ(fired.size(), 1u);
}

TEST(ZooKeeperTest, ChildrenWatchFiresOnMembershipChange) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/agg", "", CreateMode::kPersistent).ok());
  int fires = 0;
  zk.WatchChildren("/agg", [&](WatchEvent ev, const std::string&) {
    EXPECT_EQ(ev, WatchEvent::kChildrenChanged);
    ++fires;
  });
  ASSERT_TRUE(zk.Create(s, "/agg/a", "", CreateMode::kEphemeral).ok());
  EXPECT_EQ(fires, 1);
  // Re-arm, then delete.
  zk.WatchChildren("/agg", [&](WatchEvent, const std::string&) { ++fires; });
  ASSERT_TRUE(zk.Delete(s, "/agg/a").ok());
  EXPECT_EQ(fires, 2);
}

TEST(ZooKeeperTest, DataWatchFiresOnSetAndDelete) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/d", "v0", CreateMode::kPersistent).ok());
  std::vector<WatchEvent> events;
  zk.WatchData("/d", [&](WatchEvent ev, const std::string&) {
    events.push_back(ev);
  });
  ASSERT_TRUE(zk.SetData(s, "/d", "v1").ok());
  zk.WatchData("/d", [&](WatchEvent ev, const std::string&) {
    events.push_back(ev);
  });
  ASSERT_TRUE(zk.Delete(s, "/d").ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], WatchEvent::kDataChanged);
  EXPECT_EQ(events[1], WatchEvent::kDeleted);
}

TEST(ZooKeeperTest, SessionExpiryFiresWatches) {
  // This is the re-discovery mechanism: daemons watch the aggregator
  // registry; when an aggregator's session dies, the children watch fires
  // and daemons re-consult the registry.
  Simulator sim;
  ZooKeeper zk(&sim);
  SessionId agg = zk.CreateSession();
  SessionId daemon = zk.CreateSession();
  ASSERT_TRUE(
      zk.Create(daemon, "/aggregators", "", CreateMode::kPersistent).ok());
  ASSERT_TRUE(
      zk.Create(agg, "/aggregators/a1", "h1", CreateMode::kEphemeral).ok());
  sim.Run();

  bool notified = false;
  zk.WatchChildren("/aggregators", [&](WatchEvent, const std::string&) {
    notified = true;
    auto children = zk.GetChildren("/aggregators");
    ASSERT_TRUE(children.ok());
    EXPECT_TRUE(children->empty());
  });
  ASSERT_TRUE(zk.CloseSession(agg).ok());
  EXPECT_FALSE(notified);  // deferred onto the virtual clock
  sim.Run();
  EXPECT_TRUE(notified);
  EXPECT_GE(zk.watch_fires(), 1u);
}

TEST(ZooKeeperTest, WatchCoalescesEventsBeforeDelivery) {
  // Regression for the one-shot watch re-arm race: with deferred delivery,
  // an event striking between the watch firing and the callback running
  // used to be lost — the callback saw a stale "created" for a node that a
  // same-tick delete had already removed, and nothing ever re-fired.
  Simulator sim;
  ZooKeeper zk(&sim);
  SessionId s = zk.CreateSession();
  int fires = 0;
  WatchEvent last = WatchEvent::kChildrenChanged;
  zk.WatchExists("/n", [&](WatchEvent ev, const std::string&) {
    ++fires;
    last = ev;
  });
  ASSERT_TRUE(zk.Create(s, "/n", "", CreateMode::kPersistent).ok());
  // Delivery is pending on the virtual clock; the delete lands first.
  ASSERT_TRUE(zk.Delete(s, "/n").ok());
  sim.Run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(last, WatchEvent::kDeleted);
}

TEST(ZooKeeperTest, WatchRearmedInCallbackSeesSubsequentEvents) {
  // The re-arm-then-recompute pattern leader election uses: each callback
  // re-registers the watch before reading state, so a chain of changes is
  // never silently dropped.
  Simulator sim;
  ZooKeeper zk(&sim);
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/members", "", CreateMode::kPersistent).ok());
  int notifications = 0;
  std::function<void()> arm = [&]() {
    zk.WatchChildren("/members", [&](WatchEvent, const std::string&) {
      arm();  // re-arm before acting on the event
      ++notifications;
    });
  };
  arm();
  ASSERT_TRUE(zk.Create(s, "/members/a", "", CreateMode::kEphemeral).ok());
  sim.Run();
  EXPECT_EQ(notifications, 1);
  // A burst within one delivery window coalesces to at least one
  // notification, after which the re-armed watch still tracks new events.
  ASSERT_TRUE(zk.Create(s, "/members/b", "", CreateMode::kEphemeral).ok());
  ASSERT_TRUE(zk.Delete(s, "/members/b").ok());
  sim.Run();
  EXPECT_GE(notifications, 2);
  int before = notifications;
  ASSERT_TRUE(zk.Create(s, "/members/c", "", CreateMode::kEphemeral).ok());
  sim.Run();
  EXPECT_EQ(notifications, before + 1);
}

TEST(ZooKeeperTest, EphemeralSequentialCombines) {
  ZooKeeper zk;
  SessionId s = zk.CreateSession();
  ASSERT_TRUE(zk.Create(s, "/members", "", CreateMode::kPersistent).ok());
  auto a = zk.Create(s, "/members/m-", "", CreateMode::kEphemeralSequential);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(zk.Stat(*a)->ephemeral_owner, s);
  ASSERT_TRUE(zk.CloseSession(s).ok());
  EXPECT_FALSE(zk.Exists(*a));
}

// Session-expiry storm: 120 members register ephemerals under one registry
// node while a re-arming children watcher (the daemon re-discovery pattern)
// follows membership. Three quarters of the sessions expire in a burst; the
// registry must converge to exactly the survivors, and the watcher must get
// there in a bounded number of fires — deliveries coalesce per round, so the
// storm cannot fan out into one notification per expiry.
TEST(ZooKeeperTest, SessionExpiryStormConvergesWithBoundedWatchFires) {
  Simulator sim;
  ZooKeeper zk(&sim);
  SessionId root = zk.CreateSession();
  ASSERT_TRUE(zk.Create(root, "/members", "", CreateMode::kPersistent).ok());

  constexpr int kMembers = 120;
  std::vector<SessionId> sessions;
  for (int i = 0; i < kMembers; ++i) {
    SessionId s = zk.CreateSession();
    ASSERT_TRUE(zk.Create(s, "/members/m" + std::to_string(i), "",
                          CreateMode::kEphemeral)
                    .ok());
    sessions.push_back(s);
  }
  sim.Run();
  ASSERT_EQ(zk.GetChildren("/members")->size(),
            static_cast<size_t>(kMembers));

  int notifications = 0;
  size_t last_seen = 0;
  std::function<void()> arm = [&] {
    zk.WatchChildren("/members", [&](WatchEvent, const std::string&) {
      arm();  // one-shot watch: re-arm first, then re-read membership
      ++notifications;
      auto children = zk.GetChildren("/members");
      ASSERT_TRUE(children.ok());
      last_seen = children->size();
    });
  };
  arm();

  int expired = 0;
  for (int i = 0; i < kMembers; ++i) {
    if (i % 4 == 0) continue;  // every fourth member survives the storm
    ASSERT_TRUE(zk.CloseSession(sessions[i]).ok());
    ++expired;
  }
  sim.Run();

  auto children = zk.GetChildren("/members");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children->size(), static_cast<size_t>(kMembers - expired));
  for (int i = 0; i < kMembers; ++i) {
    EXPECT_EQ(zk.SessionAlive(sessions[i]), i % 4 == 0);
  }
  // The watcher converged to the post-storm membership without one fire
  // per expiry.
  EXPECT_EQ(last_seen, children->size());
  EXPECT_GE(notifications, 1);
  EXPECT_LT(notifications, expired);
}

}  // namespace
}  // namespace unilog::zk
