// Tests for the §5 analytics applications: event counting, funnels,
// CTR/FTR, and BirdBrain summary statistics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytics/summary.h"
#include "analytics/udfs.h"
#include "exec/executor.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog::analytics {
namespace {

using sessions::EventDictionary;
using sessions::SessionSequence;

// A small universe used throughout.
const std::vector<std::string>& Universe() {
  static const auto* kNames = new std::vector<std::string>{
      "web:home:timeline:stream:tweet:impression",
      "web:home:timeline:stream:tweet:click",
      "web:search:results:result_list:result:impression",
      "web:search:results:result_list:result:click",
      "web:home:suggestions:who_to_follow:follow_button:follow",
      "web:signup:flow:form:page:stage_00",
      "web:signup:flow:form:page:stage_01",
      "web:signup:flow:form:page:stage_02",
      "iphone:home:timeline:stream:tweet:impression",
  };
  return *kNames;
}

EventDictionary Dict() {
  return *EventDictionary::FromNamesInGivenOrder(Universe());
}

SessionSequence MakeSeq(const EventDictionary& dict,
                        const std::vector<std::string>& names,
                        int64_t user_id = 1, int32_t duration = 60) {
  SessionSequence seq;
  seq.user_id = user_id;
  seq.session_id = "s" + std::to_string(user_id);
  seq.ip = "10.0.0.1";
  seq.sequence = dict.EncodeNames(names).value();
  seq.duration_seconds = duration;
  return seq;
}

// ---------------------------------------------------------------------------
// CountClientEvents

TEST(CountClientEventsTest, CountsMatchingEvents) {
  EventDictionary dict = Dict();
  CountClientEvents counter(dict, events::EventPattern("*:impression"));
  EXPECT_EQ(counter.target_count(), 3u);
  SessionSequence seq = MakeSeq(
      dict, {"web:home:timeline:stream:tweet:impression",
             "web:home:timeline:stream:tweet:click",
             "web:home:timeline:stream:tweet:impression",
             "iphone:home:timeline:stream:tweet:impression"});
  EXPECT_EQ(counter.Count(seq), 3u);
  EXPECT_TRUE(counter.ContainsAny(seq));
}

TEST(CountClientEventsTest, NoMatches) {
  EventDictionary dict = Dict();
  CountClientEvents counter(dict, events::EventPattern("android:*"));
  EXPECT_EQ(counter.target_count(), 0u);
  SessionSequence seq =
      MakeSeq(dict, {"web:home:timeline:stream:tweet:impression"});
  EXPECT_EQ(counter.Count(seq), 0u);
  EXPECT_FALSE(counter.ContainsAny(seq));
}

TEST(CountClientEventsTest, ClientScopedPattern) {
  EventDictionary dict = Dict();
  CountClientEvents web_only(dict, events::EventPattern("web:*:impression"));
  SessionSequence seq = MakeSeq(
      dict, {"web:home:timeline:stream:tweet:impression",
             "iphone:home:timeline:stream:tweet:impression"});
  EXPECT_EQ(web_only.Count(seq), 1u);
}

TEST(CountClientEventsTest, EmptySequence) {
  EventDictionary dict = Dict();
  CountClientEvents counter(dict, events::EventPattern("*"));
  SessionSequence seq = MakeSeq(dict, {});
  EXPECT_EQ(counter.Count(seq), 0u);
  EXPECT_FALSE(counter.ContainsAny(seq));
}

// ---------------------------------------------------------------------------
// Funnel

TEST(FunnelTest, StagesCompletedInOrder) {
  EventDictionary dict = Dict();
  auto funnel = Funnel::Make(dict, {"web:signup:flow:form:page:stage_00",
                                    "web:signup:flow:form:page:stage_01",
                                    "web:signup:flow:form:page:stage_02"});
  ASSERT_TRUE(funnel.ok());
  EXPECT_EQ(funnel->num_stages(), 3u);

  // Full completion with interleaved noise.
  SessionSequence full = MakeSeq(
      dict, {"web:signup:flow:form:page:stage_00",
             "web:home:timeline:stream:tweet:impression",
             "web:signup:flow:form:page:stage_01",
             "web:signup:flow:form:page:stage_02"});
  EXPECT_EQ(funnel->StagesCompleted(full), 3u);

  // Abandoned after stage 0.
  SessionSequence partial =
      MakeSeq(dict, {"web:signup:flow:form:page:stage_00",
                     "web:home:timeline:stream:tweet:click"});
  EXPECT_EQ(funnel->StagesCompleted(partial), 1u);

  // Never entered.
  SessionSequence none =
      MakeSeq(dict, {"web:home:timeline:stream:tweet:impression"});
  EXPECT_EQ(funnel->StagesCompleted(none), 0u);

  // Out of order does not count: stage_01 before stage_00 only credits
  // the prefix that appears in order.
  SessionSequence reversed =
      MakeSeq(dict, {"web:signup:flow:form:page:stage_01",
                     "web:signup:flow:form:page:stage_00"});
  EXPECT_EQ(funnel->StagesCompleted(reversed), 1u);
}

TEST(FunnelTest, StageCountsAggregate) {
  EventDictionary dict = Dict();
  auto funnel = Funnel::Make(dict, {"web:signup:flow:form:page:stage_00",
                                    "web:signup:flow:form:page:stage_01",
                                    "web:signup:flow:form:page:stage_02"});
  ASSERT_TRUE(funnel.ok());
  std::vector<SessionSequence> seqs;
  // 3 complete, 2 reach stage 1, 1 reaches stage 0 only, 2 never enter.
  for (int i = 0; i < 3; ++i) {
    seqs.push_back(MakeSeq(dict, {"web:signup:flow:form:page:stage_00",
                                  "web:signup:flow:form:page:stage_01",
                                  "web:signup:flow:form:page:stage_02"}));
  }
  for (int i = 0; i < 2; ++i) {
    seqs.push_back(MakeSeq(dict, {"web:signup:flow:form:page:stage_00",
                                  "web:signup:flow:form:page:stage_01"}));
  }
  seqs.push_back(MakeSeq(dict, {"web:signup:flow:form:page:stage_00"}));
  for (int i = 0; i < 2; ++i) {
    seqs.push_back(
        MakeSeq(dict, {"web:home:timeline:stream:tweet:impression"}));
  }
  auto counts = funnel->StageCounts(seqs);
  EXPECT_EQ(counts, (std::vector<uint64_t>{6, 5, 3}));
  auto abandonment = funnel->AbandonmentRates(seqs);
  ASSERT_EQ(abandonment.size(), 2u);
  EXPECT_NEAR(abandonment[0], 1.0 - 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(abandonment[1], 1.0 - 3.0 / 5.0, 1e-9);
}

TEST(FunnelTest, UnknownStageEventFails) {
  EventDictionary dict = Dict();
  EXPECT_TRUE(Funnel::Make(dict, {"nope:signup:flow:form:page:stage_00"})
                  .status().IsNotFound());
  EXPECT_TRUE(Funnel::Make(dict, {}).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// CTR

TEST(RateTest, ClickThroughRate) {
  EventDictionary dict = Dict();
  std::vector<SessionSequence> seqs;
  // Session A: 3 impressions, 1 click. Session B: 2 impressions, 0 clicks.
  seqs.push_back(MakeSeq(
      dict,
      {"web:search:results:result_list:result:impression",
       "web:search:results:result_list:result:impression",
       "web:search:results:result_list:result:click",
       "web:search:results:result_list:result:impression"}));
  seqs.push_back(MakeSeq(
      dict, {"web:search:results:result_list:result:impression",
             "web:search:results:result_list:result:impression"}));
  RateReport report = ComputeRate(
      seqs, dict, events::EventPattern("web:search:*:impression"),
      events::EventPattern("web:search:*:click"));
  EXPECT_EQ(report.impressions, 5u);
  EXPECT_EQ(report.actions, 1u);
  EXPECT_NEAR(report.rate, 0.2, 1e-9);
  EXPECT_EQ(report.sessions_with_impression, 2u);
  EXPECT_EQ(report.sessions_with_action, 1u);
}

TEST(RateTest, ZeroImpressionsYieldZeroRate) {
  EventDictionary dict = Dict();
  std::vector<SessionSequence> seqs = {
      MakeSeq(dict, {"web:home:timeline:stream:tweet:click"})};
  RateReport report =
      ComputeRate(seqs, dict, events::EventPattern("android:*"),
                  events::EventPattern("*:click"));
  EXPECT_EQ(report.impressions, 0u);
  EXPECT_EQ(report.rate, 0.0);
}

// ---------------------------------------------------------------------------
// Summary

TEST(SummaryTest, DurationBuckets) {
  EXPECT_EQ(BucketFor(0), DurationBucket::kZero);
  EXPECT_EQ(BucketFor(5), DurationBucket::kUnder10s);
  EXPECT_EQ(BucketFor(10), DurationBucket::kUnder10s);
  EXPECT_EQ(BucketFor(11), DurationBucket::kUnder1m);
  EXPECT_EQ(BucketFor(299), DurationBucket::kUnder5m);
  EXPECT_EQ(BucketFor(1800), DurationBucket::kUnder30m);
  EXPECT_EQ(BucketFor(1801), DurationBucket::kOver30m);
  EXPECT_STREQ(DurationBucketLabel(DurationBucket::kUnder1m), "11-60s");
}

TEST(SummaryTest, SummarizeBasics) {
  EventDictionary dict = Dict();
  std::vector<SessionSequence> seqs;
  seqs.push_back(MakeSeq(dict,
                         {"web:home:timeline:stream:tweet:impression",
                          "web:home:timeline:stream:tweet:click"},
                         /*user=*/1, /*duration=*/5));
  seqs.push_back(MakeSeq(dict,
                         {"iphone:home:timeline:stream:tweet:impression"},
                         /*user=*/2, /*duration=*/0));
  seqs.push_back(MakeSeq(dict,
                         {"web:search:results:result_list:result:click"},
                         /*user=*/1, /*duration=*/90));
  auto summary = Summarize(seqs, dict);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->sessions, 3u);
  EXPECT_EQ(summary->events, 4u);
  EXPECT_EQ(summary->distinct_users, 2u);
  EXPECT_NEAR(summary->avg_events_per_session, 4.0 / 3.0, 1e-9);
  EXPECT_EQ(summary->sessions_by_client.at("web"), 2u);
  EXPECT_EQ(summary->sessions_by_client.at("iphone"), 1u);
  EXPECT_EQ(summary->sessions_by_duration_bucket.at("0s"), 1u);
  EXPECT_EQ(summary->sessions_by_duration_bucket.at("1-10s"), 1u);
  EXPECT_EQ(summary->sessions_by_duration_bucket.at("1-5m"), 1u);
  std::string rendered = summary->ToString();
  EXPECT_NE(rendered.find("sessions=3"), std::string::npos);
  EXPECT_NE(rendered.find("web=2"), std::string::npos);
}

TEST(SummaryTest, EmptyInput) {
  EventDictionary dict = Dict();
  auto summary = Summarize({}, dict);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->sessions, 0u);
  EXPECT_EQ(summary->avg_events_per_session, 0.0);
}

// ---------------------------------------------------------------------------
// Parallel determinism: every analytics entry point that accepts an
// executor must reproduce the serial answer exactly — including the
// floating-point averages in the summary — at any thread count.

std::vector<SessionSequence> ManySequences(const EventDictionary& dict) {
  const auto& names = Universe();
  std::vector<SessionSequence> seqs;
  for (int u = 0; u < 120; ++u) {
    std::vector<std::string> session_names;
    for (int e = 0; e <= u % 7; ++e) {
      session_names.push_back(names[(u * 3 + e) % names.size()]);
    }
    seqs.push_back(MakeSeq(dict, session_names, /*user=*/u % 37,
                           /*duration=*/(u * 13) % 2000));
  }
  return seqs;
}

TEST(AnalyticsDeterminismTest, ParallelMatchesSerialExactly) {
  EventDictionary dict = Dict();
  std::vector<SessionSequence> seqs = ManySequences(dict);

  auto serial_summary = Summarize(seqs, dict);
  ASSERT_TRUE(serial_summary.ok());
  CountClientEvents counter(dict, events::EventPattern("*:impression"));
  uint64_t serial_total = counter.TotalCount(seqs);
  RateReport serial_rate =
      ComputeRate(seqs, dict, events::EventPattern("*:impression"),
                  events::EventPattern("*:click"));

  for (int threads : {2, 8}) {
    exec::ExecOptions opts;
    opts.threads = threads;
    opts.min_items_per_chunk = 4;  // force real fan-out on this small input
    exec::Executor executor(opts);
    auto summary = Summarize(seqs, dict, &executor);
    ASSERT_TRUE(summary.ok());
    EXPECT_EQ(summary->ToString(), serial_summary->ToString())
        << "threads=" << threads;
    // Bit-exact doubles, not just matching rendered text.
    EXPECT_EQ(summary->avg_events_per_session,
              serial_summary->avg_events_per_session);
    EXPECT_EQ(summary->avg_duration_seconds,
              serial_summary->avg_duration_seconds);
    EXPECT_EQ(counter.TotalCount(seqs, &executor), serial_total);
    RateReport rate =
        ComputeRate(seqs, dict, events::EventPattern("*:impression"),
                    events::EventPattern("*:click"), &executor);
    EXPECT_EQ(rate.impressions, serial_rate.impressions);
    EXPECT_EQ(rate.actions, serial_rate.actions);
    EXPECT_EQ(rate.rate, serial_rate.rate);
  }
}

}  // namespace
}  // namespace unilog::analytics
