// Cross-module integration tests beyond the single-day pipeline suite:
// multi-day Oink-scheduled pipelines, anonymization flowing through
// sessionization, scribe's partial time ordering property, and the
// portability-across-clients property §3.2 highlights.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analytics/pig_stdlib.h"
#include "analytics/udfs.h"
#include "common/compress.h"
#include "common/strings.h"
#include "dataflow/pig.h"
#include "events/anonymize.h"
#include "events/client_event.h"
#include "dataflow/columnar_scan.h"
#include "obs/delivery_audit.h"
#include "obs/metrics.h"
#include "oink/oink.h"
#include "oink/workflow.h"
#include "pipeline/daily_pipeline.h"
#include "pipeline/unified_pipeline.h"
#include "scribe/cluster.h"
#include "scribe/message.h"
#include "sessions/session_sequence.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace unilog {
namespace {

constexpr TimeMs kDay = 1345507200000;  // 2012-08-21

// ---------------------------------------------------------------------------
// Multi-day: Oink schedules the daily pipeline for three consecutive days
// over a log mover-fed warehouse; every day's partition must appear.

TEST(MultiDayIntegrationTest, OinkRunsDailyPipelineForThreeDays) {
  Simulator sim(kDay);
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.aggregators_per_dc = 1;
  topo.daemons_per_dc = 2;
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 2 * kMillisPerMinute;
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = 10 * kMillisPerMinute;
  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, 5);
  ASSERT_TRUE(cluster.Start().ok());

  // Three separate day-long workloads, scheduled back to back.
  std::vector<std::unique_ptr<workload::WorkloadGenerator>> generators;
  pipeline::UserTable users;
  uint64_t total_generated = 0;
  for (int day = 0; day < 3; ++day) {
    workload::WorkloadOptions wopts;
    wopts.seed = 100 + day;
    wopts.num_users = 40;
    wopts.start = kDay + day * kMillisPerDay;
    wopts.duration = kMillisPerDay - 3 * kMillisPerHour;
    wopts.sessions_per_user_mean = 1.0;
    wopts.events_per_session_mean = 8;
    generators.push_back(
        std::make_unique<workload::WorkloadGenerator>(wopts));
    ASSERT_TRUE(pipeline::DriveWorkloadThroughScribe(
                    &sim, &cluster, generators.back().get(), "client_events")
                    .ok());
    total_generated += generators.back()->truth().total_events;
  }
  users = pipeline::UserTable::FromWorkload(*generators[0]);

  pipeline::DailyPipeline daily(cluster.warehouse(),
                                dataflow::JobCostModel{});
  std::map<TimeMs, size_t> sequences_per_day;

  oink::Oink oink(&sim);
  oink::JobSpec job;
  job.name = "daily_pipeline";
  job.period = kMillisPerDay;
  job.start_delay = 30 * kMillisPerMinute;
  job.retry_interval = 15 * kMillisPerMinute;
  job.run = [&](TimeMs period_start) -> Status {
    auto result = daily.RunForDate(period_start, users);
    UNILOG_RETURN_NOT_OK(result.status());
    sequences_per_day[period_start] = result->sequences.size();
    return Status::OK();
  };
  ASSERT_TRUE(oink.RegisterJob(job).ok());
  oink.Start(kDay);

  sim.RunUntil(kDay + 3 * kMillisPerDay + 3 * kMillisPerHour);

  ASSERT_EQ(sequences_per_day.size(), 3u);
  uint64_t total_sessions = 0;
  for (int day = 0; day < 3; ++day) {
    TimeMs date = kDay + day * kMillisPerDay;
    EXPECT_TRUE(cluster.warehouse()->Exists(
        sessions::SequenceStore::PartitionDir(date)))
        << "day " << day;
    total_sessions += sequences_per_day[date];
    EXPECT_EQ(sequences_per_day[date],
              generators[day]->truth().total_sessions)
        << "day " << day;
  }
  // Oink recorded one successful trace per day (plus possible retries
  // while the mover lagged).
  EXPECT_EQ(oink.runs_succeeded(), 3u);
  EXPECT_EQ(cluster.TotalStats().messages_in_warehouse, total_generated);
}

// ---------------------------------------------------------------------------
// Anonymization composes with the analytics stack: pseudonymized logs
// sessionize identically and produce identical sequence *shapes*.

TEST(AnonymizationIntegrationTest, AnonymizedLogsSessionizeIdentically) {
  workload::WorkloadOptions wopts;
  wopts.seed = 9;
  wopts.num_users = 60;
  wopts.start = kDay;
  wopts.duration = kMillisPerDay / 2;
  workload::WorkloadGenerator generator(wopts);

  events::AnonymizationPolicy policy;
  policy.drop_detail_keys = {"query"};

  sessions::EventHistogram hist_plain, hist_anon;
  sessions::Sessionizer sess_plain, sess_anon;
  ASSERT_TRUE(generator.Generate([&](const events::ClientEvent& ev) {
    hist_plain.Add(ev.event_name);
    sess_plain.Add(ev);
    events::ClientEvent anon = ev;
    ASSERT_TRUE(events::Anonymize(policy, &anon).ok());
    hist_anon.Add(anon.event_name);
    sess_anon.Add(anon);
  }).ok());

  // Event names untouched → histograms identical.
  EXPECT_EQ(hist_plain.counts(), hist_anon.counts());

  // Session structure preserved: same number of sessions, same multiset
  // of event-name sequences.
  auto plain = sess_plain.Build();
  auto anon = sess_anon.Build();
  ASSERT_EQ(plain.size(), anon.size());
  std::multiset<std::string> plain_shapes, anon_shapes;
  std::set<int64_t> plain_users, anon_users;
  for (const auto& s : plain) {
    plain_shapes.insert(Join(s.event_names, ','));
    plain_users.insert(s.user_id);
  }
  for (const auto& s : anon) {
    anon_shapes.insert(Join(s.event_names, ','));
    anon_users.insert(s.user_id);
  }
  EXPECT_EQ(plain_shapes, anon_shapes);
  // Same number of distinct users, but disjoint id spaces.
  EXPECT_EQ(plain_users.size(), anon_users.size());
  for (int64_t uid : plain_users) {
    EXPECT_FALSE(anon_users.count(uid)) << uid;
  }
  // No anonymized event carries a raw query.
  for (const auto& s : anon) {
    (void)s;
  }
}

// ---------------------------------------------------------------------------
// Scribe ordering property: warehouse files are only *partially*
// time-ordered (§2) — each file is internally ordered per aggregator
// arrival, but the hour's messages are not globally sorted. Downstream
// code must not assume order; sessionization handles it (tested
// elsewhere). Here we document/verify the property itself.

TEST(ScribeOrderingTest, WarehouseFilesArePartiallyTimeOrdered) {
  Simulator sim(kDay);
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1", "dc2"};
  topo.aggregators_per_dc = 2;
  topo.daemons_per_dc = 4;
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = kMillisPerMinute;
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = 5 * kMillisPerMinute;
  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, 77);
  ASSERT_TRUE(cluster.Start().ok());

  // Messages carry their send timestamp.
  const int kMessages = 3000;
  Rng rng(3);
  for (int i = 0; i < kMessages; ++i) {
    TimeMs at = kDay + static_cast<TimeMs>(
                           rng.Uniform(50 * kMillisPerMinute));
    size_t dc = rng.Uniform(2);
    sim.At(at, [&cluster, dc, at]() {
      cluster.Log(dc, scribe::LogEntry{"client_events",
                                       std::to_string(at)});
    });
  }
  sim.RunUntil(kDay + 2 * kMillisPerHour);

  auto files = cluster.warehouse()->ListRecursive("/logs/client_events");
  ASSERT_TRUE(files.ok());
  ASSERT_FALSE(files->empty());

  uint64_t total = 0;
  uint64_t global_inversions_seen = 0;
  for (const auto& file : *files) {
    auto blob = cluster.warehouse()->ReadFile(file.path);
    ASSERT_TRUE(blob.ok());
    auto body = Lz::Decompress(*blob);
    ASSERT_TRUE(body.ok());
    auto messages = scribe::UnframeMessages(*body);
    ASSERT_TRUE(messages.ok());
    TimeMs prev = 0;
    for (const auto& m : *messages) {
      TimeMs ts = std::stoll(m);
      if (ts < prev) ++global_inversions_seen;
      prev = ts;
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kMessages));
  // Partial order: inversions exist (merged from multiple aggregators and
  // datacenters)...
  EXPECT_GT(global_inversions_seen, 0u);
  // ...but the stream is far from random: most adjacent pairs are in
  // order because each aggregator's output was.
  EXPECT_LT(global_inversions_seen, total / 4);
}

// ---------------------------------------------------------------------------
// §3.2 portability: "Pig scripts written to analyze behavior on one
// client can be ported over to another client with relative ease" — the
// same script parameterized by $CLIENT runs against each client.

TEST(PortabilityTest, SameScriptWorksAcrossClients) {
  workload::WorkloadOptions wopts;
  wopts.seed = 4;
  wopts.num_users = 150;
  wopts.start = kDay;
  wopts.duration = kMillisPerDay / 2;
  workload::WorkloadGenerator generator(wopts);
  sessions::EventHistogram hist;
  sessions::Sessionizer sessionizer;
  ASSERT_TRUE(generator.Generate([&](const events::ClientEvent& ev) {
    hist.Add(ev.event_name);
    sessionizer.Add(ev);
  }).ok());
  auto dict =
      sessions::EventDictionary::FromSortedCounts(hist.SortedByFrequency());
  std::vector<sessions::SessionSequence> seqs;
  for (const auto& s : sessionizer.Build()) {
    seqs.push_back(*sessions::EncodeSession(s, *dict));
  }
  hdfs::MiniHdfs warehouse;
  ASSERT_TRUE(
      sessions::SequenceStore::WriteDaily(&warehouse, kDay, seqs, *dict).ok());

  const char* script = R"(
    define Impressions CountClientEvents('$CLIENT:home:*:impression');
    raw = load '/session_sequences/2012-08-21' using SessionSequencesLoader();
    gen = foreach raw generate Impressions(sequence) as n;
    g = group gen all;
    total = foreach g generate SUM(n);
    dump total;
  )";

  std::map<std::string, int64_t> per_client;
  for (const char* client : {"web", "iphone", "android"}) {
    dataflow::PigInterpreter pig;
    analytics::InstallPigStdlib(&pig, &warehouse);
    pig.SetParam("CLIENT", client);
    ASSERT_TRUE(pig.Run(script).ok()) << client;
    ASSERT_EQ(pig.output().size(), 1u);
    // "(N)" → N.
    std::string line = pig.output()[0];
    per_client[client] = std::stoll(line.substr(1, line.size() - 2));
  }
  // Every client has home-timeline impressions, and the web client (50%
  // of users) dominates.
  for (const auto& [client, n] : per_client) {
    EXPECT_GT(n, 0) << client;
  }
  EXPECT_GT(per_client["web"], per_client["android"]);
}

// ---------------------------------------------------------------------------
// Delivery audit: entries_logged must equal warehoused + every accounted
// loss channel + in-flight, at every instant — including while aggregator
// crashes and staging outages are in progress.

TEST(DeliveryAuditIntegrationTest, IdentityHoldsUnderInjectedFaults) {
  Simulator sim(kDay);
  pipeline::UnifiedPipelineOptions opts;
  opts.topology.datacenters = {"dc1", "dc2"};
  opts.topology.aggregators_per_dc = 2;
  opts.topology.daemons_per_dc = 4;
  opts.scribe.roll_interval_ms = 30 * kMillisPerSecond;
  // Small enough that the dc2 staging outage forces overflow drops.
  opts.scribe.aggregator_buffer_limit_bytes = 8 * 1024;
  opts.mover.run_interval_ms = 2 * kMillisPerMinute;
  opts.mover.grace_ms = kMillisPerMinute;
  opts.seed = 21;
  pipeline::UnifiedLoggingPipeline pipe(&sim, opts);
  ASSERT_TRUE(pipe.Start().ok());

  const int kMessages = 3000;
  for (int i = 0; i < kMessages; ++i) {
    TimeMs at = kDay + (static_cast<TimeMs>(i) * 100 * kMillisPerMinute) /
                           kMessages;
    size_t dc = i % 2;
    sim.At(at, [&pipe, dc, i]() {
      pipe.cluster()->Log(
          dc, scribe::LogEntry{"client_events",
                               "m" + std::to_string(i) + std::string(100, 'p')});
    });
  }

  // Faults: one aggregator crash + restart in dc1, and a 20-minute staging
  // outage in dc2 long enough to blow the aggregator buffer limit.
  sim.At(kDay + 20 * kMillisPerMinute,
         [&pipe]() { pipe.cluster()->CrashAggregator(0, 0); });
  sim.At(kDay + 30 * kMillisPerMinute, [&pipe]() {
    ASSERT_TRUE(pipe.cluster()->RestartAggregator(0, 0).ok());
  });
  sim.At(kDay + 40 * kMillisPerMinute,
         [&pipe]() { pipe.cluster()->SetStagingAvailable(1, false); });
  sim.At(kDay + 60 * kMillisPerMinute,
         [&pipe]() { pipe.cluster()->SetStagingAvailable(1, true); });

  // The identity must hold mid-crash, mid-outage, and after recovery —
  // not only at quiescence.
  for (TimeMs cp : {kDay + 25 * kMillisPerMinute, kDay + 50 * kMillisPerMinute,
                    kDay + 90 * kMillisPerMinute}) {
    sim.At(cp, [&pipe]() {
      EXPECT_TRUE(pipe.CheckDeliveryAudit().ok())
          << pipe.Audit().ToString();
    });
  }
  sim.RunUntil(kDay + 3 * kMillisPerHour);

  obs::DeliverySnapshot snap = pipe.Audit();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.logged, static_cast<uint64_t>(kMessages));
  // Both injected loss channels actually fired.
  EXPECT_GT(snap.lost_in_crash, 0u);
  EXPECT_GT(snap.dropped_overflow, 0u);
  EXPECT_GT(snap.warehoused, 0u);
  EXPECT_EQ(snap.Accounted(), snap.logged);

  // Capped, jittered retry backoff keeps zk rediscovery traffic bounded
  // through the aggregator crash window: without it the eight daemons would
  // poll on every flush tick (hundreds of lookups over the outage). The
  // scenario measures 6; 12 leaves 2x slack for seed drift.
  EXPECT_LE(pipe.cluster()->TotalStats().daemon_rediscoveries, 12u);

  // Every component reports into the one registry.
  std::string report = pipe.MetricsTextReport();
  EXPECT_NE(report.find("daemon.entries_logged{dc=dc1"), std::string::npos);
  EXPECT_NE(report.find("agg.entries_received{dc=dc2"), std::string::npos);
  EXPECT_NE(report.find("mover.hours_moved"), std::string::npos);
  EXPECT_NE(report.find("hdfs.bytes_written{fs=warehouse}"),
            std::string::npos);
  EXPECT_NE(report.find("zk.watch_fires"), std::string::npos);
  EXPECT_EQ(pipe.metrics()->CounterTotal("daemon.entries_logged"),
            static_cast<uint64_t>(kMessages));
}

// Runs the fault-injection scenario from IdentityHoldsUnderInjectedFaults
// with a given ingest thread count and returns the warehouse contents as a
// path→bytes map, asserting the audit identity held throughout.
std::map<std::string, std::string> RunFaultScenarioWarehouse(
    int ingest_threads) {
  Simulator sim(kDay);
  pipeline::UnifiedPipelineOptions opts;
  opts.topology.datacenters = {"dc1", "dc2"};
  opts.topology.aggregators_per_dc = 2;
  opts.topology.daemons_per_dc = 4;
  opts.scribe.roll_interval_ms = 30 * kMillisPerSecond;
  opts.scribe.aggregator_buffer_limit_bytes = 8 * 1024;
  opts.mover.run_interval_ms = 2 * kMillisPerMinute;
  opts.mover.grace_ms = kMillisPerMinute;
  opts.mover.target_file_bytes = 16 * 1024;  // several parts per hour
  opts.seed = 21;
  opts.ingest_threads = ingest_threads;
  pipeline::UnifiedLoggingPipeline pipe(&sim, opts);
  EXPECT_TRUE(pipe.Start().ok());

  const int kMessages = 2000;
  for (int i = 0; i < kMessages; ++i) {
    TimeMs at = kDay + (static_cast<TimeMs>(i) * 100 * kMillisPerMinute) /
                           kMessages;
    size_t dc = i % 2;
    sim.At(at, [&pipe, dc, i]() {
      pipe.cluster()->Log(
          dc, scribe::LogEntry{"client_events",
                               "m" + std::to_string(i) + std::string(100, 'p')});
    });
  }
  sim.At(kDay + 20 * kMillisPerMinute,
         [&pipe]() { pipe.cluster()->CrashAggregator(0, 0); });
  sim.At(kDay + 30 * kMillisPerMinute, [&pipe]() {
    ASSERT_TRUE(pipe.cluster()->RestartAggregator(0, 0).ok());
  });
  sim.At(kDay + 40 * kMillisPerMinute,
         [&pipe]() { pipe.cluster()->SetStagingAvailable(1, false); });
  sim.At(kDay + 60 * kMillisPerMinute,
         [&pipe]() { pipe.cluster()->SetStagingAvailable(1, true); });
  for (TimeMs cp : {kDay + 25 * kMillisPerMinute,
                    kDay + 50 * kMillisPerMinute,
                    kDay + 90 * kMillisPerMinute}) {
    sim.At(cp, [&pipe]() {
      EXPECT_TRUE(pipe.CheckDeliveryAudit().ok()) << pipe.Audit().ToString();
    });
  }
  sim.RunUntil(kDay + 3 * kMillisPerHour);

  obs::DeliverySnapshot snap = pipe.Audit();
  EXPECT_TRUE(snap.Balanced()) << "threads=" << ingest_threads << "\n"
                               << snap.ToString();
  EXPECT_GT(snap.warehoused, 0u);

  std::map<std::string, std::string> warehouse;
  auto files = pipe.cluster()->warehouse()->ListRecursive("/logs");
  EXPECT_TRUE(files.ok());
  if (files.ok()) {
    for (const auto& f : *files) {
      auto body = pipe.cluster()->warehouse()->ReadFile(f.path);
      EXPECT_TRUE(body.ok());
      if (body.ok()) warehouse[f.path] = *body;
    }
  }
  return warehouse;
}

TEST(DeliveryAuditIntegrationTest, ParallelStagingByteIdenticalAndBalanced) {
  // The ISSUE's acceptance bar: under aggregator crash + staging outage,
  // the delivery audit balances at any ingest thread count, and the staged
  // warehouse files are byte-identical between --threads=1 and --threads=8.
  std::map<std::string, std::string> serial = RunFaultScenarioWarehouse(1);
  std::map<std::string, std::string> parallel = RunFaultScenarioWarehouse(8);
  ASSERT_GT(serial.size(), 1u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [path, bytes] : serial) {
    auto it = parallel.find(path);
    ASSERT_NE(it, parallel.end()) << path;
    EXPECT_EQ(it->second, bytes) << path;
  }
}

TEST(DeliveryAuditIntegrationTest, DailyJobPublishesCostMetrics) {
  Simulator sim(kDay);
  pipeline::UnifiedPipelineOptions opts;
  opts.topology.datacenters = {"dc1"};
  opts.topology.aggregators_per_dc = 1;
  opts.topology.daemons_per_dc = 2;
  opts.scribe.roll_interval_ms = 2 * kMillisPerMinute;
  opts.mover.run_interval_ms = 10 * kMillisPerMinute;
  opts.seed = 5;
  pipeline::UnifiedLoggingPipeline pipe(&sim, opts);
  ASSERT_TRUE(pipe.Start().ok());

  workload::WorkloadOptions wopts;
  wopts.seed = 100;
  wopts.num_users = 30;
  wopts.start = kDay;
  wopts.duration = kMillisPerDay - 3 * kMillisPerHour;
  workload::WorkloadGenerator generator(wopts);
  ASSERT_TRUE(pipe.DriveWorkload(&generator).ok());
  sim.RunUntil(kDay + kMillisPerDay + kMillisPerHour);

  pipeline::UserTable users = pipeline::UserTable::FromWorkload(generator);
  auto result = pipe.RunDailyJob(kDay, users);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Both passes published their cost accounting into the shared registry.
  EXPECT_EQ(pipe.metrics()
                ->GetCounter("job.runs", {{"job", "histogram"}})
                ->value(),
            1u);
  EXPECT_EQ(pipe.metrics()
                ->GetCounter("job.runs", {{"job", "sessionize"}})
                ->value(),
            1u);
  EXPECT_GT(pipe.metrics()->CounterTotal("job.map_tasks"), 0u);
  EXPECT_GT(pipe.metrics()->CounterTotal("job.bytes_scanned"), 0u);

  // A fault-free day delivers everything and stays balanced.
  obs::DeliverySnapshot snap = pipe.Audit();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.warehoused, generator.truth().total_events);
  EXPECT_EQ(snap.InFlight(), 0u);
}

// Oink memoization writes cache artifacts into the warehouse filesystem.
// The delivery-audit identity (logged == warehoused + losses + in-flight)
// is counter-derived, and '_'-prefixed subtrees are invisible to scans
// and input manifests — so caching a day of workflow results, even into a
// _cache subtree nested *inside* the scanned day directory, must neither
// unbalance the audit nor change what the workflows read.
TEST(DeliveryAuditIntegrationTest, StaysBalancedWithOinkCachingOn) {
  Simulator sim(kDay);
  pipeline::UnifiedPipelineOptions opts;
  opts.topology.datacenters = {"dc1"};
  opts.topology.aggregators_per_dc = 1;
  opts.topology.daemons_per_dc = 2;
  opts.scribe.roll_interval_ms = 2 * kMillisPerMinute;
  opts.mover.run_interval_ms = 10 * kMillisPerMinute;
  // Columnar hours: the engine fingerprints parts from their embedded
  // checksums instead of size+mtime.
  opts.mover.columnar_categories = {"client_events"};
  opts.seed = 9;
  pipeline::UnifiedLoggingPipeline pipe(&sim, opts);
  ASSERT_TRUE(pipe.Start().ok());

  workload::WorkloadOptions wopts;
  wopts.seed = 19;
  wopts.num_users = 25;
  wopts.start = kDay;
  wopts.duration = kMillisPerDay - 3 * kMillisPerHour;
  workload::WorkloadGenerator generator(wopts);
  ASSERT_TRUE(pipe.DriveWorkload(&generator).ok());
  sim.RunUntil(kDay + kMillisPerDay + kMillisPerHour);

  obs::DeliverySnapshot before = pipe.Audit();
  ASSERT_TRUE(before.Balanced()) << before.ToString();
  ASSERT_EQ(before.warehoused, generator.truth().total_events);

  // The moved day's directory, with the cache nested inside it.
  std::string hour_path = HourPartitionPath(kDay);  // YYYY/MM/DD/HH
  std::string day_dir =
      "/logs/client_events/" + hour_path.substr(0, hour_path.rfind('/'));
  hdfs::MiniHdfs* warehouse = pipe.cluster()->warehouse();
  auto visible = [&]() {
    std::map<std::string, uint64_t> out;
    auto listing = warehouse->ListRecursive(day_dir);
    EXPECT_TRUE(listing.ok());
    if (listing.ok()) {
      for (const auto& f : *listing) {
        if (!dataflow::IsHiddenWarehousePath(day_dir, f.path)) {
          out[f.path] = f.size;
        }
      }
    }
    return out;
  };
  std::map<std::string, uint64_t> data_before = visible();
  ASSERT_FALSE(data_before.empty());

  oink::OinkOptions oopts;
  oopts.cache_root = day_dir + "/_cache";
  oink::WorkflowEngine engine(warehouse, oopts, pipe.metrics());
  oink::WorkflowSpec clicks;
  clicks.name = "day-click-rollup";
  clicks.input_dir = [day_dir](int64_t) { return day_dir; };
  clicks.filters = {
      {"event_name", "matches", dataflow::Value::Str("*:click")}};
  clicks.project_cols = {"user_id"};
  clicks.project_names = {"uid"};
  clicks.stage = [](const dataflow::Relation& r) {
    return r.GroupBy({"uid"}, {dataflow::Aggregate{
                                  dataflow::Aggregate::Op::kCount, "", "n"}});
  };
  clicks.stage_id = "day-click-rollup-v1";
  ASSERT_TRUE(engine.AddWorkflow(std::move(clicks)).ok());
  oink::WorkflowSpec window;
  window.name = "day-morning-window";
  window.input_dir = [day_dir](int64_t) { return day_dir; };
  window.filters = {
      {"timestamp", ">=", dataflow::Value::Int(kDay)},
      {"timestamp", "<", dataflow::Value::Int(kDay + 6 * kMillisPerHour)}};
  ASSERT_TRUE(engine.AddWorkflow(std::move(window)).ok());

  // Cold tick fills the nested cache; the warm tick must hit even though
  // artifacts appeared inside the scanned tree between the two — the
  // manifest never sees them.
  ASSERT_TRUE(engine.RunTick(0).ok());
  EXPECT_EQ(engine.last_tick().cache_misses, 2u);
  auto cold = engine.ResultFor("day-click-rollup");
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->rows().size(), 0u);
  ASSERT_TRUE(engine.RunTick(0).ok());
  EXPECT_EQ(engine.last_tick().cache_hits, 2u);
  EXPECT_EQ(engine.last_tick().scan_bytes_decompressed, 0u);

  // Artifacts really landed in the warehouse under the day directory...
  auto cached = warehouse->ListRecursive(day_dir + "/_cache");
  ASSERT_TRUE(cached.ok());
  EXPECT_GT(cached->size(), 0u);
  // ...while the audit identity and the visible data are untouched.
  obs::DeliverySnapshot after = pipe.Audit();
  EXPECT_TRUE(after.Balanced()) << after.ToString();
  EXPECT_EQ(after.warehoused, before.warehoused);
  EXPECT_EQ(visible(), data_before);
  EXPECT_GT(pipe.metrics()->CounterTotal("oink.cache_hits"), 0u);
}

// ---------------------------------------------------------------------------
// AssertQuiescent: the soak harness's end-of-run gate. Mid-run it must
// flag in-flight data (balance alone is not enough); after a clean drain
// it must pass; and an unrecovered silent loss must keep it failing
// forever — that channel never drains, even though the identity still
// balances.

TEST(DeliveryAuditIntegrationTest, AssertQuiescentSeparatesDrainFromLoss) {
  Simulator sim(kDay);
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.aggregators_per_dc = 1;
  topo.daemons_per_dc = 2;
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 30 * kMillisPerSecond;
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = 2 * kMillisPerMinute;
  mopts.grace_ms = kMillisPerMinute;
  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/9);
  ASSERT_TRUE(cluster.Start().ok());

  for (int i = 0; i < 120; ++i) {
    TimeMs at = kDay + static_cast<TimeMs>(i) * 15 * kMillisPerSecond;
    sim.At(at, [&cluster, i]() {
      cluster.Log(0, scribe::LogEntry{"client_events",
                                      "m" + std::to_string(i) +
                                          std::string(100, 'q')});
    });
  }

  obs::DeliveryAudit audit(&cluster);
  sim.RunUntil(kDay + 10 * kMillisPerMinute);
  EXPECT_TRUE(audit.Check().ok()) << audit.Snapshot().ToString();
  Status midrun = audit.AssertQuiescent();
  ASSERT_FALSE(midrun.ok());  // balanced, but data is still in flight
  EXPECT_TRUE(midrun.IsFailedPrecondition()) << midrun.ToString();
  EXPECT_NE(midrun.ToString().find("not quiescent"), std::string::npos);

  sim.RunUntil(kDay + kMillisPerHour + 20 * kMillisPerMinute);
  EXPECT_TRUE(audit.AssertQuiescent().ok()) << audit.Snapshot().ToString();

  // Hour two, with sabotage: silently delete one staged file before the
  // hour closes. Its messages were counted as staged but can never move.
  for (int i = 0; i < 120; ++i) {
    TimeMs at = kDay + kMillisPerHour +
                static_cast<TimeMs>(i) * 15 * kMillisPerSecond;
    sim.At(at, [&cluster, i]() {
      cluster.Log(0, scribe::LogEntry{"client_events",
                                      "n" + std::to_string(i) +
                                          std::string(100, 'q')});
    });
  }
  sim.At(kDay + kMillisPerHour + 50 * kMillisPerMinute, [&cluster]() {
    auto files = cluster.staging(0)->ListRecursive("/staging");
    ASSERT_TRUE(files.ok());
    bool deleted = false;
    for (const auto& f : *files) {
      if (f.size == 0 || f.path.find("/_") != std::string::npos) continue;
      ASSERT_TRUE(cluster.staging(0)->Delete(f.path).ok());
      deleted = true;
      break;
    }
    ASSERT_TRUE(deleted);
  });

  sim.RunUntil(kDay + 3 * kMillisPerHour);
  Status after = audit.AssertQuiescent();
  ASSERT_FALSE(after.ok());
  EXPECT_NE(after.ToString().find("in_flight_staging"), std::string::npos)
      << after.ToString();
  // The identity still balances — the loss shows as stuck in-flight data,
  // not as counter drift. Only the quiescence gate catches it.
  EXPECT_TRUE(audit.Check().ok()) << audit.Snapshot().ToString();
}

// ---------------------------------------------------------------------------
// A landed columnar part silently corrupted after the slide: the daily
// pipeline quarantines it and still produces the day, instead of failing
// the whole date.

TEST(DeliveryAuditIntegrationTest, CorruptLandedPartQuarantinedByDailyJob) {
  Simulator sim(kDay);
  scribe::ClusterTopology topo;
  topo.datacenters = {"dc1"};
  topo.aggregators_per_dc = 1;
  topo.daemons_per_dc = 2;
  scribe::ScribeOptions sopts;
  sopts.roll_interval_ms = 2 * kMillisPerMinute;
  scribe::LogMoverOptions mopts;
  mopts.run_interval_ms = 10 * kMillisPerMinute;
  mopts.columnar_categories.insert("client_events");
  scribe::ScribeCluster cluster(&sim, topo, sopts, mopts, /*seed=*/11);
  ASSERT_TRUE(cluster.Start().ok());

  workload::WorkloadOptions wopts;
  wopts.seed = 300;
  wopts.num_users = 60;
  wopts.start = kDay;
  wopts.duration = 6 * kMillisPerHour;
  wopts.sessions_per_user_mean = 1.0;
  wopts.events_per_session_mean = 8;
  workload::WorkloadGenerator gen(wopts);
  ASSERT_TRUE(pipeline::DriveWorkloadThroughScribe(&sim, &cluster, &gen,
                                                   "client_events")
                  .ok());
  sim.RunUntil(kDay + 8 * kMillisPerHour);  // every hour slid

  // Flip one byte past the 4-byte magic in the biggest landed part — the
  // write path saw nothing; only the part's own checksums can catch it.
  auto files = cluster.warehouse()->ListRecursive("/logs/client_events");
  ASSERT_TRUE(files.ok());
  std::string victim;
  uint64_t biggest = 0;
  for (const auto& f : *files) {
    if (f.path.find("/_") != std::string::npos) continue;
    if (f.size > biggest) {
      biggest = f.size;
      victim = f.path;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_GT(biggest, 8u);
  ASSERT_TRUE(cluster.warehouse()->CorruptFile(victim, 100).ok());

  pipeline::DailyPipeline daily(cluster.warehouse(),
                                dataflow::JobCostModel{});
  auto result = daily.RunForDate(kDay, pipeline::UserTable::FromWorkload(gen));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Pass 1 quarantined the bad part; pass 2 then never saw it.
  EXPECT_EQ(result->histogram_job.corrupt_inputs_quarantined, 1u);
  EXPECT_EQ(result->sessionize_job.corrupt_inputs_quarantined, 0u);
  EXPECT_GT(result->sequences.size(), 0u);

  const size_t slash = victim.rfind('/');
  EXPECT_FALSE(cluster.warehouse()->Exists(victim));
  EXPECT_TRUE(cluster.warehouse()->Exists(victim.substr(0, slash + 1) +
                                          "_quarantined." +
                                          victim.substr(slash + 1)));

  // Warehouse-side repair never touches the delivery counters: the run
  // still drains to a balanced, quiescent audit.
  obs::DeliveryAudit audit(&cluster);
  EXPECT_TRUE(audit.AssertQuiescent().ok()) << audit.Snapshot().ToString();
}

}  // namespace
}  // namespace unilog
