// Final coverage sweep: small behaviours not exercised elsewhere —
// simulator stepping, LZ window limits, relation rendering, job-stat
// formatting, pig DESCRIBE of grouped aliases, and n-gram bookkeeping.

#include <gtest/gtest.h>

#include <string>

#include "common/compress.h"
#include "dataflow/cost_model.h"
#include "dataflow/pig.h"
#include "dataflow/relation.h"
#include "nlp/ngram_model.h"
#include "sim/simulator.h"

namespace unilog {
namespace {

TEST(SimulatorStepTest, StepExecutesBoundedEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sim.After(10 * (i + 1), [&] { ++fired; });
  }
  sim.Step();  // one event
  EXPECT_EQ(fired, 1);
  sim.Step(2);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Step(100);  // more than pending: drains
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(LzWindowTest, MatchesBeyondWindowStillRoundTrip) {
  // A repeated phrase separated by more than the 64 KiB window: the
  // compressor cannot reference it, but correctness must hold.
  std::string phrase = "the-unified-logging-infrastructure-";
  std::string data = phrase;
  data += std::string(Lz::kWindow + 1000, 'x');
  data += phrase;  // out of window: must be emitted as literals/new match
  auto back = Lz::Decompress(Lz::Compress(data));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(LzWindowTest, EmptyAndOneByte) {
  for (const std::string& s : {std::string(), std::string("a")}) {
    auto back = Lz::Decompress(Lz::Compress(s));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, s);
  }
}

TEST(RelationRenderTest, ToStringTruncatesLongRelations) {
  dataflow::Relation r({"x"});
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(r.AddRow({dataflow::Value::Int(i)}).ok());
  }
  std::string rendered = r.ToString(/*max_rows=*/5);
  EXPECT_NE(rendered.find("... (25 more rows)"), std::string::npos);
  EXPECT_EQ(rendered.find("29"), std::string::npos);
}

TEST(JobStatsRenderTest, ToStringContainsFields) {
  dataflow::JobStats stats;
  stats.map_tasks = 12;
  stats.bytes_scanned = 3456;
  stats.records_output = 7;
  stats.modeled_ms = 1500;
  std::string s = stats.ToString();
  EXPECT_NE(s.find("maps=12"), std::string::npos);
  EXPECT_NE(s.find("scanned=3456"), std::string::npos);
  EXPECT_NE(s.find("out=7"), std::string::npos);
  EXPECT_NE(s.find("modeled_ms=1500"), std::string::npos);
}

TEST(PigDescribeTest, GroupedAliasMarked) {
  dataflow::PigInterpreter pig;
  dataflow::Relation r({"a", "b"});
  EXPECT_TRUE(
      r.AddRow({dataflow::Value::Int(1), dataflow::Value::Int(2)}).ok());
  pig.RegisterLoader("Mem",
                     [r](const std::string&, const std::vector<std::string>&)
                         -> Result<dataflow::Relation> { return r; });
  ASSERT_TRUE(pig.Run("x = load 'm' using Mem();"
                      "g = group x by a;"
                      "describe g;")
                  .ok());
  ASSERT_EQ(pig.output().size(), 1u);
  EXPECT_EQ(pig.output()[0], "g: {a, b} (grouped)");
  // Lookup of a grouped alias is rejected with a helpful error.
  EXPECT_TRUE(pig.Lookup("g").status().IsFailedPrecondition());
}

TEST(NgramBookkeepingTest, TotalNgramsObserved) {
  nlp::NgramModel model(2, 10);
  // Sequence of 3 symbols trains 4 positions (3 symbols + EOS).
  model.Train({1, 2, 3});
  EXPECT_EQ(model.total_ngrams_observed(), 4u);
  model.Train({});  // just EOS
  EXPECT_EQ(model.total_ngrams_observed(), 5u);
  EXPECT_EQ(model.n(), 2);
}

TEST(StatusCodeNamesTest, AllCodesNamed) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace unilog
