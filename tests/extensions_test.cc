// Tests for the extension modules: log anonymization (§3.2), grammar
// induction over session sequences, and LifeFlow-style aggregation (§6).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analytics/lifeflow.h"
#include "common/rng.h"
#include "events/anonymize.h"
#include "nlp/grammar.h"
#include "sessions/dictionary.h"

namespace unilog {
namespace {

// ---------------------------------------------------------------------------
// Anonymization

events::ClientEvent SampleEvent() {
  events::ClientEvent ev;
  ev.event_name = "web:search:results:result_list:result:click";
  ev.user_id = 123456789;
  ev.session_id = "cookie-abc";
  ev.ip = "203.10.113.57";
  ev.timestamp = 1345507200000;
  ev.details = {{"query", "secret health question"},
                {"rank", "3"},
                {"lang", "en"}};
  return ev;
}

TEST(AnonymizeTest, PseudonymsAreStableWithinKeyAndDifferAcrossKeys) {
  int64_t a1 = events::PseudonymizeUserId(1, 42);
  int64_t a2 = events::PseudonymizeUserId(1, 42);
  int64_t b = events::PseudonymizeUserId(2, 42);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(a1, 42);
  EXPECT_GE(a1, 0);  // stays a plausible id

  EXPECT_EQ(events::PseudonymizeSessionId(1, "x"),
            events::PseudonymizeSessionId(1, "x"));
  EXPECT_NE(events::PseudonymizeSessionId(1, "x"),
            events::PseudonymizeSessionId(2, "x"));
  EXPECT_NE(events::PseudonymizeSessionId(1, "x"),
            events::PseudonymizeSessionId(1, "y"));
}

TEST(AnonymizeTest, PseudonymsPreserveJoinability) {
  // Two events by the same user map to the same pseudonym: the group-by
  // still reconstructs sessions after anonymization.
  events::AnonymizationPolicy policy;
  events::ClientEvent a = SampleEvent(), b = SampleEvent();
  b.event_name = "web:home:::tweet:impression";
  ASSERT_TRUE(events::Anonymize(policy, &a).ok());
  ASSERT_TRUE(events::Anonymize(policy, &b).ok());
  EXPECT_EQ(a.user_id, b.user_id);
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_NE(a.user_id, SampleEvent().user_id);
}

TEST(AnonymizeTest, IpTruncation) {
  EXPECT_EQ(events::TruncateIp("203.10.113.57", 1).value(), "203.10.113.0");
  EXPECT_EQ(events::TruncateIp("203.10.113.57", 2).value(), "203.10.0.0");
  EXPECT_EQ(events::TruncateIp("203.10.113.57", 4).value(), "0.0.0.0");
  EXPECT_EQ(events::TruncateIp("203.10.113.57", 9).value(), "0.0.0.0");
  EXPECT_EQ(events::TruncateIp("203.10.113.57", 0).value(), "203.10.113.57");
  EXPECT_FALSE(events::TruncateIp("not-an-ip", 1).ok());
  EXPECT_FALSE(events::TruncateIp("1.2.3", 1).ok());
  EXPECT_FALSE(events::TruncateIp("1.2.3.999", 1).ok());
  EXPECT_FALSE(events::TruncateIp("1.2.3.x", 1).ok());
}

TEST(AnonymizeTest, PolicyDropsAndRedactsDetails) {
  events::AnonymizationPolicy policy;
  policy.drop_detail_keys = {"query"};
  policy.redact_detail_keys = {"rank"};
  events::ClientEvent ev = SampleEvent();
  ASSERT_TRUE(events::Anonymize(policy, &ev).ok());
  EXPECT_EQ(ev.FindDetail("query"), nullptr);
  ASSERT_NE(ev.FindDetail("rank"), nullptr);
  EXPECT_EQ(*ev.FindDetail("rank"), "<redacted>");
  ASSERT_NE(ev.FindDetail("lang"), nullptr);
  EXPECT_EQ(*ev.FindDetail("lang"), "en");
  EXPECT_EQ(ev.ip, "203.10.113.0");  // default /24 truncation
  // Event name, timestamp untouched: analyses still work.
  EXPECT_EQ(ev.event_name, SampleEvent().event_name);
  EXPECT_EQ(ev.timestamp, SampleEvent().timestamp);
}

TEST(AnonymizeTest, DisabledPolicyIsIdentityPlusIp) {
  events::AnonymizationPolicy policy;
  policy.pseudonymize_user_ids = false;
  policy.pseudonymize_session_ids = false;
  policy.ip_zero_octets = 0;
  events::ClientEvent ev = SampleEvent();
  ASSERT_TRUE(events::Anonymize(policy, &ev).ok());
  EXPECT_EQ(ev, SampleEvent());
}

TEST(AnonymizeTest, MalformedIpReported) {
  events::AnonymizationPolicy policy;
  events::ClientEvent ev = SampleEvent();
  ev.ip = "garbage";
  EXPECT_TRUE(events::Anonymize(policy, &ev).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Grammar induction

TEST(GrammarTest, InducesRepeatedPhrase) {
  // The phrase {1,2,3} repeats; induction should build it hierarchically.
  std::vector<nlp::SymbolSequence> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back({1, 2, 3, 9, 1, 2, 3, 8, 1, 2, 3});
  }
  auto grammar = nlp::InducedGrammar::Induce(corpus);
  ASSERT_GE(grammar.rules().size(), 2u);
  // The first rule merges the most frequent pair (1,2).
  EXPECT_EQ(grammar.rules()[0].left, 1u);
  EXPECT_EQ(grammar.rules()[0].right, 2u);
  // Some rule expands exactly to {1,2,3}.
  bool found_phrase = false;
  for (const auto& rule : grammar.rules()) {
    if (grammar.Expand(rule.nonterminal) ==
        std::vector<uint32_t>({1, 2, 3})) {
      found_phrase = true;
    }
  }
  EXPECT_TRUE(found_phrase);
}

TEST(GrammarTest, EncodeDecodeRoundTrip) {
  Rng rng(5);
  std::vector<nlp::SymbolSequence> corpus;
  for (int s = 0; s < 50; ++s) {
    nlp::SymbolSequence seq;
    for (int i = 0; i < 30; ++i) {
      if (rng.Bernoulli(0.4)) {
        seq.push_back(10);
        seq.push_back(11);  // planted bigram
      } else {
        seq.push_back(1 + static_cast<uint32_t>(rng.Uniform(8)));
      }
    }
    corpus.push_back(seq);
  }
  auto grammar = nlp::InducedGrammar::Induce(corpus);
  for (const auto& seq : corpus) {
    nlp::SymbolSequence encoded = grammar.Encode(seq);
    EXPECT_LE(encoded.size(), seq.size());
    EXPECT_EQ(grammar.Decode(encoded), seq);
  }
  EXPECT_LT(grammar.CompressionRatio(corpus), 0.95);
}

TEST(GrammarTest, RespectsMinCountAndMaxRules) {
  std::vector<nlp::SymbolSequence> corpus = {{1, 2, 1, 2, 1, 2, 3, 4}};
  nlp::InducedGrammar::Options opts;
  opts.min_count = 3;
  auto grammar = nlp::InducedGrammar::Induce(corpus, opts);
  // Only (1,2) occurs >= 3 times.
  ASSERT_EQ(grammar.rules().size(), 1u);
  EXPECT_EQ(grammar.rules()[0].left, 1u);
  EXPECT_EQ(grammar.rules()[0].right, 2u);

  opts.min_count = 1;
  opts.max_rules = 2;
  auto capped = nlp::InducedGrammar::Induce(corpus, opts);
  EXPECT_EQ(capped.rules().size(), 2u);
}

TEST(GrammarTest, EmptyCorpus) {
  auto grammar = nlp::InducedGrammar::Induce({});
  EXPECT_TRUE(grammar.rules().empty());
  EXPECT_EQ(grammar.CompressionRatio({}), 1.0);
  EXPECT_EQ(grammar.Encode({1, 2}), (nlp::SymbolSequence{1, 2}));
}

TEST(GrammarTest, TerminalExpansionIsIdentity) {
  auto grammar = nlp::InducedGrammar::Induce({{1, 2, 1, 2, 1, 2, 1, 2}});
  EXPECT_EQ(grammar.Expand(7), std::vector<uint32_t>{7});
}

// ---------------------------------------------------------------------------
// LifeFlow

TEST(LifeFlowTest, BuildsPrefixTree) {
  std::vector<std::vector<std::string>> paths = {
      {"home", "mentions", "click"},
      {"home", "mentions", "expand"},
      {"home", "trends"},
      {"search", "results"},
  };
  auto tree = analytics::LifeFlowTree::Build(paths);
  EXPECT_EQ(tree.total_sessions(), 4u);
  // root + home + mentions + click + expand + trends + search + results.
  EXPECT_EQ(tree.NodeCount(), 8u);
  const auto& root = tree.root();
  ASSERT_EQ(root.children.size(), 2u);  // home, search
}

TEST(LifeFlowTest, RenderShowsCountsAndElision) {
  std::vector<std::vector<std::string>> paths;
  for (int i = 0; i < 8; ++i) paths.push_back({"home", "timeline"});
  for (int i = 0; i < 2; ++i) paths.push_back({"home", "mentions"});
  paths.push_back({"home", "trends"});
  paths.push_back({"home", "discover"});
  auto tree = analytics::LifeFlowTree::Build(paths);
  std::string rendered = tree.Render(/*max_children=*/2);
  EXPECT_NE(rendered.find("12 <start>"), std::string::npos);
  EXPECT_NE(rendered.find("8 timeline"), std::string::npos);
  EXPECT_NE(rendered.find("2 mentions"), std::string::npos);
  // trends/discover fall past the fan-out cap and are summarized.
  EXPECT_NE(rendered.find("2 more branches (2 sessions)"),
            std::string::npos);
  EXPECT_EQ(rendered.find("trends"), std::string::npos);
}

TEST(LifeFlowTest, MaxDepthTruncates) {
  std::vector<std::vector<std::string>> paths = {{"a", "b", "c", "d", "e"}};
  auto tree = analytics::LifeFlowTree::Build(paths, /*max_depth=*/2);
  EXPECT_EQ(tree.NodeCount(), 3u);  // root + a + b
}

TEST(LifeFlowTest, FromSequencesDecodesThroughDictionary) {
  auto dict = sessions::EventDictionary::FromNamesInGivenOrder(
      {"web:home:::tweet:impression", "web:home:::tweet:click"});
  sessions::SessionSequence seq;
  seq.sequence = dict->EncodeNames({"web:home:::tweet:impression",
                                    "web:home:::tweet:click"})
                     .value();
  auto tree = analytics::LifeFlowTree::FromSequences({seq, seq}, *dict);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->total_sessions(), 2u);
  std::string rendered = tree->Render();
  EXPECT_NE(rendered.find("2 web:home:::tweet:impression"),
            std::string::npos);
}

TEST(LifeFlowTest, TerminalsTracked) {
  std::vector<std::vector<std::string>> paths = {
      {"a"}, {"a", "b"}, {"a", "b"}};
  auto tree = analytics::LifeFlowTree::Build(paths);
  const auto& a = *tree.root().children[0];
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.terminals, 1u);  // one session ends at 'a'
  std::string rendered = tree.Render();
  EXPECT_NE(rendered.find("(1 end here)"), std::string::npos);
}

}  // namespace
}  // namespace unilog
