// Tests for Elephant Twin-style indexing (§6): building the per-partition
// inverted index, push-down filtering, and rebuild semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/compress.h"
#include "dataflow/mapreduce.h"
#include "etwin/index.h"
#include "events/client_event.h"
#include "hdfs/mini_hdfs.h"
#include "scribe/message.h"

namespace unilog::etwin {
namespace {

events::ClientEvent MakeEvent(const std::string& name, int64_t user) {
  events::ClientEvent ev;
  ev.event_name = name;
  ev.user_id = user;
  ev.session_id = "s";
  ev.ip = "10.0.0.1";
  ev.timestamp = 1345507200000;
  return ev;
}

void WriteEventFile(hdfs::MiniHdfs* fs, const std::string& path,
                    const std::vector<std::string>& names) {
  std::string body;
  events::ClientEventWriter writer(&body);
  int64_t uid = 0;
  for (const auto& name : names) writer.Add(MakeEvent(name, ++uid));
  ASSERT_TRUE(fs->WriteFile(path, Lz::Compress(body)).ok());
}

class EtwinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WriteEventFile(&fs_, "/logs/ce/2012/08/21/00/part-0",
                   {"web:home:::tweet:impression", "web:home:::tweet:click"});
    WriteEventFile(&fs_, "/logs/ce/2012/08/21/00/part-1",
                   {"iphone:home:::tweet:impression"});
    WriteEventFile(&fs_, "/logs/ce/2012/08/21/00/part-2",
                   {"web:search:::result:click",
                    "web:search:::result:impression"});
  }

  hdfs::MiniHdfs fs_;
};

TEST_F(EtwinTest, BuildCreatesIndexFile) {
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, "/logs/ce/2012/08/21/00").ok());
  EXPECT_TRUE(fs_.Exists("/logs/ce/2012/08/21/00/_etwin_index"));
  auto index = EventNameIndex::Load(fs_, "/logs/ce/2012/08/21/00");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->indexed_files(), 3u);
  EXPECT_EQ(index->distinct_event_names(), 5u);
}

TEST_F(EtwinTest, FilesMatchingSelectsOnlyRelevantFiles) {
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, "/logs/ce/2012/08/21/00").ok());
  auto index = *EventNameIndex::Load(fs_, "/logs/ce/2012/08/21/00");

  auto clicks = index.FilesMatching(events::EventPattern("*:click"));
  ASSERT_EQ(clicks.size(), 2u);  // part-0 and part-2

  auto iphone = index.FilesMatching(events::EventPattern("iphone:*"));
  ASSERT_EQ(iphone.size(), 1u);
  EXPECT_NE(iphone[0].find("part-1"), std::string::npos);

  EXPECT_TRUE(index.FilesMatching(events::EventPattern("android:*")).empty());
}

TEST_F(EtwinTest, FileFilterConservativeForUnknownFiles) {
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, "/logs/ce/2012/08/21/00").ok());
  auto index = *EventNameIndex::Load(fs_, "/logs/ce/2012/08/21/00");
  auto filter = index.FileFilter(events::EventPattern("iphone:*"));
  EXPECT_TRUE(filter("/logs/ce/2012/08/21/00/part-1"));
  EXPECT_FALSE(filter("/logs/ce/2012/08/21/00/part-0"));
  // A file the index has never seen is accepted (no false negatives).
  EXPECT_TRUE(filter("/logs/ce/2012/08/21/00/part-99"));
}

TEST_F(EtwinTest, PushDownIntoMapReduceSkipsFiles) {
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, "/logs/ce/2012/08/21/00").ok());
  auto index = *EventNameIndex::Load(fs_, "/logs/ce/2012/08/21/00");

  auto run_with = [&](bool use_index) {
    dataflow::MapReduceJob job(&fs_, dataflow::JobCostModel{});
    EXPECT_TRUE(job.AddInputDir("/logs/ce/2012/08/21/00").ok());
    auto format = dataflow::InputFormat::CompressedFramed();
    if (use_index) {
      format = format.WithFileFilter(
          index.FileFilter(events::EventPattern("iphone:*")));
    }
    job.set_input_format(format);
    job.set_map([](const std::string& record, dataflow::Emitter* e) -> Status {
      UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                              events::ClientEvent::Deserialize(record));
      if (ev.event_name.rfind("iphone:", 0) == 0) e->Emit(ev.event_name, "");
      return Status::OK();
    });
    auto out = job.Run();
    EXPECT_TRUE(out.ok());
    return std::make_pair(out->size(), job.stats().bytes_scanned);
  };

  auto [full_rows, full_bytes] = run_with(false);
  auto [indexed_rows, indexed_bytes] = run_with(true);
  EXPECT_EQ(full_rows, indexed_rows);       // same answer
  EXPECT_LT(indexed_bytes, full_bytes);     // less data touched
  EXPECT_EQ(indexed_rows, 1u);
}

TEST_F(EtwinTest, RebuildOverwritesOldIndex) {
  const std::string dir = "/logs/ce/2012/08/21/00";
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, dir).ok());
  // New data arrives; rebuild from scratch (the paper's re-indexing story).
  WriteEventFile(&fs_, dir + "/part-3", {"android:home:::tweet:impression"});
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, dir).ok());
  auto index = *EventNameIndex::Load(fs_, dir);
  EXPECT_EQ(index.indexed_files(), 4u);
  EXPECT_EQ(index.FilesMatching(events::EventPattern("android:*")).size(), 1u);
}

TEST_F(EtwinTest, SerializationRoundTrip) {
  ASSERT_TRUE(EventNameIndex::BuildForDir(&fs_, "/logs/ce/2012/08/21/00").ok());
  auto index = *EventNameIndex::Load(fs_, "/logs/ce/2012/08/21/00");
  std::string blob = index.Serialize();
  auto back = EventNameIndex::Deserialize(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->indexed_files(), index.indexed_files());
  EXPECT_EQ(back->distinct_event_names(), index.distinct_event_names());
  EXPECT_FALSE(EventNameIndex::Deserialize(blob.substr(0, 5)).ok());
}

TEST_F(EtwinTest, LoadMissingIndexIsNotFound) {
  EXPECT_TRUE(
      EventNameIndex::Load(fs_, "/logs/ce/2012/08/21/00").status().IsNotFound());
}

}  // namespace
}  // namespace unilog::etwin
