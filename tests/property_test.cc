// Property-based sweeps over the codecs and core invariants: randomized
// LZ round-trips, random Thrift value round-trips, sessionizer partition
// invariants, glob-matching properties, and dictionary coding laws.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/compress.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/utf8.h"
#include "dataflow/mapreduce.h"
#include "columnar/rcfile.h"
#include "dataflow/plan_fingerprint.h"
#include "dataflow/relation.h"
#include "dataflow/relation_serde.h"
#include "dataflow/vector_engine.h"
#include "oink/artifact_cache.h"
#include "oink/workflow.h"
#include "events/client_event.h"
#include "events/event_name.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "sessions/dictionary.h"
#include "sessions/sessionizer.h"
#include "thrift/compact_protocol.h"
#include "thrift/value.h"

namespace unilog {
namespace {

// ---------------------------------------------------------------------------
// LZ codec: random inputs of varied structure always round-trip.

class LzPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomBuffer(Rng& rng) {
  std::string data;
  size_t segments = 1 + rng.Uniform(20);
  for (size_t s = 0; s < segments; ++s) {
    switch (rng.Uniform(4)) {
      case 0: {  // random bytes
        size_t n = rng.Uniform(500);
        for (size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<char>(rng.Next64() & 0xFF));
        }
        break;
      }
      case 1: {  // run of one byte
        data.append(rng.Uniform(300), static_cast<char>(rng.Uniform(256)));
        break;
      }
      case 2: {  // repeated phrase
        std::string phrase = "event" + std::to_string(rng.Uniform(10)) + ":";
        size_t reps = rng.Uniform(100);
        for (size_t i = 0; i < reps; ++i) data += phrase;
        break;
      }
      default: {  // copy of an earlier window (long-range match)
        if (!data.empty()) {
          size_t start = rng.Uniform(data.size());
          size_t len = std::min<size_t>(rng.Uniform(200),
                                        data.size() - start);
          data += data.substr(start, len);
        }
        break;
      }
    }
  }
  return data;
}

TEST_P(LzPropertyTest, RoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    std::string data = RandomBuffer(rng);
    std::string compressed = Lz::Compress(data);
    auto back = Lz::Decompress(compressed);
    ASSERT_TRUE(back.ok()) << "seed=" << GetParam() << " iter=" << iter;
    ASSERT_EQ(*back, data) << "seed=" << GetParam() << " iter=" << iter;
  }
}

// Generator biased toward the 64 KiB window boundary: phrases repeated at
// distances clustered around kWindow so matches straddle the cutoff, mixed
// with noise so the hash chains stay populated.
std::string WindowBoundaryBuffer(Rng& rng) {
  std::string phrase = "boundary" + std::to_string(rng.Uniform(16)) + "!";
  std::string data = phrase;
  size_t repeats = 1 + rng.Uniform(4);
  for (size_t r = 0; r < repeats; ++r) {
    // Distance in [kWindow - 128, kWindow + 128] from the last phrase.
    size_t gap = Lz::kWindow - 128 + rng.Uniform(257);
    size_t noise = std::min<size_t>(gap, 64 + rng.Uniform(64));
    for (size_t i = 0; i < noise; ++i) {
      data.push_back(static_cast<char>(rng.Next64() & 0xFF));
    }
    data.append(gap - noise, static_cast<char>(rng.Uniform(4)));
    data += phrase;
  }
  return data;
}

TEST_P(LzPropertyTest, PooledMatchesReferenceAndRoundTrips) {
  // One reused Compressor across every buffer in the sweep: pooled output
  // must equal fresh-state output and round-trip, regardless of the size
  // sequence the compressor sees.
  Rng rng(GetParam() * 7919 + 1);
  Lz::Compressor compressor;
  std::string pooled;
  for (int iter = 0; iter < 12; ++iter) {
    std::string data =
        rng.Bernoulli(0.5) ? RandomBuffer(rng) : WindowBoundaryBuffer(rng);
    compressor.CompressTo(data, &pooled);
    ASSERT_EQ(pooled, Lz::CompressReference(data))
        << "seed=" << GetParam() << " iter=" << iter
        << " size=" << data.size();
    auto back = Lz::Decompress(pooled);
    ASSERT_TRUE(back.ok()) << "seed=" << GetParam() << " iter=" << iter;
    ASSERT_EQ(*back, data) << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Thrift: randomly generated values round-trip through the compact
// protocol.

thrift::ThriftValue RandomValue(Rng& rng, int depth);

thrift::ThriftValue RandomScalar(Rng& rng) {
  switch (rng.Uniform(7)) {
    case 0:
      return thrift::ThriftValue::Bool(rng.Bernoulli(0.5));
    case 1:
      return thrift::ThriftValue::Byte(static_cast<int8_t>(rng.Next64()));
    case 2:
      return thrift::ThriftValue::I16(static_cast<int16_t>(rng.Next64()));
    case 3:
      return thrift::ThriftValue::I32(static_cast<int32_t>(rng.Next64()));
    case 4:
      return thrift::ThriftValue::I64(static_cast<int64_t>(rng.Next64()));
    case 5:
      return thrift::ThriftValue::Double(rng.NextDouble() * 1e6 - 5e5);
    default: {
      std::string s;
      size_t n = rng.Uniform(30);
      for (size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.Next64() & 0xFF));
      }
      return thrift::ThriftValue::String(std::move(s));
    }
  }
}

thrift::ThriftValue RandomStruct(Rng& rng, int depth) {
  thrift::ThriftValue s = thrift::ThriftValue::Struct();
  size_t fields = rng.Uniform(6);
  int16_t id = 0;
  for (size_t f = 0; f < fields; ++f) {
    id = static_cast<int16_t>(id + 1 + rng.Uniform(30));
    s.SetField(id, RandomValue(rng, depth - 1));
  }
  return s;
}

thrift::ThriftValue RandomValue(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.5)) return RandomScalar(rng);
  switch (rng.Uniform(3)) {
    case 0:
      return RandomStruct(rng, depth);
    case 1: {
      thrift::ListData l;
      // Homogeneous element type required: sample one exemplar.
      thrift::ThriftValue exemplar = RandomScalar(rng);
      l.elem_type = exemplar.type();
      l.is_set = rng.Bernoulli(0.3);
      size_t n = rng.Uniform(5);
      for (size_t i = 0; i < n; ++i) {
        // Re-draw until the type matches the exemplar.
        thrift::ThriftValue v = RandomScalar(rng);
        while (v.type() != l.elem_type) v = RandomScalar(rng);
        l.elems.push_back(std::move(v));
      }
      return thrift::ThriftValue::List(std::move(l));
    }
    default: {
      thrift::MapData m;
      thrift::ThriftValue kx = RandomScalar(rng);
      thrift::ThriftValue vx = RandomScalar(rng);
      m.key_type = kx.type();
      m.value_type = vx.type();
      size_t n = rng.Uniform(4);
      for (size_t i = 0; i < n; ++i) {
        thrift::ThriftValue k = RandomScalar(rng);
        while (k.type() != m.key_type) k = RandomScalar(rng);
        thrift::ThriftValue v = RandomScalar(rng);
        while (v.type() != m.value_type) v = RandomScalar(rng);
        m.entries.emplace_back(std::move(k), std::move(v));
      }
      return thrift::ThriftValue::Map(std::move(m));
    }
  }
}

class ThriftPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThriftPropertyTest, RandomStructsRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    thrift::ThriftValue s = RandomStruct(rng, 3);
    std::string buf;
    ASSERT_TRUE(thrift::SerializeStruct(s, &buf).ok());
    auto parsed = thrift::ParseStruct(buf);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->Equals(s)) << "seed=" << GetParam()
                                   << " iter=" << iter << "\nvalue "
                                   << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThriftPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// ---------------------------------------------------------------------------
// Sessionizer invariants under random event streams.

class SessionizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionizerPropertyTest, PartitionInvariants) {
  Rng rng(GetParam());
  sessions::Sessionizer sessionizer;
  uint64_t total_events = 200 + rng.Uniform(300);
  TimeMs base = 1345507200000;
  for (uint64_t i = 0; i < total_events; ++i) {
    events::ClientEvent ev;
    ev.user_id = static_cast<int64_t>(rng.Uniform(10));
    ev.session_id = "s" + std::to_string(rng.Uniform(3));
    ev.event_name = "e" + std::to_string(rng.Uniform(5));
    ev.ip = "10.0.0.1";
    ev.timestamp = base + static_cast<TimeMs>(
                              rng.Uniform(6 * kMillisPerHour));
    sessionizer.Add(ev);
  }
  auto sessions = sessionizer.Build();

  // (1) Every event lands in exactly one session.
  uint64_t reconstructed = 0;
  for (const auto& s : sessions) reconstructed += s.event_names.size();
  EXPECT_EQ(reconstructed, total_events);

  // (2) Within a session: duration >= 0 and end - start <= events * gap.
  // (3) Sessions of the same (user, session id) are separated by > gap.
  std::map<std::pair<int64_t, std::string>, std::vector<const sessions::Session*>>
      by_group;
  for (const auto& s : sessions) {
    EXPECT_GE(s.end, s.start);
    by_group[{s.user_id, s.session_id}].push_back(&s);
  }
  for (auto& [key, group] : by_group) {
    std::sort(group.begin(), group.end(),
              [](const sessions::Session* a, const sessions::Session* b) {
                return a->start < b->start;
              });
    for (size_t i = 1; i < group.size(); ++i) {
      EXPECT_GT(group[i]->start - group[i - 1]->end, kSessionInactivityGapMs)
          << "sessions for the same key must be gap-separated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionizerPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Glob matching: agreement with a simple recursive reference.

bool ReferenceGlob(std::string_view p, std::string_view t) {
  if (p.empty()) return t.empty();
  if (p[0] == '*') {
    for (size_t skip = 0; skip <= t.size(); ++skip) {
      if (ReferenceGlob(p.substr(1), t.substr(skip))) return true;
    }
    return false;
  }
  if (t.empty() || p[0] != t[0]) return false;
  return ReferenceGlob(p.substr(1), t.substr(1));
}

class GlobPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobPropertyTest, AgreesWithReference) {
  Rng rng(GetParam());
  const char alphabet[] = "ab:*";
  for (int iter = 0; iter < 500; ++iter) {
    std::string pattern, text;
    size_t pn = rng.Uniform(8), tn = rng.Uniform(10);
    for (size_t i = 0; i < pn; ++i) {
      pattern.push_back(alphabet[rng.Uniform(4)]);
    }
    for (size_t i = 0; i < tn; ++i) {
      text.push_back(alphabet[rng.Uniform(3)]);  // no '*' in text
    }
    EXPECT_EQ(GlobMatch(pattern, text), ReferenceGlob(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobPropertyTest,
                         ::testing::Values(7u, 77u, 777u));

// ---------------------------------------------------------------------------
// Dictionary coding laws.

class DictionaryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryPropertyTest, EncodingIsBijectiveAndMonotone) {
  Rng rng(GetParam());
  // Random alphabet with random frequencies.
  std::vector<std::pair<std::string, uint64_t>> counts;
  size_t n = 50 + rng.Uniform(400);
  for (size_t i = 0; i < n; ++i) {
    counts.emplace_back("event_" + std::to_string(i), 1 + rng.Uniform(10000));
  }
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  auto dict = sessions::EventDictionary::FromSortedCounts(counts);
  ASSERT_TRUE(dict.ok());

  // Monotonicity: higher frequency rank → strictly smaller code point,
  // and every code point encodes to at most as many bytes as later ones.
  uint32_t prev_cp = 0;
  for (const auto& [name, count] : counts) {
    uint32_t cp = dict->CodePointFor(name).value();
    EXPECT_GT(cp, prev_cp);
    prev_cp = cp;
  }

  // Round trip random sessions.
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<std::string> names;
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      names.push_back(counts[rng.Uniform(counts.size())].first);
    }
    auto encoded = dict->EncodeNames(names);
    ASSERT_TRUE(encoded.ok());
    auto decoded = dict->DecodeToNames(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, names);
    EXPECT_EQ(Utf8Length(*encoded), names.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryPropertyTest,
                         ::testing::Values(9u, 99u, 999u));

// ---------------------------------------------------------------------------
// StableShuffle: the exec engine's grouped merge must equal the serial
// engine's concatenate-then-group reference on random emitter sets, and
// per-key value order must be (task index, emission order).

class StableShufflePropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<dataflow::Emitter> RandomEmitters(Rng& rng) {
  std::vector<dataflow::Emitter> tasks(1 + rng.Uniform(8));
  for (size_t t = 0; t < tasks.size(); ++t) {
    size_t pairs = rng.Uniform(50);
    for (size_t p = 0; p < pairs; ++p) {
      // Few distinct keys so values from different tasks really collide.
      std::string key = "k" + std::to_string(rng.Uniform(6));
      std::string value =
          "t" + std::to_string(t) + "#" + std::to_string(p);
      tasks[t].Emit(std::move(key), std::move(value));
    }
  }
  return tasks;
}

TEST_P(StableShufflePropertyTest, MatchesSerialReferenceAndPreservesOrder) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<dataflow::Emitter> tasks = RandomEmitters(rng);

    // Reference: exactly what the serial engine does — concatenate all
    // task pairs in task order, group into an ordered map.
    std::map<std::string, std::vector<std::string>> reference;
    uint64_t reference_bytes = 0;
    for (const auto& task : tasks) {
      for (const auto& [key, value] : task.pairs()) {
        reference_bytes += key.size() + value.size();
        reference[key].push_back(value);
      }
    }

    std::vector<dataflow::Emitter> consumed = tasks;  // StableShuffle consumes
    uint64_t bytes = 0;
    auto groups = dataflow::StableShuffle(&consumed, &bytes);

    EXPECT_EQ(groups, reference) << "seed=" << GetParam() << " iter=" << iter;
    EXPECT_EQ(bytes, reference_bytes);

    // Per-key value order is (task index, emission order): the embedded
    // "t<task>#<seq>" tags must be non-decreasing in task and strictly
    // increasing in seq within a task.
    for (const auto& [key, values] : groups) {
      long prev_task = -1, prev_seq = -1;
      for (const auto& v : values) {
        size_t hash_pos = v.find('#');
        long task = std::stol(v.substr(1, hash_pos - 1));
        long seq = std::stol(v.substr(hash_pos + 1));
        if (task == prev_task) {
          EXPECT_GT(seq, prev_seq) << "key=" << key;
        } else {
          EXPECT_GT(task, prev_task) << "key=" << key;
        }
        prev_task = task;
        prev_seq = seq;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StableShufflePropertyTest,
                         ::testing::Values(4u, 44u, 444u, 4444u));

// ---------------------------------------------------------------------------
// Emitter isolation under the pool: each map task's emitter must contain
// exactly its own emissions in emission order — pairs never interleave
// across tasks, whatever the scheduling.

class EmitterIsolationPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmitterIsolationPropertyTest, TaskEmittersNeverInterleave) {
  Rng rng(GetParam());
  exec::ExecOptions opts;
  opts.threads = 8;
  exec::Executor executor(opts);
  for (int iter = 0; iter < 10; ++iter) {
    size_t num_tasks = 1 + rng.Uniform(32);
    std::vector<size_t> emissions(num_tasks);
    for (auto& e : emissions) e = rng.Uniform(64);
    std::vector<dataflow::Emitter> task_out(num_tasks);
    executor.ParallelFor("emit", num_tasks, [&](size_t t) {
      for (size_t p = 0; p < emissions[t]; ++p) {
        task_out[t].Emit("task" + std::to_string(t),
                         std::to_string(p));
      }
    });
    for (size_t t = 0; t < num_tasks; ++t) {
      const auto& pairs = task_out[t].pairs();
      ASSERT_EQ(pairs.size(), emissions[t]) << "task=" << t;
      for (size_t p = 0; p < pairs.size(); ++p) {
        EXPECT_EQ(pairs[p].first, "task" + std::to_string(t));
        EXPECT_EQ(pairs[p].second, std::to_string(p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmitterIsolationPropertyTest,
                         ::testing::Values(7u, 77u, 777u));

// ---------------------------------------------------------------------------
// MapReduce: on random warehouses and random-ish jobs, the parallel engine
// must reproduce the serial engine byte for byte.

class MapReducePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapReducePropertyTest, ParallelMatchesSerialOnRandomWarehouses) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 4; ++iter) {
    hdfs::MiniHdfs fs;
    size_t num_files = 1 + rng.Uniform(7);
    uint64_t key_space = 1 + rng.Uniform(12);
    for (size_t f = 0; f < num_files; ++f) {
      std::string body;
      size_t records = rng.Uniform(60);
      for (size_t r = 0; r < records; ++r) {
        std::string record = "k" + std::to_string(rng.Uniform(key_space)) +
                             " v" + std::to_string(rng.Next64() % 1000);
        PutVarint64(&body, record.size());
        body += record;
      }
      ASSERT_TRUE(
          fs.WriteFile("/in/f" + std::to_string(f), body).ok());
    }
    bool with_reduce = rng.Bernoulli(0.5);
    auto run = [&](exec::Executor* executor) {
      dataflow::MapReduceJob job(&fs, dataflow::JobCostModel{});
      job.set_executor(executor);
      job.set_input_format(dataflow::InputFormat::Framed());
      EXPECT_TRUE(job.AddInputDir("/in").ok());
      job.set_map([](const std::string& record,
                     dataflow::Emitter* emitter) -> Status {
        size_t space = record.find(' ');
        emitter->Emit(record.substr(0, space), record.substr(space + 1));
        return Status::OK();
      });
      if (with_reduce) {
        job.set_reduce([](const std::string& key,
                          const std::vector<std::string>& values,
                          dataflow::Emitter* emitter) -> Status {
          std::string joined = key + "=";
          for (const auto& v : values) joined += v + "|";
          emitter->Emit(key, joined);
          return Status::OK();
        });
      }
      auto result = job.Run();
      EXPECT_TRUE(result.ok());
      return *result;
    };
    auto serial = run(nullptr);
    for (int threads : {2, 5}) {
      exec::ExecOptions opts;
      opts.threads = threads;
      exec::Executor executor(opts);
      EXPECT_EQ(run(&executor), serial)
          << "seed=" << GetParam() << " iter=" << iter
          << " threads=" << threads << " reduce=" << with_reduce;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapReducePropertyTest,
                         ::testing::Values(5u, 55u, 555u));

// ---------------------------------------------------------------------------
// Relation operators: serial and parallel runs must agree on random
// relations — including the floating-point SUM aggregate, which the
// hash-partitioned GroupBy keeps bit-identical by never reassociating
// per-group accumulation.

class RelationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

dataflow::Relation RandomRelation(Rng& rng, size_t rows) {
  dataflow::Relation rel({"id", "grp", "score", "tag"});
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(rel.AddRow({dataflow::Value::Int(static_cast<int64_t>(i)),
                            dataflow::Value::Int(static_cast<int64_t>(
                                rng.Uniform(9))),
                            dataflow::Value::Real(rng.NextDouble() * 100),
                            dataflow::Value::Str(
                                "t" + std::to_string(rng.Uniform(4)))})
                    .ok());
  }
  return rel;
}

TEST_P(RelationPropertyTest, OperatorsMatchSerialAtAnyThreadCount) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 5; ++iter) {
    dataflow::Relation rel = RandomRelation(rng, 50 + rng.Uniform(300));
    dataflow::Relation right = RandomRelation(rng, 30);

    auto serial_filter =
        rel.Filter([](const dataflow::Row& r) { return r[1].int_value() < 5; });
    auto serial_project = rel.Project({"grp", "score"}).value();
    auto serial_with = rel.WithColumn("doubled", [](const dataflow::Row& r) {
                            return dataflow::Value::Real(r[2].AsNumber() * 2);
                          }).value();
    std::vector<dataflow::Aggregate> aggs{
        {dataflow::Aggregate::Op::kCount, "", "n"},
        {dataflow::Aggregate::Op::kSum, "score", "total"},
        {dataflow::Aggregate::Op::kMin, "id", "first"},
        {dataflow::Aggregate::Op::kMax, "id", "last"},
        {dataflow::Aggregate::Op::kCountDistinct, "tag", "tags"}};
    auto serial_group = rel.GroupBy({"grp"}, aggs).value();
    auto serial_join = rel.Join(right, "grp", "grp").value();

    for (int threads : {2, 8}) {
      exec::ExecOptions opts;
      opts.threads = threads;
      opts.min_items_per_chunk = 8;
      exec::Executor executor(opts);
      EXPECT_EQ(rel.Filter([](const dataflow::Row& r) {
                     return r[1].int_value() < 5;
                   }, &executor).rows(),
                serial_filter.rows());
      EXPECT_EQ(rel.Project({"grp", "score"}, &executor).value().rows(),
                serial_project.rows());
      EXPECT_EQ(rel.WithColumn("doubled", [](const dataflow::Row& r) {
                     return dataflow::Value::Real(r[2].AsNumber() * 2);
                   }, &executor).value().rows(),
                serial_with.rows());
      auto par_group = rel.GroupBy({"grp"}, aggs, &executor).value();
      ASSERT_EQ(par_group.rows().size(), serial_group.rows().size());
      for (size_t i = 0; i < par_group.rows().size(); ++i) {
        // operator== on Value compares exact representations — the SUM
        // doubles must be bit-for-bit equal, not just close.
        EXPECT_EQ(par_group.rows()[i], serial_group.rows()[i])
            << "row " << i << " threads=" << threads;
      }
      EXPECT_EQ(rel.Join(right, "grp", "grp", &executor).value().rows(),
                serial_join.rows());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationPropertyTest,
                         ::testing::Values(6u, 66u, 666u));

// ---------------------------------------------------------------------------
// Columnar scan pushdown: on random events (empty details, multi-byte
// UTF-8 names, very long names) and random ScanSpecs, Scan() must equal
// read-everything-then-filter-then-project, and the group-parallel scan
// must reproduce it byte-for-byte at any thread count.

class ColumnarScanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

constexpr TimeMs kScanBase = 1345507200000;

events::ClientEvent RandomColumnarEvent(Rng& rng) {
  events::ClientEvent ev;
  ev.initiator = static_cast<events::EventInitiator>(rng.Uniform(4));
  switch (rng.Uniform(5)) {
    case 0:
      ev.event_name = "web:home:::tweet:click";
      break;
    case 1:
      ev.event_name = "api:timeline:fetch";
      break;
    case 2:  // multi-byte UTF-8 components
      ev.event_name = "web:día:ツイート:impression" +
                      std::to_string(rng.Uniform(3));
      break;
    case 3:  // pathologically long name
      ev.event_name = "web:" + std::string(240, 'x') + ":click";
      break;
    default:
      ev.event_name = "web:home:::tweet:action" + std::to_string(rng.Uniform(7));
      break;
  }
  ev.user_id = static_cast<int64_t>(rng.Uniform(40));
  ev.session_id = "s" + std::to_string(rng.Uniform(20));
  ev.ip = "10.0." + std::to_string(rng.Uniform(4)) + "." +
          std::to_string(rng.Uniform(200));
  ev.timestamp = kScanBase + static_cast<TimeMs>(rng.Uniform(3600000));
  size_t details = rng.Uniform(3);  // 0 (common), 1, or 2 pairs
  for (size_t d = 0; d < details; ++d) {
    ev.details.push_back({"k" + std::to_string(d),
                          "vé" + std::to_string(rng.Uniform(10))});
  }
  return ev;
}

columnar::ScanSpec RandomScanSpec(Rng& rng) {
  columnar::ScanSpec spec;
  // Random projection (always at least one column).
  spec.columns = static_cast<columnar::ColumnMask>(
      1 + rng.Uniform(columnar::kAllColumns));
  if (rng.Uniform(2) == 0) {
    TimeMs lo = kScanBase + static_cast<TimeMs>(rng.Uniform(3600000));
    TimeMs hi = kScanBase + static_cast<TimeMs>(rng.Uniform(3600000));
    spec.min_timestamp = std::min(lo, hi);
    spec.max_timestamp = std::max(lo, hi);
  }
  if (rng.Uniform(3) == 0) {
    std::set<std::string> names;
    names.insert("web:home:::tweet:click");
    if (rng.Uniform(2) == 0) names.insert("api:timeline:fetch");
    if (rng.Uniform(2) == 0) {
      names.insert("web:home:::tweet:action" + std::to_string(rng.Uniform(7)));
    }
    spec.event_names = std::move(names);
  }
  if (rng.Uniform(3) == 0) {
    static const char* kPatterns[] = {"*:click", "web:*", "*fetch",
                                      "web:día:*", "*:action?"};
    spec.event_name_patterns.push_back(kPatterns[rng.Uniform(5)]);
  }
  if (rng.Uniform(4) == 0) {
    std::set<int64_t> ids;
    size_t n = 1 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      ids.insert(static_cast<int64_t>(rng.Uniform(40)));
    }
    spec.user_ids = std::move(ids);
  }
  return spec;
}

// Copies only the masked fields (what a projection scan materializes).
events::ClientEvent ApplyMask(const events::ClientEvent& ev,
                              columnar::ColumnMask mask) {
  using columnar::ColumnBit;
  using columnar::EventColumn;
  events::ClientEvent out;
  if (mask & ColumnBit(EventColumn::kInitiator)) out.initiator = ev.initiator;
  if (mask & ColumnBit(EventColumn::kEventName)) out.event_name = ev.event_name;
  if (mask & ColumnBit(EventColumn::kUserId)) out.user_id = ev.user_id;
  if (mask & ColumnBit(EventColumn::kSessionId)) out.session_id = ev.session_id;
  if (mask & ColumnBit(EventColumn::kIp)) out.ip = ev.ip;
  if (mask & ColumnBit(EventColumn::kTimestamp)) out.timestamp = ev.timestamp;
  if (mask & ColumnBit(EventColumn::kDetails)) out.details = ev.details;
  return out;
}

bool ReferencePasses(const events::ClientEvent& ev,
                     const columnar::ScanSpec& spec) {
  if (spec.min_timestamp && ev.timestamp < *spec.min_timestamp) return false;
  if (spec.max_timestamp && ev.timestamp > *spec.max_timestamp) return false;
  if (spec.event_names && !spec.event_names->count(ev.event_name)) return false;
  for (const auto& pattern : spec.event_name_patterns) {
    if (!events::EventPattern(pattern).Matches(ev.event_name)) return false;
  }
  if (spec.user_ids && !spec.user_ids->count(ev.user_id)) return false;
  return true;
}

TEST_P(ColumnarScanPropertyTest, PushdownEqualsFullScanThenFilter) {
  Rng rng(GetParam());
  const size_t kGroupSizes[] = {1, 7, 64};
  for (int iter = 0; iter < 4; ++iter) {
    size_t n = rng.Uniform(300);
    std::vector<events::ClientEvent> events;
    for (size_t i = 0; i < n; ++i) events.push_back(RandomColumnarEvent(rng));

    size_t rows_per_group = kGroupSizes[rng.Uniform(3)];
    std::string body;
    columnar::RcFileWriter writer(&body, rows_per_group);
    for (const auto& ev : events) ASSERT_TRUE(writer.Add(ev).ok());
    ASSERT_TRUE(writer.Finish().ok());

    // Round trip at this group size.
    {
      columnar::RcFileReader reader(body);
      std::vector<events::ClientEvent> back;
      ASSERT_TRUE(reader.ReadAll(columnar::kAllColumns, &back).ok());
      ASSERT_EQ(back, events) << "rows_per_group=" << rows_per_group;
    }

    for (int s = 0; s < 5; ++s) {
      columnar::ScanSpec spec = RandomScanSpec(rng);

      std::vector<events::ClientEvent> want;
      for (const auto& ev : events) {
        if (ReferencePasses(ev, spec)) want.push_back(ApplyMask(ev, spec.columns));
      }

      columnar::RcFileReader reader(body);
      std::vector<events::ClientEvent> got;
      columnar::ScanStats stats;
      ASSERT_TRUE(reader.Scan(spec, &got, &stats).ok());
      ASSERT_EQ(got, want) << "iter=" << iter << " spec=" << s;
      EXPECT_EQ(stats.rows_returned, want.size());
      EXPECT_EQ(stats.rows_pruned + stats.rows_returned, events.size());

      auto groups = reader.IndexGroups();
      ASSERT_TRUE(groups.ok());
      for (int threads : {2, 8}) {
        exec::ExecOptions opts;
        opts.threads = threads;
        exec::Executor executor(opts);
        std::vector<std::vector<events::ClientEvent>> slots(groups->size());
        ASSERT_TRUE(executor
                        .ParallelForStatus(
                            "scan", groups->size(),
                            [&](size_t g) {
                              return reader.ScanGroup((*groups)[g], spec,
                                                      &slots[g], nullptr);
                            })
                        .ok());
        std::vector<events::ClientEvent> merged;
        for (const auto& slot : slots) {
          merged.insert(merged.end(), slot.begin(), slot.end());
        }
        ASSERT_EQ(merged, got) << "threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarScanPropertyTest,
                         ::testing::Values(7u, 77u, 777u));

// ---------------------------------------------------------------------------
// Shared-scan spec merging: scanning once under MergeScanSpecs and
// re-filtering per member must equal each member's direct scan.

TEST_P(ColumnarScanPropertyTest, MergedSpecScanPlusResidualEqualsDirectScan) {
  Rng rng(GetParam() * 1311);
  for (int iter = 0; iter < 4; ++iter) {
    size_t n = 50 + rng.Uniform(250);
    std::vector<events::ClientEvent> events;
    for (size_t i = 0; i < n; ++i) events.push_back(RandomColumnarEvent(rng));
    std::string body;
    columnar::RcFileWriter writer(&body, 1 + rng.Uniform(40));
    for (const auto& ev : events) ASSERT_TRUE(writer.Add(ev).ok());
    ASSERT_TRUE(writer.Finish().ok());

    size_t members = 2 + rng.Uniform(3);
    std::vector<columnar::ScanSpec> specs;
    for (size_t m = 0; m < members; ++m) specs.push_back(RandomScanSpec(rng));
    columnar::ScanSpec merged = dataflow::MergeScanSpecs(specs);

    columnar::RcFileReader reader(body);
    std::vector<events::ClientEvent> union_rows;
    ASSERT_TRUE(reader.Scan(merged, &union_rows, nullptr).ok());

    for (size_t m = 0; m < members; ++m) {
      // Direct scan under the member's own spec.
      columnar::RcFileReader direct(body);
      std::vector<events::ClientEvent> want;
      ASSERT_TRUE(direct.Scan(specs[m], &want, nullptr).ok());

      // Union rows re-tightened by the member's row matcher, projected to
      // the member's column mask.
      columnar::RowMatcher matcher(specs[m]);
      std::vector<events::ClientEvent> got;
      for (const auto& ev : union_rows) {
        if (matcher.Matches(ev)) got.push_back(ApplyMask(ev, specs[m].columns));
      }
      ASSERT_EQ(got, want) << "iter=" << iter << " member=" << m;
    }
  }
}

// ---------------------------------------------------------------------------
// Oink memoization: randomized workloads must produce byte-identical
// results cold, warm (cache hit), shared-scan, and at any thread count.

class OinkMemoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

oink::WorkflowSpec RandomWorkflow(Rng& rng, const std::string& name,
                                  const std::string& dir) {
  oink::WorkflowSpec wf;
  wf.name = name;
  wf.input_dir = [dir](int64_t) { return dir; };
  size_t nfilters = rng.Uniform(3);
  for (size_t f = 0; f < nfilters; ++f) {
    switch (rng.Uniform(6)) {
      case 0: {
        TimeMs lo = kScanBase + static_cast<TimeMs>(rng.Uniform(3600000));
        wf.filters.push_back({"timestamp", rng.Uniform(2) == 0 ? ">=" : ">",
                              dataflow::Value::Int(lo)});
        break;
      }
      case 1: {
        TimeMs hi = kScanBase + static_cast<TimeMs>(rng.Uniform(3600000));
        wf.filters.push_back({"timestamp", rng.Uniform(2) == 0 ? "<=" : "<",
                              dataflow::Value::Int(hi)});
        break;
      }
      case 2:
        wf.filters.push_back(
            {"event_name", "==",
             dataflow::Value::Str(rng.Uniform(2) == 0
                                      ? "web:home:::tweet:click"
                                      : "api:timeline:fetch")});
        break;
      case 3:
        wf.filters.push_back({"event_name", "matches",
                              dataflow::Value::Str(rng.Uniform(2) == 0
                                                       ? "web:*"
                                                       : "*:click")});
        break;
      case 4:  // residual: string equality on a non-indexed column
        wf.filters.push_back(
            {"session_id", "==",
             dataflow::Value::Str("s" + std::to_string(rng.Uniform(20)))});
        break;
      default:  // residual: != never fuses
        wf.filters.push_back(
            {"user_id", "!=",
             dataflow::Value::Int(static_cast<int64_t>(rng.Uniform(40)))});
        break;
    }
  }
  if (rng.Uniform(2) == 0) {
    wf.project_cols = {"event_name", "user_id"};
    wf.project_names = {"name", "uid"};
    if (rng.Uniform(2) == 0) {
      wf.stage = [](const dataflow::Relation& r) {
        return r.GroupBy({"name"},
                         {dataflow::Aggregate{
                             dataflow::Aggregate::Op::kCount, "", "n"}});
      };
      wf.stage_id = "count-by-name-v1";
    }
  }
  return wf;
}

TEST_P(OinkMemoPropertyTest, ColdWarmSharedAndParallelAllAgree) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2; ++iter) {
    hdfs::MiniHdfs fs;
    const std::string dir = "/warehouse/client_events/h0";
    // 1-2 columnar parts and sometimes a legacy framed part.
    size_t parts = 1 + rng.Uniform(2);
    for (size_t p = 0; p < parts; ++p) {
      std::string body;
      columnar::RcFileWriter writer(&body, 1 + rng.Uniform(32));
      size_t n = 30 + rng.Uniform(200);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(writer.Add(RandomColumnarEvent(rng)).ok());
      }
      ASSERT_TRUE(writer.Finish().ok());
      ASSERT_TRUE(
          fs.WriteFile(dir + "/part-0000" + std::to_string(p), body).ok());
    }
    if (rng.Uniform(2) == 0) {
      std::string legacy;
      events::ClientEventWriter w(&legacy);
      size_t n = 10 + rng.Uniform(60);
      for (size_t i = 0; i < n; ++i) w.Add(RandomColumnarEvent(rng));
      ASSERT_TRUE(fs.WriteFile(dir + "/part-legacy", Lz::Compress(legacy)).ok());
    }

    size_t nwf = 2 + rng.Uniform(3);
    std::vector<oink::WorkflowSpec> wfs;
    for (size_t w = 0; w < nwf; ++w) {
      wfs.push_back(RandomWorkflow(rng, "wf" + std::to_string(w), dir));
    }

    // Reference: serial, no cache, no sharing.
    std::vector<std::string> want(nwf);
    {
      oink::OinkOptions options;
      options.enable_cache = false;
      options.enable_shared_scans = false;
      oink::WorkflowEngine ref(&fs, options);
      for (const auto& wf : wfs) ASSERT_TRUE(ref.AddWorkflow(wf).ok());
      ASSERT_TRUE(ref.RunTick(0).ok());
      for (size_t w = 0; w < nwf; ++w) {
        auto rel = ref.ResultFor(wfs[w].name);
        ASSERT_TRUE(rel.ok());
        want[w] = dataflow::SerializeRelation(*rel);
      }
    }

    auto check = [&](oink::WorkflowEngine& engine, const std::string& what) {
      for (size_t w = 0; w < nwf; ++w) {
        auto rel = engine.ResultFor(wfs[w].name);
        ASSERT_TRUE(rel.ok()) << what;
        EXPECT_EQ(dataflow::SerializeRelation(*rel), want[w])
            << what << " wf=" << w << " seed=" << GetParam();
      }
    };

    for (int threads : {0, 2, 8}) {
      std::unique_ptr<exec::Executor> executor;
      if (threads > 0) {
        exec::ExecOptions eo;
        eo.threads = threads;
        executor = std::make_unique<exec::Executor>(eo);
      }
      oink::WorkflowEngine engine(&fs, oink::OinkOptions{}, nullptr,
                                  executor.get());
      for (const auto& wf : wfs) ASSERT_TRUE(engine.AddWorkflow(wf).ok());
      // Cold (shared scan when >1 distinct plan)...
      ASSERT_TRUE(engine.RunTick(0).ok());
      check(engine, "cold threads=" + std::to_string(threads));
      // ...then warm from cache.
      ASSERT_TRUE(engine.RunTick(0).ok());
      EXPECT_EQ(engine.last_tick().scan_bytes_decompressed, 0u);
      check(engine, "warm threads=" + std::to_string(threads));
      // Drop the cache dir so the next thread count starts cold again.
      if (fs.Exists("/warehouse/_cache")) {
        ASSERT_TRUE(fs.Delete("/warehouse/_cache", true).ok());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OinkMemoPropertyTest,
                         ::testing::Values(11u, 211u, 3111u));

// ---------------------------------------------------------------------------
// Vectorized batch engine: on random relations (mixed-type columns,
// dictionary-overflow strings, empty inputs) and random operator
// pipelines, batch execution must be byte-identical to the row engine,
// serially and at any thread count — including identical Status failures
// for SUM over non-numeric columns.

class VectorEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

dataflow::Relation RandomVectorRelation(Rng& rng, size_t rows) {
  dataflow::Relation rel({"i", "r", "b", "s", "w", "m"});
  bool mixed_has_strings = rng.Uniform(2) == 0;
  for (size_t n = 0; n < rows; ++n) {
    dataflow::Value mixed;
    switch (rng.Uniform(mixed_has_strings ? 3 : 2)) {
      case 0:
        mixed = dataflow::Value::Int(static_cast<int64_t>(rng.Uniform(50)));
        break;
      case 1:
        mixed = dataflow::Value::Real(rng.NextDouble() * 10);
        break;
      default:
        mixed = dataflow::Value::Str("x" + std::to_string(rng.Uniform(5)));
        break;
    }
    EXPECT_TRUE(
        rel.AddRow(
               {dataflow::Value::Int(static_cast<int64_t>(rng.Uniform(40))),
                dataflow::Value::Real(rng.NextDouble() * 200 - 100),
                dataflow::Value::Bool(rng.Uniform(2) == 0),
                dataflow::Value::Str("tag" + std::to_string(rng.Uniform(6))),
                // ~400 distinct values: overflows kMaxDictEntries, so
                // batches fall back to plain string columns.
                dataflow::Value::Str("wide" + std::to_string(rng.Uniform(400))),
                mixed})
            .ok());
  }
  return rel;
}

dataflow::FilterExpr RandomFilterExpr(Rng& rng) {
  static const char* kOps[] = {"==", "!=", "<", "<=", ">", ">="};
  switch (rng.Uniform(6)) {
    case 0:
      return {"i", kOps[rng.Uniform(6)],
              dataflow::Value::Int(static_cast<int64_t>(rng.Uniform(40)))};
    case 1:
      return {"r", kOps[rng.Uniform(6)],
              dataflow::Value::Real(rng.NextDouble() * 200 - 100)};
    case 2:
      return {"s", kOps[rng.Uniform(6)],
              dataflow::Value::Str("tag" + std::to_string(rng.Uniform(6)))};
    case 3:
      return {"s", "matches", dataflow::Value::Str("tag?")};
    case 4:  // type-mismatched literal: constant verdict, still must agree
      return {"i", kOps[rng.Uniform(6)],
              dataflow::Value::Str("zz" + std::to_string(rng.Uniform(3)))};
    default: {
      // Sometimes all-pass / none-pass predicates, so empty and full
      // selections are exercised.
      if (rng.Uniform(2) == 0) {
        return {"i", ">=", dataflow::Value::Int(-1)};
      }
      return {"i", "<", dataflow::Value::Int(-1000)};
    }
  }
}

TEST_P(VectorEnginePropertyTest, BatchEqualsRowEqualsParallelBatch) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    size_t rows = rng.Uniform(4) == 0 ? 0 : 1 + rng.Uniform(300);
    dataflow::Relation rel = RandomVectorRelation(rng, rows);
    size_t batch_rows = 1 + rng.Uniform(90);
    auto batch0 = dataflow::BatchRelation::FromRelation(rel, batch_rows);
    ASSERT_TRUE(batch0.ok());
    dataflow::BatchRelation batch = std::move(*batch0);

    // Random conjunctive filter prefix, applied to both engines.
    std::vector<dataflow::FilterExpr> exprs;
    size_t nf = rng.Uniform(3);
    for (size_t f = 0; f < nf; ++f) exprs.push_back(RandomFilterExpr(rng));
    dataflow::Relation row = rel;
    for (const auto& e : exprs) {
      size_t idx = row.ColumnIndex(e.column).value();
      row = row.Filter([&e, idx](const dataflow::Row& r) {
        return dataflow::EvalFilterOp(r[idx], e.op, e.literal);
      });
    }
    if (!exprs.empty()) {
      auto filtered = batch.Filter(exprs);
      ASSERT_TRUE(filtered.ok());
      batch = std::move(*filtered);
    }
    EXPECT_EQ(dataflow::SerializeRelation(batch.ToRelation().value()),
              dataflow::SerializeRelation(row))
        << "seed=" << GetParam() << " iter=" << iter;

    // Terminal operator: group-by (sometimes over the mixed column, where
    // both engines must either agree or fail identically) or a projection.
    if (rng.Uniform(3) != 0) {
      std::vector<std::string> keys =
          rng.Uniform(2) == 0 ? std::vector<std::string>{"s"}
                              : std::vector<std::string>{"i", "b"};
      std::string sum_col = rng.Uniform(4) == 0 ? "m" : "r";
      std::vector<dataflow::Aggregate> aggs{
          {dataflow::Aggregate::Op::kCount, "", "n"},
          {dataflow::Aggregate::Op::kSum, sum_col, "total"},
          {dataflow::Aggregate::Op::kCountDistinct, "w", "wide"}};
      auto want = row.GroupBy(keys, aggs);
      auto got = batch.GroupBy(keys, aggs);
      ASSERT_EQ(want.ok(), got.ok()) << "sum_col=" << sum_col;
      if (want.ok()) {
        EXPECT_EQ(dataflow::SerializeRelation(*got),
                  dataflow::SerializeRelation(*want));
      } else {
        EXPECT_EQ(got.status().ToString(), want.status().ToString());
      }
      for (int threads : {2, 8}) {
        exec::ExecOptions eo;
        eo.threads = threads;
        eo.min_items_per_chunk = 4;
        exec::Executor executor(eo);
        auto par = batch.GroupBy(keys, aggs, &executor);
        ASSERT_EQ(par.ok(), want.ok());
        if (want.ok()) {
          EXPECT_EQ(dataflow::SerializeRelation(*par),
                    dataflow::SerializeRelation(*want))
              << "threads=" << threads;
        }
      }
    } else {
      auto want = row.Project({"s", "r", "m"});
      auto got = batch.Project({"s", "r", "m"});
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(dataflow::SerializeRelation(got->ToRelation().value()),
                dataflow::SerializeRelation(*want));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorEnginePropertyTest,
                         ::testing::Values(17u, 177u, 1777u));

// ---------------------------------------------------------------------------
// Dictionary-domain predicates: filtering a dictionary column by comparing
// int32 codes against a precomputed verdict table must select exactly the
// rows the row engine's string comparisons select — including adversarial
// dictionaries: empty batches, single-code batches (every row one value),
// and literals absent from every dictionary (no code matches).

class DictDomainPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictDomainPropertyTest, CodeDomainFilterEqualsStringFilter) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    dataflow::Relation rel({"d", "v"});
    // Build the relation as consecutive "segments" sized exactly like the
    // batches FromRelation will cut, so each batch's dictionary shape is
    // controlled: single-code, mixed, or values no predicate mentions.
    size_t batch_rows = 1 + rng.Uniform(40);
    size_t segments = rng.Uniform(5);  // 0 => empty relation
    for (size_t seg = 0; seg < segments; ++seg) {
      switch (rng.Uniform(3)) {
        case 0: {  // single-code batch: one value repeated
          std::string only = "tag" + std::to_string(rng.Uniform(4));
          for (size_t i = 0; i < batch_rows; ++i) {
            ASSERT_TRUE(rel.AddRow({dataflow::Value::Str(only),
                                    dataflow::Value::Int(static_cast<int64_t>(
                                        rng.Uniform(100)))})
                            .ok());
          }
          break;
        }
        case 1:  // codes absent from any predicate literal
          for (size_t i = 0; i < batch_rows; ++i) {
            ASSERT_TRUE(
                rel.AddRow({dataflow::Value::Str(
                                "other" + std::to_string(rng.Uniform(3))),
                            dataflow::Value::Int(static_cast<int64_t>(
                                rng.Uniform(100)))})
                    .ok());
          }
          break;
        default:  // mixed dictionary
          for (size_t i = 0; i < batch_rows; ++i) {
            ASSERT_TRUE(
                rel.AddRow({dataflow::Value::Str(
                                "tag" + std::to_string(rng.Uniform(6))),
                            dataflow::Value::Int(static_cast<int64_t>(
                                rng.Uniform(100)))})
                    .ok());
          }
          break;
      }
    }
    auto batch0 = dataflow::BatchRelation::FromRelation(rel, batch_rows);
    ASSERT_TRUE(batch0.ok());

    // 1-3 conjuncts, all on the dictionary column so multi-conjunct
    // verdict merging is exercised; literals sometimes match nothing.
    std::vector<dataflow::FilterExpr> exprs;
    size_t nf = 1 + rng.Uniform(3);
    for (size_t f = 0; f < nf; ++f) {
      switch (rng.Uniform(4)) {
        case 0:
          exprs.push_back({"d", rng.Uniform(2) == 0 ? "==" : "!=",
                           dataflow::Value::Str(
                               "tag" + std::to_string(rng.Uniform(8)))});
          break;
        case 1:
          exprs.push_back({"d", "matches", dataflow::Value::Str("tag?")});
          break;
        case 2:  // matches nothing in any dictionary
          exprs.push_back(
              {"d", "==", dataflow::Value::Str("never-present")});
          break;
        default:
          exprs.push_back({"d", rng.Uniform(2) == 0 ? "<" : ">=",
                           dataflow::Value::Str(
                               "tag" + std::to_string(rng.Uniform(8)))});
          break;
      }
    }

    dataflow::Relation want = rel;
    for (const auto& e : exprs) {
      size_t idx = want.ColumnIndex(e.column).value();
      want = want.Filter([&e, idx](const dataflow::Row& r) {
        return dataflow::EvalFilterOp(r[idx], e.op, e.literal);
      });
    }

    dataflow::KernelStats ks;
    auto got = batch0->Filter(exprs, nullptr, &ks);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(dataflow::SerializeRelation(got->ToRelation().value()),
              dataflow::SerializeRelation(want))
        << "seed=" << GetParam() << " iter=" << iter;
    // Stats sanity: every dict-pruned row was an input row that did not
    // survive; counts never exceed the selected universe.
    EXPECT_EQ(ks.rows_in, rel.rows().size());
    EXPECT_EQ(ks.rows_out, want.rows().size());
    EXPECT_LE(ks.dict_domain_rows_pruned, ks.rows_in - ks.rows_out);

    // The fused pipeline must agree too, with identical group output.
    std::vector<dataflow::Aggregate> aggs{
        {dataflow::Aggregate::Op::kCount, "", "n"},
        {dataflow::Aggregate::Op::kSum, "v", "total"},
        {dataflow::Aggregate::Op::kCountDistinct, "d", "names"}};
    auto want_grouped = want.GroupBy({"d"}, aggs);
    ASSERT_TRUE(want_grouped.ok());
    auto fused = batch0->FilterGroupBy(exprs, {"d"}, aggs);
    ASSERT_TRUE(fused.ok());
    EXPECT_EQ(dataflow::SerializeRelation(*fused),
              dataflow::SerializeRelation(*want_grouped))
        << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictDomainPropertyTest,
                         ::testing::Values(23u, 223u, 2223u));

// ---------------------------------------------------------------------------
// Fused FilterGroupBy: on random relations and pipelines it must be
// byte-identical to Filter-then-GroupBy and to the row engine — including
// identical SUM-over-non-numeric failures — at any thread count and any
// morsel granularity.

class FusedPipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusedPipelinePropertyTest, FusedEqualsUnfusedEqualsRow) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 5; ++iter) {
    size_t rows = rng.Uniform(4) == 0 ? 0 : 1 + rng.Uniform(300);
    dataflow::Relation rel = RandomVectorRelation(rng, rows);
    size_t batch_rows = 1 + rng.Uniform(90);
    auto batch = dataflow::BatchRelation::FromRelation(rel, batch_rows);
    ASSERT_TRUE(batch.ok());

    std::vector<dataflow::FilterExpr> exprs;
    size_t nf = rng.Uniform(4);
    for (size_t f = 0; f < nf; ++f) exprs.push_back(RandomFilterExpr(rng));
    std::vector<std::string> keys =
        rng.Uniform(2) == 0 ? std::vector<std::string>{"s"}
                            : std::vector<std::string>{"i", "b"};
    std::string sum_col = rng.Uniform(4) == 0 ? "m" : "r";
    std::vector<dataflow::Aggregate> aggs{
        {dataflow::Aggregate::Op::kCount, "", "n"},
        {dataflow::Aggregate::Op::kSum, sum_col, "total"},
        {dataflow::Aggregate::Op::kCountDistinct, "w", "wide"}};

    dataflow::Relation row = rel;
    for (const auto& e : exprs) {
      size_t idx = row.ColumnIndex(e.column).value();
      row = row.Filter([&e, idx](const dataflow::Row& r) {
        return dataflow::EvalFilterOp(r[idx], e.op, e.literal);
      });
    }
    auto want = row.GroupBy(keys, aggs);

    auto unfused = [&]() -> Result<dataflow::Relation> {
      UNILOG_ASSIGN_OR_RETURN(dataflow::BatchRelation filtered,
                              batch->Filter(exprs));
      return filtered.GroupBy(keys, aggs);
    }();
    ASSERT_EQ(unfused.ok(), want.ok());

    auto fused = batch->FilterGroupBy(exprs, keys, aggs);
    ASSERT_EQ(fused.ok(), want.ok()) << "seed=" << GetParam();
    if (want.ok()) {
      EXPECT_EQ(dataflow::SerializeRelation(*fused),
                dataflow::SerializeRelation(*want))
          << "seed=" << GetParam() << " iter=" << iter;
      EXPECT_EQ(dataflow::SerializeRelation(*unfused),
                dataflow::SerializeRelation(*want));
    } else {
      EXPECT_EQ(fused.status().ToString(), want.status().ToString());
    }

    for (int threads : {2, 8}) {
      for (uint64_t morsel_bytes : {uint64_t{1}, uint64_t{1} << 12}) {
        exec::ExecOptions eo;
        eo.threads = threads;
        eo.min_items_per_chunk = 4;
        exec::Executor executor(eo);
        exec::MorselOptions mo;
        mo.morsel_bytes = morsel_bytes;
        auto par = batch->FilterGroupBy(exprs, keys, aggs, &executor,
                                        nullptr, mo);
        ASSERT_EQ(par.ok(), want.ok()) << "threads=" << threads;
        if (want.ok()) {
          EXPECT_EQ(dataflow::SerializeRelation(*par),
                    dataflow::SerializeRelation(*want))
              << "threads=" << threads << " morsel_bytes=" << morsel_bytes;
        } else {
          EXPECT_EQ(par.status().ToString(), want.status().ToString());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedPipelinePropertyTest,
                         ::testing::Values(29u, 229u, 2229u));

// ---------------------------------------------------------------------------
// Morsel-driven scans: the byte-weighted work-stealing scheduler must
// reproduce the serial scan byte-for-byte on random warehouses at any
// thread count and any morsel granularity, rows and batches alike.

class MorselScanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MorselScanPropertyTest, ParallelScanIsByteIdenticalAtAnyMorselSize) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2; ++iter) {
    hdfs::MiniHdfs fs;
    const std::string dir = "/warehouse/client_events/h0";
    size_t parts = 1 + rng.Uniform(3);
    for (size_t p = 0; p < parts; ++p) {
      std::string body;
      columnar::RcFileWriter writer(&body, 1 + rng.Uniform(32));
      size_t n = 20 + rng.Uniform(150);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(writer.Add(RandomColumnarEvent(rng)).ok());
      }
      ASSERT_TRUE(writer.Finish().ok());
      ASSERT_TRUE(
          fs.WriteFile(dir + "/part-0000" + std::to_string(p), body).ok());
    }
    if (rng.Uniform(2) == 0) {  // sometimes a legacy part in the mix
      std::string legacy;
      events::ClientEventWriter w(&legacy);
      size_t n = 10 + rng.Uniform(40);
      for (size_t i = 0; i < n; ++i) w.Add(RandomColumnarEvent(rng));
      ASSERT_TRUE(fs.WriteFile(dir + "/part-legacy", Lz::Compress(legacy)).ok());
    }

    // `base` never materializes, so every Clone() below starts with a
    // cold cache — the parallel runs really re-scan.
    auto opened = dataflow::ColumnarEventScan::Open(&fs, dir);
    ASSERT_TRUE(opened.ok());
    auto base = *opened;
    if (rng.Uniform(2) == 0) {
      ASSERT_TRUE(base->PushFilter("event_name", "matches",
                                   dataflow::Value::Str("web:*")));
    }
    auto serial_rel =
        std::static_pointer_cast<dataflow::ColumnarEventScan>(base->Clone())
            ->Materialize(nullptr);
    ASSERT_TRUE(serial_rel.ok());
    const std::string want = dataflow::SerializeRelation(*serial_rel);

    for (int threads : {2, 8}) {
      for (uint64_t morsel_bytes :
           {uint64_t{1}, uint64_t{1} << 10, uint64_t{1} << 24}) {
        exec::ExecOptions eo;
        eo.threads = threads;
        exec::Executor executor(eo);
        exec::MorselOptions mo;
        mo.morsel_bytes = morsel_bytes;
        auto scan = std::static_pointer_cast<dataflow::ColumnarEventScan>(
            base->Clone());
        scan->set_morsel_options(mo);
        auto rel = scan->Materialize(&executor);
        ASSERT_TRUE(rel.ok());
        EXPECT_EQ(dataflow::SerializeRelation(*rel), want)
            << "threads=" << threads << " morsel_bytes=" << morsel_bytes;

        auto batch_scan = std::static_pointer_cast<dataflow::ColumnarEventScan>(
            base->Clone());
        batch_scan->set_morsel_options(mo);
        auto batches = batch_scan->MaterializeBatches(&executor);
        ASSERT_TRUE(batches.ok());
        EXPECT_EQ(
            dataflow::SerializeRelation(batches->ToRelation().value()), want)
            << "threads=" << threads << " morsel_bytes=" << morsel_bytes;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorselScanPropertyTest,
                         ::testing::Values(31u, 231u, 2231u));

// ---------------------------------------------------------------------------
// Planner neutrality: permuting a workflow's filter clauses never changes
// its canonical plan (so fingerprint-keyed cache entries written under one
// ordering HIT under any other) nor its answers, with the planner on or
// off.

class PlannerReorderPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PlannerReorderPropertyTest, FilterPermutationsShareFingerprintAndHits) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 3; ++iter) {
    hdfs::MiniHdfs fs;
    const std::string dir = "/warehouse/client_events/h0";
    std::string body;
    columnar::RcFileWriter writer(&body, 1 + rng.Uniform(40));
    size_t n = 50 + rng.Uniform(250);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(writer.Add(RandomColumnarEvent(rng)).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
    ASSERT_TRUE(fs.WriteFile(dir + "/part-00000", body).ok());

    oink::WorkflowSpec wf = RandomWorkflow(rng, "wf", dir);
    while (wf.filters.size() < 2) {
      wf.filters.push_back(
          {"user_id", "!=",
           dataflow::Value::Int(static_cast<int64_t>(rng.Uniform(40)))});
    }
    oink::WorkflowSpec permuted = wf;
    for (size_t i = permuted.filters.size(); i > 1; --i) {
      std::swap(permuted.filters[i - 1], permuted.filters[rng.Uniform(i)]);
    }

    // Engine A runs the original ordering cold and fills the cache.
    oink::WorkflowEngine a(&fs, oink::OinkOptions{});
    ASSERT_TRUE(a.AddWorkflow(wf).ok());
    ASSERT_TRUE(a.RunTick(0).ok());
    ASSERT_EQ(a.last_tick().cache_misses, 1u);
    std::string want =
        dataflow::SerializeRelation(a.ResultFor("wf").value());

    // Engine B registers the permutation: same canonical plan, and its
    // first tick is served entirely from A's cache entry.
    oink::WorkflowEngine b(&fs, oink::OinkOptions{});
    ASSERT_TRUE(b.AddWorkflow(permuted).ok());
    EXPECT_EQ(b.CanonicalPlanFor("wf").value(),
              a.CanonicalPlanFor("wf").value())
        << "seed=" << GetParam() << " iter=" << iter;
    ASSERT_TRUE(b.RunTick(0).ok());
    EXPECT_EQ(b.last_tick().cache_hits, 1u);
    EXPECT_EQ(b.last_tick().scan_bytes_decompressed, 0u);
    EXPECT_EQ(dataflow::SerializeRelation(b.ResultFor("wf").value()), want);

    // Planner off, cache off, row engine: same bytes.
    oink::OinkOptions raw;
    raw.enable_cache = false;
    raw.enable_planner = false;
    raw.use_batch_engine = rng.Uniform(2) == 0;
    oink::WorkflowEngine c(&fs, raw);
    ASSERT_TRUE(c.AddWorkflow(permuted).ok());
    ASSERT_TRUE(c.RunTick(0).ok());
    EXPECT_EQ(dataflow::SerializeRelation(c.ResultFor("wf").value()), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerReorderPropertyTest,
                         ::testing::Values(23u, 233u, 2333u));

// ---------------------------------------------------------------------------
// Cache artifact fuzzing: truncations and bit flips must read back as a
// clean miss (entry dropped) — never a crash, never different bytes.

class ArtifactFuzzPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArtifactFuzzPropertyTest, MutatedArtifactsNeverServeWrongBytes) {
  Rng rng(GetParam());
  hdfs::MiniHdfs fs;
  const std::string path = "/warehouse/_cache/k.okc";
  oink::CacheArtifact artifact;
  artifact.manifest = "manifest-v1\n/x szmt:1:2\n";
  artifact.cold_cost_bytes = 12345;
  artifact.payload = RandomBuffer(rng);
  {
    oink::ArtifactCache cache(&fs);
    ASSERT_TRUE(cache.Put("k", artifact).ok());
  }
  auto raw = fs.ReadFile(path);
  ASSERT_TRUE(raw.ok());

  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = *raw;
    switch (rng.Uniform(4)) {
      case 0:  // truncate
        mutated.resize(rng.Uniform(mutated.size()));
        break;
      case 1: {  // flip one bit
        size_t pos = rng.Uniform(mutated.size());
        mutated[pos] ^= static_cast<char>(1u << rng.Uniform(8));
        break;
      }
      case 2:  // insert a byte
        mutated.insert(mutated.begin() + rng.Uniform(mutated.size() + 1),
                       static_cast<char>(rng.Next64() & 0xff));
        break;
      default:  // delete a byte
        mutated.erase(mutated.begin() + rng.Uniform(mutated.size()));
        break;
    }
    if (fs.Exists(path)) {
      ASSERT_TRUE(fs.Delete(path).ok());
    }
    ASSERT_TRUE(fs.WriteFile(path, mutated).ok());

    oink::ArtifactCache cache(&fs);  // fresh index, reads from disk
    auto got = cache.Get("k", artifact.manifest);
    if (got.ok()) {
      // Only acceptable if the mutation left the artifact semantically
      // intact (e.g. flip inside unused varint headroom) — bytes must be
      // EXACTLY the original payload.
      EXPECT_EQ(got->payload, artifact.payload) << "trial=" << trial;
      EXPECT_EQ(got->manifest, artifact.manifest);
    } else {
      EXPECT_TRUE(got.status().IsNotFound())
          << "trial=" << trial << " " << got.status().ToString();
      // The poisoned entry was dropped, not left to flap.
      EXPECT_FALSE(fs.Exists(path)) << "trial=" << trial;
    }
  }
}

TEST_P(ArtifactFuzzPropertyTest, LzDecompressNeverCrashesOnMutatedBlocks) {
  Rng rng(GetParam() * 7919);
  for (int trial = 0; trial < 100; ++trial) {
    std::string block = Lz::Compress(RandomBuffer(rng));
    switch (rng.Uniform(3)) {
      case 0:
        block.resize(rng.Uniform(block.size() + 1));
        break;
      case 1: {
        if (!block.empty()) {
          block[rng.Uniform(block.size())] ^=
              static_cast<char>(1u << rng.Uniform(8));
        }
        break;
      }
      default: {
        size_t extra = 1 + rng.Uniform(8);
        for (size_t i = 0; i < extra; ++i) {
          block.push_back(static_cast<char>(rng.Next64() & 0xff));
        }
        break;
      }
    }
    // Must return OK or an error — never crash, hang, or overallocate.
    Result<std::string> out = Lz::Decompress(block);
    if (!out.ok()) {
      EXPECT_TRUE(out.status().IsCorruption()) << out.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArtifactFuzzPropertyTest,
                         ::testing::Values(3u, 33u, 333u));

}  // namespace
}  // namespace unilog
