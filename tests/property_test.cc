// Property-based sweeps over the codecs and core invariants: randomized
// LZ round-trips, random Thrift value round-trips, sessionizer partition
// invariants, glob-matching properties, and dictionary coding laws.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/compress.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/utf8.h"
#include "events/client_event.h"
#include "sessions/dictionary.h"
#include "sessions/sessionizer.h"
#include "thrift/compact_protocol.h"
#include "thrift/value.h"

namespace unilog {
namespace {

// ---------------------------------------------------------------------------
// LZ codec: random inputs of varied structure always round-trip.

class LzPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomBuffer(Rng& rng) {
  std::string data;
  size_t segments = 1 + rng.Uniform(20);
  for (size_t s = 0; s < segments; ++s) {
    switch (rng.Uniform(4)) {
      case 0: {  // random bytes
        size_t n = rng.Uniform(500);
        for (size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<char>(rng.Next64() & 0xFF));
        }
        break;
      }
      case 1: {  // run of one byte
        data.append(rng.Uniform(300), static_cast<char>(rng.Uniform(256)));
        break;
      }
      case 2: {  // repeated phrase
        std::string phrase = "event" + std::to_string(rng.Uniform(10)) + ":";
        size_t reps = rng.Uniform(100);
        for (size_t i = 0; i < reps; ++i) data += phrase;
        break;
      }
      default: {  // copy of an earlier window (long-range match)
        if (!data.empty()) {
          size_t start = rng.Uniform(data.size());
          size_t len = std::min<size_t>(rng.Uniform(200),
                                        data.size() - start);
          data += data.substr(start, len);
        }
        break;
      }
    }
  }
  return data;
}

TEST_P(LzPropertyTest, RoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    std::string data = RandomBuffer(rng);
    std::string compressed = Lz::Compress(data);
    auto back = Lz::Decompress(compressed);
    ASSERT_TRUE(back.ok()) << "seed=" << GetParam() << " iter=" << iter;
    ASSERT_EQ(*back, data) << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Thrift: randomly generated values round-trip through the compact
// protocol.

thrift::ThriftValue RandomValue(Rng& rng, int depth);

thrift::ThriftValue RandomScalar(Rng& rng) {
  switch (rng.Uniform(7)) {
    case 0:
      return thrift::ThriftValue::Bool(rng.Bernoulli(0.5));
    case 1:
      return thrift::ThriftValue::Byte(static_cast<int8_t>(rng.Next64()));
    case 2:
      return thrift::ThriftValue::I16(static_cast<int16_t>(rng.Next64()));
    case 3:
      return thrift::ThriftValue::I32(static_cast<int32_t>(rng.Next64()));
    case 4:
      return thrift::ThriftValue::I64(static_cast<int64_t>(rng.Next64()));
    case 5:
      return thrift::ThriftValue::Double(rng.NextDouble() * 1e6 - 5e5);
    default: {
      std::string s;
      size_t n = rng.Uniform(30);
      for (size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(rng.Next64() & 0xFF));
      }
      return thrift::ThriftValue::String(std::move(s));
    }
  }
}

thrift::ThriftValue RandomStruct(Rng& rng, int depth) {
  thrift::ThriftValue s = thrift::ThriftValue::Struct();
  size_t fields = rng.Uniform(6);
  int16_t id = 0;
  for (size_t f = 0; f < fields; ++f) {
    id = static_cast<int16_t>(id + 1 + rng.Uniform(30));
    s.SetField(id, RandomValue(rng, depth - 1));
  }
  return s;
}

thrift::ThriftValue RandomValue(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.5)) return RandomScalar(rng);
  switch (rng.Uniform(3)) {
    case 0:
      return RandomStruct(rng, depth);
    case 1: {
      thrift::ListData l;
      // Homogeneous element type required: sample one exemplar.
      thrift::ThriftValue exemplar = RandomScalar(rng);
      l.elem_type = exemplar.type();
      l.is_set = rng.Bernoulli(0.3);
      size_t n = rng.Uniform(5);
      for (size_t i = 0; i < n; ++i) {
        // Re-draw until the type matches the exemplar.
        thrift::ThriftValue v = RandomScalar(rng);
        while (v.type() != l.elem_type) v = RandomScalar(rng);
        l.elems.push_back(std::move(v));
      }
      return thrift::ThriftValue::List(std::move(l));
    }
    default: {
      thrift::MapData m;
      thrift::ThriftValue kx = RandomScalar(rng);
      thrift::ThriftValue vx = RandomScalar(rng);
      m.key_type = kx.type();
      m.value_type = vx.type();
      size_t n = rng.Uniform(4);
      for (size_t i = 0; i < n; ++i) {
        thrift::ThriftValue k = RandomScalar(rng);
        while (k.type() != m.key_type) k = RandomScalar(rng);
        thrift::ThriftValue v = RandomScalar(rng);
        while (v.type() != m.value_type) v = RandomScalar(rng);
        m.entries.emplace_back(std::move(k), std::move(v));
      }
      return thrift::ThriftValue::Map(std::move(m));
    }
  }
}

class ThriftPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThriftPropertyTest, RandomStructsRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    thrift::ThriftValue s = RandomStruct(rng, 3);
    std::string buf;
    ASSERT_TRUE(thrift::SerializeStruct(s, &buf).ok());
    auto parsed = thrift::ParseStruct(buf);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->Equals(s)) << "seed=" << GetParam()
                                   << " iter=" << iter << "\nvalue "
                                   << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThriftPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// ---------------------------------------------------------------------------
// Sessionizer invariants under random event streams.

class SessionizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionizerPropertyTest, PartitionInvariants) {
  Rng rng(GetParam());
  sessions::Sessionizer sessionizer;
  uint64_t total_events = 200 + rng.Uniform(300);
  TimeMs base = 1345507200000;
  for (uint64_t i = 0; i < total_events; ++i) {
    events::ClientEvent ev;
    ev.user_id = static_cast<int64_t>(rng.Uniform(10));
    ev.session_id = "s" + std::to_string(rng.Uniform(3));
    ev.event_name = "e" + std::to_string(rng.Uniform(5));
    ev.ip = "10.0.0.1";
    ev.timestamp = base + static_cast<TimeMs>(
                              rng.Uniform(6 * kMillisPerHour));
    sessionizer.Add(ev);
  }
  auto sessions = sessionizer.Build();

  // (1) Every event lands in exactly one session.
  uint64_t reconstructed = 0;
  for (const auto& s : sessions) reconstructed += s.event_names.size();
  EXPECT_EQ(reconstructed, total_events);

  // (2) Within a session: duration >= 0 and end - start <= events * gap.
  // (3) Sessions of the same (user, session id) are separated by > gap.
  std::map<std::pair<int64_t, std::string>, std::vector<const sessions::Session*>>
      by_group;
  for (const auto& s : sessions) {
    EXPECT_GE(s.end, s.start);
    by_group[{s.user_id, s.session_id}].push_back(&s);
  }
  for (auto& [key, group] : by_group) {
    std::sort(group.begin(), group.end(),
              [](const sessions::Session* a, const sessions::Session* b) {
                return a->start < b->start;
              });
    for (size_t i = 1; i < group.size(); ++i) {
      EXPECT_GT(group[i]->start - group[i - 1]->end, kSessionInactivityGapMs)
          << "sessions for the same key must be gap-separated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionizerPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Glob matching: agreement with a simple recursive reference.

bool ReferenceGlob(std::string_view p, std::string_view t) {
  if (p.empty()) return t.empty();
  if (p[0] == '*') {
    for (size_t skip = 0; skip <= t.size(); ++skip) {
      if (ReferenceGlob(p.substr(1), t.substr(skip))) return true;
    }
    return false;
  }
  if (t.empty() || p[0] != t[0]) return false;
  return ReferenceGlob(p.substr(1), t.substr(1));
}

class GlobPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobPropertyTest, AgreesWithReference) {
  Rng rng(GetParam());
  const char alphabet[] = "ab:*";
  for (int iter = 0; iter < 500; ++iter) {
    std::string pattern, text;
    size_t pn = rng.Uniform(8), tn = rng.Uniform(10);
    for (size_t i = 0; i < pn; ++i) {
      pattern.push_back(alphabet[rng.Uniform(4)]);
    }
    for (size_t i = 0; i < tn; ++i) {
      text.push_back(alphabet[rng.Uniform(3)]);  // no '*' in text
    }
    EXPECT_EQ(GlobMatch(pattern, text), ReferenceGlob(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobPropertyTest,
                         ::testing::Values(7u, 77u, 777u));

// ---------------------------------------------------------------------------
// Dictionary coding laws.

class DictionaryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryPropertyTest, EncodingIsBijectiveAndMonotone) {
  Rng rng(GetParam());
  // Random alphabet with random frequencies.
  std::vector<std::pair<std::string, uint64_t>> counts;
  size_t n = 50 + rng.Uniform(400);
  for (size_t i = 0; i < n; ++i) {
    counts.emplace_back("event_" + std::to_string(i), 1 + rng.Uniform(10000));
  }
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  auto dict = sessions::EventDictionary::FromSortedCounts(counts);
  ASSERT_TRUE(dict.ok());

  // Monotonicity: higher frequency rank → strictly smaller code point,
  // and every code point encodes to at most as many bytes as later ones.
  uint32_t prev_cp = 0;
  for (const auto& [name, count] : counts) {
    uint32_t cp = dict->CodePointFor(name).value();
    EXPECT_GT(cp, prev_cp);
    prev_cp = cp;
  }

  // Round trip random sessions.
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<std::string> names;
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      names.push_back(counts[rng.Uniform(counts.size())].first);
    }
    auto encoded = dict->EncodeNames(names);
    ASSERT_TRUE(encoded.ok());
    auto decoded = dict->DecodeToNames(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, names);
    EXPECT_EQ(Utf8Length(*encoded), names.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryPropertyTest,
                         ::testing::Values(9u, 99u, 999u));

}  // namespace
}  // namespace unilog
