// Tests for the unified metrics layer (obs/): registry handle identity,
// counter/gauge/histogram semantics, cross-label totals, and deterministic
// sim-clock-stamped reports.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"

namespace unilog::obs {
namespace {

constexpr TimeMs kT0 = 1345507200000;  // 2012-08-21 00:00 UTC

TEST(MetricsRegistryTest, CounterHandleIsStableAndMonotonic) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("daemon.entries_logged");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same (name, labels) → same handle.
  EXPECT_EQ(registry.GetCounter("daemon.entries_logged"), c);
}

TEST(MetricsRegistryTest, LabelsSeparateSeries) {
  MetricsRegistry registry;
  Counter* dc1 = registry.GetCounter("daemon.entries_logged", {{"dc", "dc1"}});
  Counter* dc2 = registry.GetCounter("daemon.entries_logged", {{"dc", "dc2"}});
  EXPECT_NE(dc1, dc2);
  dc1->Increment(3);
  dc2->Increment(4);
  EXPECT_EQ(dc1->value(), 3u);
  EXPECT_EQ(dc2->value(), 4u);
  // Label insertion order does not matter: Labels is a sorted map.
  Counter* both_a = registry.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter* both_b = registry.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(both_a, both_b);
}

TEST(MetricsRegistryTest, CounterTotalSumsAcrossLabelSets) {
  MetricsRegistry registry;
  registry.GetCounter("agg.entries_received", {{"id", "a0"}})->Increment(10);
  registry.GetCounter("agg.entries_received", {{"id", "a1"}})->Increment(5);
  registry.GetCounter("agg.entries_receivedX")->Increment(100);  // other name
  EXPECT_EQ(registry.CounterTotal("agg.entries_received"), 15u);
  EXPECT_EQ(registry.CounterTotal("absent"), 0u);
}

TEST(MetricsRegistryTest, GaugeMovesBothWays) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("daemon.queue_depth", {{"host", "h0"}});
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  registry.GetGauge("daemon.queue_depth", {{"host", "h1"}})->Set(5);
  EXPECT_EQ(registry.GaugeTotal("daemon.queue_depth"), 12);
}

TEST(MetricsRegistryTest, HistogramBucketsAndSummaryStats) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency", {}, {10, 100, 1000});
  h->Observe(5);     // bucket 0 (<=10)
  h->Observe(10);    // bucket 0 (bound is inclusive via lower_bound)
  h->Observe(50);    // bucket 1
  h->Observe(5000);  // overflow bucket
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 5065);
  EXPECT_DOUBLE_EQ(h->min(), 5);
  EXPECT_DOUBLE_EQ(h->max(), 5000);
  EXPECT_DOUBLE_EQ(h->mean(), 5065.0 / 4);
  ASSERT_EQ(h->bucket_counts().size(), 4u);
  EXPECT_EQ(h->bucket_counts()[0], 2u);
  EXPECT_EQ(h->bucket_counts()[1], 1u);
  EXPECT_EQ(h->bucket_counts()[2], 0u);
  EXPECT_EQ(h->bucket_counts()[3], 1u);
}

TEST(MetricsRegistryTest, DefaultBoundsStrictlyIncreasing) {
  std::vector<double> bounds = MetricsRegistry::DefaultBounds();
  ASSERT_GT(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, TextReportIsSortedAndSimStamped) {
  Simulator sim(kT0);
  MetricsRegistry registry(&sim);
  registry.GetCounter("b.second", {{"dc", "dc1"}})->Increment(2);
  registry.GetCounter("a.first")->Increment(1);
  registry.GetGauge("c.gauge")->Set(-5);
  sim.At(kT0 + 1234, [] {});
  sim.Run();

  std::string report = registry.TextReport();
  EXPECT_NE(report.find("# metrics @ " + std::to_string(kT0 + 1234)),
            std::string::npos);
  EXPECT_NE(report.find("2012-08-21"), std::string::npos);  // sim date
  EXPECT_NE(report.find("counter a.first 1\n"), std::string::npos);
  EXPECT_NE(report.find("counter b.second{dc=dc1} 2\n"), std::string::npos);
  EXPECT_NE(report.find("gauge c.gauge -5\n"), std::string::npos);
  // Sorted: a.first precedes b.second.
  EXPECT_LT(report.find("a.first"), report.find("b.second"));
  // Deterministic: rendering twice yields identical bytes.
  EXPECT_EQ(report, registry.TextReport());
}

TEST(MetricsRegistryTest, JsonReportRoundTrips) {
  Simulator sim(kT0);
  MetricsRegistry registry(&sim);
  registry.GetCounter("hdfs.bytes_written", {{"fs", "warehouse"}})
      ->Increment(1024);
  registry.GetGauge("hdfs.file_count", {{"fs", "warehouse"}})->Set(3);
  registry.GetHistogram("mover.warehouse_file_bytes")->Observe(512);

  Json report = registry.JsonReport();
  EXPECT_EQ(report["at_ms"].int_value(), kT0);
  EXPECT_EQ(report["counters"]["hdfs.bytes_written{fs=warehouse}"].int_value(),
            1024);
  EXPECT_EQ(report["gauges"]["hdfs.file_count{fs=warehouse}"].int_value(), 3);
  const Json& hist = report["histograms"]["mover.warehouse_file_bytes"];
  EXPECT_EQ(hist["count"].int_value(), 1);
  EXPECT_DOUBLE_EQ(hist["sum"].number_value(), 512);

  // Dump → Parse round trip stays intact (report is real JSON).
  auto parsed = Json::Parse(report.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), report.Dump());
}

TEST(MetricsRegistryTest, NullSimReportsTimeZero) {
  MetricsRegistry registry;
  EXPECT_NE(registry.TextReport().find("# metrics @ 0"), std::string::npos);
  EXPECT_EQ(registry.JsonReport()["at_ms"].int_value(), 0);
}

TEST(MetricsRegistryTest, MetricCountTracksDistinctSeries) {
  MetricsRegistry registry;
  registry.GetCounter("a");
  registry.GetCounter("a");  // same series
  registry.GetCounter("a", {{"k", "v"}});
  registry.GetGauge("b");
  registry.GetHistogram("c");
  EXPECT_EQ(registry.metric_count(), 4u);
}

}  // namespace
}  // namespace unilog::obs
