// Unit tests for the Thrift-style compact protocol, dynamic values, and
// struct schemas — including the schema-evolution behaviours the paper's
// logging format relies on (§3).

#include <gtest/gtest.h>

#include <string>

#include "thrift/compact_protocol.h"
#include "thrift/schema.h"
#include "thrift/value.h"

namespace unilog::thrift {
namespace {

ThriftValue MakeSampleEvent() {
  ThriftValue ev = ThriftValue::Struct();
  ev.SetField(1, ThriftValue::I32(2));  // event_initiator
  ev.SetField(2, ThriftValue::String(
                     "web:home:mentions:stream:avatar:profile_click"));
  ev.SetField(3, ThriftValue::I64(123456789));           // user_id
  ev.SetField(4, ThriftValue::String("sess-abc"));       // session_id
  ev.SetField(5, ThriftValue::String("10.20.30.40"));    // ip
  ev.SetField(6, ThriftValue::I64(1345507200000));       // timestamp
  MapData details;
  details.key_type = TType::kString;
  details.value_type = TType::kString;
  details.entries.emplace_back(ThriftValue::String("profile_id"),
                               ThriftValue::String("98765"));
  ev.SetField(7, ThriftValue::Map(std::move(details)));
  return ev;
}

// ---------------------------------------------------------------------------
// ThriftValue

TEST(ThriftValueTest, TypesAndAccessors) {
  EXPECT_EQ(ThriftValue::Bool(true).type(), TType::kBool);
  EXPECT_EQ(ThriftValue::Byte(1).type(), TType::kByte);
  EXPECT_EQ(ThriftValue::I16(1).type(), TType::kI16);
  EXPECT_EQ(ThriftValue::I32(1).type(), TType::kI32);
  EXPECT_EQ(ThriftValue::I64(1).type(), TType::kI64);
  EXPECT_EQ(ThriftValue::Double(1.5).type(), TType::kDouble);
  EXPECT_EQ(ThriftValue::String("x").type(), TType::kString);
  EXPECT_EQ(ThriftValue::Struct().type(), TType::kStruct);
  ListData set;
  set.is_set = true;
  EXPECT_EQ(ThriftValue::List(std::move(set)).type(), TType::kSet);
  EXPECT_EQ(ThriftValue::Map(MapData{}).type(), TType::kMap);
}

TEST(ThriftValueTest, AsI64WidensIntegerTypes) {
  EXPECT_EQ(ThriftValue::Byte(-5).AsI64().value(), -5);
  EXPECT_EQ(ThriftValue::I16(-300).AsI64().value(), -300);
  EXPECT_EQ(ThriftValue::I32(70000).AsI64().value(), 70000);
  EXPECT_EQ(ThriftValue::I64(1).AsI64().value(), 1);
  EXPECT_FALSE(ThriftValue::String("x").AsI64().ok());
  EXPECT_FALSE(ThriftValue::Double(1.0).AsI64().ok());
}

TEST(ThriftValueTest, FieldAccess) {
  ThriftValue s = MakeSampleEvent();
  ASSERT_NE(s.FindField(3), nullptr);
  EXPECT_EQ(s.FindField(3)->i64_value(), 123456789);
  EXPECT_EQ(s.FindField(99), nullptr);
  s.SetField(3, ThriftValue::I64(1));
  EXPECT_EQ(s.FindField(3)->i64_value(), 1);
}

TEST(ThriftValueTest, DeepEquality) {
  ThriftValue a = MakeSampleEvent();
  ThriftValue b = MakeSampleEvent();
  EXPECT_TRUE(a.Equals(b));
  b.SetField(3, ThriftValue::I64(0));
  EXPECT_FALSE(a.Equals(b));
  EXPECT_FALSE(ThriftValue::I32(1).Equals(ThriftValue::I64(1)));
}

TEST(ThriftValueTest, ToStringRendersNestedStructure) {
  ThriftValue s = ThriftValue::Struct();
  s.SetField(1, ThriftValue::String("hi"));
  s.SetField(2, ThriftValue::I32(5));
  EXPECT_EQ(s.ToString(), "{1: \"hi\", 2: 5}");
}

// ---------------------------------------------------------------------------
// Compact protocol round trips

TEST(CompactProtocolTest, PrimitiveFieldsRoundTrip) {
  ThriftValue s = ThriftValue::Struct();
  s.SetField(1, ThriftValue::Bool(true));
  s.SetField(2, ThriftValue::Bool(false));
  s.SetField(3, ThriftValue::Byte(-7));
  s.SetField(4, ThriftValue::I16(-12345));
  s.SetField(5, ThriftValue::I32(1 << 30));
  s.SetField(6, ThriftValue::I64(-(1ll << 60)));
  s.SetField(7, ThriftValue::Double(3.14159));
  s.SetField(8, ThriftValue::String("hello\0world"));

  std::string buf;
  ASSERT_TRUE(SerializeStruct(s, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Equals(s));
}

TEST(CompactProtocolTest, SampleEventRoundTrip) {
  ThriftValue ev = MakeSampleEvent();
  std::string buf;
  ASSERT_TRUE(SerializeStruct(ev, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(ev));
}

TEST(CompactProtocolTest, NestedStructsRoundTrip) {
  ThriftValue inner = ThriftValue::Struct();
  inner.SetField(1, ThriftValue::String("inner"));
  ThriftValue mid = ThriftValue::Struct();
  mid.SetField(1, inner);
  mid.SetField(2, ThriftValue::I32(5));
  ThriftValue outer = ThriftValue::Struct();
  outer.SetField(1, mid);
  outer.SetField(15, ThriftValue::String("after"));

  std::string buf;
  ASSERT_TRUE(SerializeStruct(outer, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(outer));
}

TEST(CompactProtocolTest, ListsAndSetsRoundTrip) {
  ListData longlist;
  longlist.elem_type = TType::kI64;
  for (int i = 0; i < 100; ++i) longlist.elems.push_back(ThriftValue::I64(i));
  ListData strset;
  strset.elem_type = TType::kString;
  strset.is_set = true;
  strset.elems.push_back(ThriftValue::String("a"));
  strset.elems.push_back(ThriftValue::String("b"));
  ListData bools;
  bools.elem_type = TType::kBool;
  bools.elems.push_back(ThriftValue::Bool(true));
  bools.elems.push_back(ThriftValue::Bool(false));

  ThriftValue s = ThriftValue::Struct();
  s.SetField(1, ThriftValue::List(std::move(longlist)));
  s.SetField(2, ThriftValue::List(std::move(strset)));
  s.SetField(3, ThriftValue::List(std::move(bools)));

  std::string buf;
  ASSERT_TRUE(SerializeStruct(s, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(s));
}

TEST(CompactProtocolTest, MapsRoundTrip) {
  MapData m;
  m.key_type = TType::kString;
  m.value_type = TType::kI32;
  m.entries.emplace_back(ThriftValue::String("x"), ThriftValue::I32(1));
  m.entries.emplace_back(ThriftValue::String("y"), ThriftValue::I32(2));
  ThriftValue s = ThriftValue::Struct();
  s.SetField(1, ThriftValue::Map(std::move(m)));
  s.SetField(2, ThriftValue::Map(MapData{}));  // empty map

  std::string buf;
  ASSERT_TRUE(SerializeStruct(s, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(s));
}

TEST(CompactProtocolTest, LargeFieldIdsUseLongForm) {
  ThriftValue s = ThriftValue::Struct();
  s.SetField(1, ThriftValue::I32(1));
  s.SetField(200, ThriftValue::I32(2));   // delta > 15 → long form
  s.SetField(32000, ThriftValue::I32(3));
  std::string buf;
  ASSERT_TRUE(SerializeStruct(s, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(s));
}

TEST(CompactProtocolTest, DeltaEncodingKeepsAdjacentFieldsToOneByteHeader) {
  // Two structs identical except for field ids: consecutive ids should
  // serialize smaller than widely-spaced ids.
  ThriftValue dense = ThriftValue::Struct();
  ThriftValue sparse = ThriftValue::Struct();
  for (int i = 0; i < 10; ++i) {
    dense.SetField(static_cast<int16_t>(i + 1), ThriftValue::I32(7));
    sparse.SetField(static_cast<int16_t>((i + 1) * 100), ThriftValue::I32(7));
  }
  std::string dbuf, sbuf;
  ASSERT_TRUE(SerializeStruct(dense, &dbuf).ok());
  ASSERT_TRUE(SerializeStruct(sparse, &sbuf).ok());
  EXPECT_LT(dbuf.size(), sbuf.size());
}

TEST(CompactProtocolTest, TrailingGarbageDetected) {
  std::string buf;
  ASSERT_TRUE(SerializeStruct(MakeSampleEvent(), &buf).ok());
  buf += "junk";
  EXPECT_FALSE(ParseStruct(buf).ok());
}

TEST(CompactProtocolTest, TruncatedStructDetected) {
  std::string buf;
  ASSERT_TRUE(SerializeStruct(MakeSampleEvent(), &buf).ok());
  for (size_t cut : {buf.size() - 1, buf.size() / 2, size_t{1}}) {
    EXPECT_FALSE(ParseStruct(std::string_view(buf).substr(0, cut)).ok())
        << "cut=" << cut;
  }
}

TEST(SerializerTest, AppendStructMatchesSerializeStruct) {
  ThriftValue ev = MakeSampleEvent();
  std::string fresh;
  ASSERT_TRUE(SerializeStruct(ev, &fresh).ok());
  Serializer ser;
  std::string reused;
  for (int i = 0; i < 3; ++i) {
    reused.clear();
    ASSERT_TRUE(ser.AppendStruct(ev, &reused).ok());
    EXPECT_EQ(reused, fresh) << "pass " << i;
  }
}

TEST(SerializerTest, AppendStructAppendsWithoutClobbering) {
  ThriftValue ev = MakeSampleEvent();
  std::string out = "prefix";
  Serializer ser;
  ASSERT_TRUE(ser.AppendStruct(ev, &out).ok());
  std::string fresh;
  ASSERT_TRUE(SerializeStruct(ev, &fresh).ok());
  EXPECT_EQ(out, "prefix" + fresh);
}

TEST(SerializerTest, ScratchReuseKeepsCapacity) {
  ThriftValue ev = MakeSampleEvent();
  Serializer ser;
  std::string framed;
  ASSERT_TRUE(SerializeStruct(ev, ser.scratch()).ok());
  ser.AppendFramedScratch(&framed);
  std::string* scratch = ser.scratch();  // clears, keeps capacity
  EXPECT_TRUE(scratch->empty());
  EXPECT_GT(scratch->capacity(), 0u);
  // A second framed append is byte-identical to the first record.
  std::string again;
  ASSERT_TRUE(SerializeStruct(ev, ser.scratch()).ok());
  ser.AppendFramedScratch(&again);
  EXPECT_EQ(again, framed);
}

TEST(SerializerTest, AppendStructRejectsNonStruct) {
  Serializer ser;
  std::string out = "keep";
  EXPECT_TRUE(ser.AppendStruct(ThriftValue::Bool(true), &out)
                  .IsInvalidArgument());
  EXPECT_EQ(out, "keep");  // untouched on error
}

TEST(CompactProtocolTest, SerializeRejectsNonStruct) {
  std::string buf;
  EXPECT_TRUE(SerializeStruct(ThriftValue::I32(1), &buf).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Schema evolution: old readers skip fields added by new writers.

TEST(SchemaEvolutionTest, UnknownFieldsSkippedByStreamingReader) {
  // "New producer" writes a struct with extra fields of every type.
  ThriftValue v2 = MakeSampleEvent();
  v2.SetField(8, ThriftValue::String("added-in-v2"));
  v2.SetField(9, ThriftValue::Double(2.5));
  ThriftValue nested = ThriftValue::Struct();
  nested.SetField(1, ThriftValue::I64(1));
  v2.SetField(10, nested);
  ListData extra_list;
  extra_list.elem_type = TType::kI32;
  extra_list.elems.push_back(ThriftValue::I32(1));
  v2.SetField(11, ThriftValue::List(std::move(extra_list)));
  v2.SetField(12, ThriftValue::Bool(true));

  std::string buf;
  ASSERT_TRUE(SerializeStruct(v2, &buf).ok());

  // "Old consumer" only understands fields 2 (event_name) and 3 (user_id);
  // it must read them and skip everything else without error.
  CompactReader r(buf);
  r.BeginStruct();
  std::string event_name;
  int64_t user_id = 0;
  while (true) {
    int16_t id;
    TType type;
    bool stop = false, bval = false;
    ASSERT_TRUE(r.ReadFieldHeader(&id, &type, &stop, &bval).ok());
    if (stop) break;
    if (id == 2 && type == TType::kString) {
      ASSERT_TRUE(r.ReadString(&event_name).ok());
    } else if (id == 3 && type == TType::kI64) {
      ASSERT_TRUE(r.ReadI64(&user_id).ok());
    } else {
      ASSERT_TRUE(r.SkipValue(type, /*from_field_header=*/true).ok())
          << "field " << id;
    }
  }
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(event_name, "web:home:mentions:stream:avatar:profile_click");
  EXPECT_EQ(user_id, 123456789);
}

TEST(SchemaEvolutionTest, DynamicParserPreservesUnknownFields) {
  ThriftValue v2 = MakeSampleEvent();
  v2.SetField(99, ThriftValue::String("forward-compat"));
  std::string buf;
  ASSERT_TRUE(SerializeStruct(v2, &buf).ok());
  auto parsed = ParseStruct(buf);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->FindField(99), nullptr);
  EXPECT_EQ(parsed->FindField(99)->string_value(), "forward-compat");
}

// ---------------------------------------------------------------------------
// StructSchema

StructSchema ClientEventSchema() {
  StructSchema s("client_event");
  EXPECT_TRUE(s.AddField({1, "event_initiator", TType::kI32, true}).ok());
  EXPECT_TRUE(s.AddField({2, "event_name", TType::kString, true}).ok());
  EXPECT_TRUE(s.AddField({3, "user_id", TType::kI64, true}).ok());
  EXPECT_TRUE(s.AddField({4, "session_id", TType::kString, true}).ok());
  EXPECT_TRUE(s.AddField({5, "ip", TType::kString, true}).ok());
  EXPECT_TRUE(s.AddField({6, "timestamp", TType::kI64, true}).ok());
  EXPECT_TRUE(s.AddField({7, "event_details", TType::kMap, false}).ok());
  return s;
}

TEST(SchemaTest, ValidatesConformingStruct) {
  StructSchema schema = ClientEventSchema();
  EXPECT_TRUE(schema.Validate(MakeSampleEvent()).ok());
}

TEST(SchemaTest, MissingRequiredFieldFails) {
  StructSchema schema = ClientEventSchema();
  ThriftValue ev = MakeSampleEvent();
  ev.mutable_struct().fields.erase(3);  // drop user_id
  Status st = schema.Validate(ev);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("user_id"), std::string::npos);
}

TEST(SchemaTest, WrongTypeFails) {
  StructSchema schema = ClientEventSchema();
  ThriftValue ev = MakeSampleEvent();
  ev.SetField(3, ThriftValue::String("not-an-int"));
  EXPECT_TRUE(schema.Validate(ev).IsInvalidArgument());
}

TEST(SchemaTest, UnknownFieldsAllowed) {
  StructSchema schema = ClientEventSchema();
  ThriftValue ev = MakeSampleEvent();
  ev.SetField(42, ThriftValue::String("extra"));
  EXPECT_TRUE(schema.Validate(ev).ok());
}

TEST(SchemaTest, MissingOptionalFieldAllowed) {
  StructSchema schema = ClientEventSchema();
  ThriftValue ev = MakeSampleEvent();
  ev.mutable_struct().fields.erase(7);  // event_details is optional
  EXPECT_TRUE(schema.Validate(ev).ok());
}

TEST(SchemaTest, DuplicateFieldRejected) {
  StructSchema s("x");
  ASSERT_TRUE(s.AddField({1, "a", TType::kI32, false}).ok());
  EXPECT_TRUE(s.AddField({1, "b", TType::kI32, false}).IsAlreadyExists());
  EXPECT_TRUE(s.AddField({2, "a", TType::kI32, false}).IsAlreadyExists());
  EXPECT_TRUE(s.AddField({0, "z", TType::kI32, false}).IsInvalidArgument());
  EXPECT_TRUE(s.AddField({-3, "w", TType::kI32, false}).IsInvalidArgument());
}

TEST(SchemaTest, LookupByIdAndName) {
  StructSchema schema = ClientEventSchema();
  ASSERT_NE(schema.FindField(2), nullptr);
  EXPECT_EQ(schema.FindField(2)->name, "event_name");
  ASSERT_NE(schema.FindFieldByName("ip"), nullptr);
  EXPECT_EQ(schema.FindFieldByName("ip")->id, 5);
  EXPECT_EQ(schema.FindField(100), nullptr);
  EXPECT_EQ(schema.FindFieldByName("nope"), nullptr);
}

TEST(SchemaTest, FieldsSortedById) {
  StructSchema s("x");
  ASSERT_TRUE(s.AddField({5, "e", TType::kI32, false}).ok());
  ASSERT_TRUE(s.AddField({1, "a", TType::kI32, false}).ok());
  ASSERT_TRUE(s.AddField({3, "c", TType::kI32, false}).ok());
  ASSERT_EQ(s.fields().size(), 3u);
  EXPECT_EQ(s.fields()[0].id, 1);
  EXPECT_EQ(s.fields()[1].id, 3);
  EXPECT_EQ(s.fields()[2].id, 5);
}

TEST(SchemaTest, ToIdlRendering) {
  StructSchema s("tiny");
  ASSERT_TRUE(s.AddField({1, "a", TType::kI64, true}).ok());
  std::string idl = s.ToIdl();
  EXPECT_NE(idl.find("struct tiny"), std::string::npos);
  EXPECT_NE(idl.find("1: required i64 a;"), std::string::npos);
}

TEST(SchemaRegistryTest, RegisterAndLookup) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.Register(ClientEventSchema()).ok());
  EXPECT_TRUE(reg.Register(ClientEventSchema()).IsAlreadyExists());
  ASSERT_NE(reg.Lookup("client_event"), nullptr);
  EXPECT_EQ(reg.Lookup("nope"), nullptr);
  EXPECT_EQ(reg.Names(), std::vector<std::string>{"client_event"});
}

}  // namespace
}  // namespace unilog::thrift
