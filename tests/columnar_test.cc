// Tests for the simplified RCFile columnar layout (§4.2's rejected
// alternative): round trips, projection reads, and corruption handling.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "columnar/rcfile.h"
#include "common/rng.h"

namespace unilog::columnar {
namespace {

std::vector<events::ClientEvent> MakeEvents(size_t n) {
  std::vector<events::ClientEvent> out;
  Rng rng(17);
  for (size_t i = 0; i < n; ++i) {
    events::ClientEvent ev;
    ev.initiator = static_cast<events::EventInitiator>(i % 4);
    ev.event_name = "web:home:::tweet:action" + std::to_string(i % 7);
    ev.user_id = static_cast<int64_t>(1000 + i % 13);
    ev.session_id = "s" + std::to_string(i % 13);
    ev.ip = "10.0.0." + std::to_string(i % 200);
    ev.timestamp = 1345507200000 + static_cast<TimeMs>(i) * 1000;
    if (i % 3 == 0) {
      ev.details = {{"rank", std::to_string(i)}, {"lang", "en"}};
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::string WriteAll(const std::vector<events::ClientEvent>& events,
                     size_t rows_per_group) {
  std::string body;
  RcFileWriter writer(&body, rows_per_group);
  for (const auto& ev : events) writer.Add(ev);
  writer.Finish();
  return body;
}

TEST(RcFileTest, FullRoundTrip) {
  auto events = MakeEvents(100);
  std::string body = WriteAll(events, 32);  // several groups + partial tail
  RcFileReader reader(body);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &back).ok());
  ASSERT_EQ(back.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << i;
  }
}

TEST(RcFileTest, ProjectionPopulatesOnlyRequestedColumns) {
  auto events = MakeEvents(50);
  std::string body = WriteAll(events, 16);
  RcFileReader reader(body);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader
                  .ReadAll(ColumnBit(EventColumn::kEventName) |
                               ColumnBit(EventColumn::kUserId),
                           &back)
                  .ok());
  ASSERT_EQ(back.size(), events.size());
  EXPECT_EQ(back[0].event_name, events[0].event_name);
  EXPECT_EQ(back[0].user_id, events[0].user_id);
  // Unrequested columns keep defaults.
  EXPECT_TRUE(back[0].session_id.empty());
  EXPECT_TRUE(back[0].ip.empty());
  EXPECT_EQ(back[0].timestamp, 0);
  EXPECT_TRUE(back[0].details.empty());
}

TEST(RcFileTest, ProjectionTouchesFewerBytes) {
  auto events = MakeEvents(500);
  std::string body = WriteAll(events, 128);

  RcFileReader full(body);
  std::vector<events::ClientEvent> out_full;
  ASSERT_TRUE(full.ReadAll(kAllColumns, &out_full).ok());

  RcFileReader narrow(body);
  std::vector<events::ClientEvent> out_narrow;
  ASSERT_TRUE(
      narrow.ReadAll(ColumnBit(EventColumn::kEventName), &out_narrow).ok());

  EXPECT_LT(narrow.bytes_touched(), full.bytes_touched() / 2);
  EXPECT_EQ(full.bytes_touched(), full.TotalColumnBytes().value());
}

TEST(RcFileTest, ForEachEventNameMatchesRows) {
  auto events = MakeEvents(77);
  std::string body = WriteAll(events, 25);
  RcFileReader reader(body);
  std::vector<std::string> names;
  ASSERT_TRUE(reader
                  .ForEachEventName([&](std::string_view name) {
                    names.emplace_back(name);
                  })
                  .ok());
  ASSERT_EQ(names.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(names[i], events[i].event_name);
  }
}

TEST(RcFileTest, EmptyFile) {
  std::string body = WriteAll({}, 16);
  EXPECT_TRUE(body.empty());
  RcFileReader reader(body);
  std::vector<events::ClientEvent> out;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RcFileTest, SingleRowGroups) {
  auto events = MakeEvents(5);
  std::string body = WriteAll(events, 1);
  RcFileReader reader(body);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &back).ok());
  EXPECT_EQ(back.size(), 5u);
  EXPECT_EQ(back[4], events[4]);
}

TEST(RcFileTest, CorruptionDetected) {
  auto events = MakeEvents(20);
  std::string body = WriteAll(events, 8);
  RcFileReader truncated(std::string_view(body).substr(0, body.size() / 2));
  std::vector<events::ClientEvent> out;
  EXPECT_FALSE(truncated.ReadAll(kAllColumns, &out).ok());

  std::string garbled = body;
  garbled[body.size() / 3] ^= 0x5A;
  RcFileReader bad(garbled);
  out.clear();
  // Either a decompression failure or a decode failure — not OK.
  EXPECT_FALSE(bad.ReadAll(kAllColumns, &out).ok());
}

TEST(RcFileTest, FinishIsIdempotentAndRequired) {
  auto events = MakeEvents(10);
  std::string body;
  RcFileWriter writer(&body, 100);  // all rows pending
  for (const auto& ev : events) writer.Add(ev);
  // Without Finish, the trailing group is not on disk yet.
  {
    RcFileReader reader(body);
    std::vector<events::ClientEvent> out;
    ASSERT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
    EXPECT_TRUE(out.empty());
  }
  writer.Finish();
  writer.Finish();  // idempotent
  RcFileReader reader(body);
  std::vector<events::ClientEvent> out;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
  EXPECT_EQ(out.size(), 10u);
}

}  // namespace
}  // namespace unilog::columnar
