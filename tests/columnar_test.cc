// Tests for the simplified RCFile columnar layout (§4.2's rejected
// alternative): round trips, projection reads, corruption handling, and
// the v2 scan fast path (zone maps, dictionaries, pushdown pruning).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "columnar/rcfile.h"
#include "columnar/scrubber.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"

namespace unilog::columnar {
namespace {

std::vector<events::ClientEvent> MakeEvents(size_t n) {
  std::vector<events::ClientEvent> out;
  Rng rng(17);
  for (size_t i = 0; i < n; ++i) {
    events::ClientEvent ev;
    ev.initiator = static_cast<events::EventInitiator>(i % 4);
    ev.event_name = "web:home:::tweet:action" + std::to_string(i % 7);
    ev.user_id = static_cast<int64_t>(1000 + i % 13);
    ev.session_id = "s" + std::to_string(i % 13);
    ev.ip = "10.0.0." + std::to_string(i % 200);
    ev.timestamp = 1345507200000 + static_cast<TimeMs>(i) * 1000;
    if (i % 3 == 0) {
      ev.details = {{"rank", std::to_string(i)}, {"lang", "en"}};
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::string WriteAll(const std::vector<events::ClientEvent>& events,
                     size_t rows_per_group) {
  std::string body;
  RcFileWriter writer(&body, rows_per_group);
  for (const auto& ev : events) writer.Add(ev);
  writer.Finish();
  return body;
}

TEST(RcFileTest, FullRoundTrip) {
  auto events = MakeEvents(100);
  std::string body = WriteAll(events, 32);  // several groups + partial tail
  RcFileReader reader(body);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &back).ok());
  ASSERT_EQ(back.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << i;
  }
}

TEST(RcFileTest, ProjectionPopulatesOnlyRequestedColumns) {
  auto events = MakeEvents(50);
  std::string body = WriteAll(events, 16);
  RcFileReader reader(body);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader
                  .ReadAll(ColumnBit(EventColumn::kEventName) |
                               ColumnBit(EventColumn::kUserId),
                           &back)
                  .ok());
  ASSERT_EQ(back.size(), events.size());
  EXPECT_EQ(back[0].event_name, events[0].event_name);
  EXPECT_EQ(back[0].user_id, events[0].user_id);
  // Unrequested columns keep defaults.
  EXPECT_TRUE(back[0].session_id.empty());
  EXPECT_TRUE(back[0].ip.empty());
  EXPECT_EQ(back[0].timestamp, 0);
  EXPECT_TRUE(back[0].details.empty());
}

TEST(RcFileTest, ProjectionTouchesFewerBytes) {
  auto events = MakeEvents(500);
  std::string body = WriteAll(events, 128);

  RcFileReader full(body);
  std::vector<events::ClientEvent> out_full;
  ASSERT_TRUE(full.ReadAll(kAllColumns, &out_full).ok());

  RcFileReader narrow(body);
  std::vector<events::ClientEvent> out_narrow;
  ASSERT_TRUE(
      narrow.ReadAll(ColumnBit(EventColumn::kEventName), &out_narrow).ok());

  EXPECT_LT(narrow.bytes_touched(), full.bytes_touched() / 2);
  EXPECT_EQ(full.bytes_touched(), full.TotalColumnBytes().value());
}

TEST(RcFileTest, ForEachEventNameMatchesRows) {
  auto events = MakeEvents(77);
  std::string body = WriteAll(events, 25);
  RcFileReader reader(body);
  std::vector<std::string> names;
  ASSERT_TRUE(reader
                  .ForEachEventName([&](std::string_view name) {
                    names.emplace_back(name);
                  })
                  .ok());
  ASSERT_EQ(names.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(names[i], events[i].event_name);
  }
}

TEST(RcFileTest, EmptyFile) {
  std::string body = WriteAll({}, 16);
  EXPECT_TRUE(body.empty());
  RcFileReader reader(body);
  std::vector<events::ClientEvent> out;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RcFileTest, SingleRowGroups) {
  auto events = MakeEvents(5);
  std::string body = WriteAll(events, 1);
  RcFileReader reader(body);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &back).ok());
  EXPECT_EQ(back.size(), 5u);
  EXPECT_EQ(back[4], events[4]);
}

TEST(RcFileTest, CorruptionDetected) {
  auto events = MakeEvents(20);
  std::string body = WriteAll(events, 8);
  RcFileReader truncated(std::string_view(body).substr(0, body.size() / 2));
  std::vector<events::ClientEvent> out;
  EXPECT_FALSE(truncated.ReadAll(kAllColumns, &out).ok());

  std::string garbled = body;
  garbled[body.size() / 3] ^= 0x5A;
  RcFileReader bad(garbled);
  out.clear();
  // Either a decompression failure or a decode failure — not OK.
  EXPECT_FALSE(bad.ReadAll(kAllColumns, &out).ok());
}

TEST(RcFileTest, FinishIsIdempotentAndRequired) {
  auto events = MakeEvents(10);
  std::string body;
  RcFileWriter writer(&body, 100);  // all rows pending
  for (const auto& ev : events) writer.Add(ev);
  // Without Finish, the trailing group is not on disk yet.
  {
    RcFileReader reader(body);
    std::vector<events::ClientEvent> out;
    ASSERT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
    EXPECT_TRUE(out.empty());
  }
  writer.Finish();
  writer.Finish();  // idempotent
  RcFileReader reader(body);
  std::vector<events::ClientEvent> out;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
  EXPECT_EQ(out.size(), 10u);
}

TEST(RcFileTest, V1FormatRoundTrip) {
  auto events = MakeEvents(60);
  std::string body;
  RcFileWriterOptions options;
  options.rows_per_group = 16;
  options.format_version = 1;
  RcFileWriter writer(&body, options);
  for (const auto& ev : events) ASSERT_TRUE(writer.Add(ev).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(IsRcFile(body));  // no v2 magic on the legacy layout

  RcFileReader reader(body);
  EXPECT_EQ(reader.format_version(), 1);
  std::vector<events::ClientEvent> back;
  ASSERT_TRUE(reader.ReadAll(kAllColumns, &back).ok());
  ASSERT_EQ(back.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << i;
  }
}

TEST(RcFileTest, InvalidColumnMaskRejected) {
  auto events = MakeEvents(4);
  std::string body = WriteAll(events, 4);
  RcFileReader reader(body);
  std::vector<events::ClientEvent> out;
  Status st = reader.ReadAll(kAllColumns | (1u << kEventColumns), &out);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(reader.ReadAll(1u << 13, &out).ok());

  ScanSpec spec;
  spec.columns = 1u << 30;
  EXPECT_FALSE(reader.Scan(spec, &out).ok());
}

TEST(RcFileTest, AddAfterFinishFails) {
  auto events = MakeEvents(3);
  std::string body;
  RcFileWriter writer(&body, 8);
  for (const auto& ev : events) ASSERT_TRUE(writer.Add(ev).ok());
  ASSERT_TRUE(writer.Finish().ok());
  size_t size_after_finish = body.size();

  Status st = writer.Add(events[0]);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_EQ(writer.rows_written(), 3u);
  EXPECT_EQ(body.size(), size_after_finish);  // file tail untouched
}

TEST(RcFileTest, TruncatedHeaderReportsCorruption) {
  auto events = MakeEvents(12);
  std::string body = WriteAll(events, 4);
  ASSERT_TRUE(IsRcFile(body));
  // Any cut inside the first group (header, checksums, or blobs) must be
  // a Status error, never UB; cutting exactly after the magic is a valid
  // empty file.
  std::vector<events::ClientEvent> out;
  {
    RcFileReader reader(std::string_view(body).substr(0, 4));
    out.clear();
    EXPECT_TRUE(reader.ReadAll(kAllColumns, &out).ok());
    EXPECT_TRUE(out.empty());
  }
  for (size_t cut = 5; cut < std::min<size_t>(body.size(), 64); ++cut) {
    RcFileReader reader(std::string_view(body).substr(0, cut));
    out.clear();
    EXPECT_FALSE(reader.ReadAll(kAllColumns, &out).ok()) << "cut=" << cut;
  }
}

TEST(RcFileTest, HeaderByteFlipIsCorruption) {
  auto events = MakeEvents(40);
  std::string body = WriteAll(events, 40);  // one group
  ASSERT_TRUE(IsRcFile(body));
  // Flip bytes across the header region (row count, zone map, and the
  // uncompressed dictionaries); the header checksum must catch each one
  // rather than silently decoding different event names.
  for (size_t pos : {5u, 9u, 14u, 20u, 28u, 36u}) {
    ASSERT_LT(pos, body.size());
    std::string garbled = body;
    garbled[pos] ^= 0x5A;
    RcFileReader reader(garbled);
    std::vector<events::ClientEvent> out;
    EXPECT_FALSE(reader.ReadAll(kAllColumns, &out).ok()) << "pos=" << pos;
  }
}

// Time-ordered fixture: group g holds timestamps [g*1000*rows, ...), so
// zone maps partition the time axis cleanly.
std::vector<events::ClientEvent> MakeTimeOrderedEvents(size_t n) {
  auto events = MakeEvents(n);  // MakeEvents timestamps already ascend
  return events;
}

TEST(RcFileTest, ZoneMapSkipsGroupsOnTimestampRange) {
  auto events = MakeTimeOrderedEvents(80);
  std::string body = WriteAll(events, 8);  // 10 groups
  RcFileReader reader(body);

  ScanSpec spec;
  spec.min_timestamp = events[30].timestamp;
  spec.max_timestamp = events[41].timestamp;
  std::vector<events::ClientEvent> got;
  ScanStats stats;
  ASSERT_TRUE(reader.Scan(spec, &got, &stats).ok());

  std::vector<events::ClientEvent> want;
  for (const auto& ev : events) {
    if (ev.timestamp >= *spec.min_timestamp &&
        ev.timestamp <= *spec.max_timestamp) {
      want.push_back(ev);
    }
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(stats.groups_total, 10u);
  EXPECT_GE(stats.groups_skipped, 7u);  // only ~2 groups overlap the range
  EXPECT_EQ(stats.groups_scanned + stats.groups_skipped, stats.groups_total);
  EXPECT_EQ(stats.rows_returned, want.size());
  EXPECT_EQ(stats.rows_pruned + stats.rows_returned, events.size());
  EXPECT_LT(stats.bytes_decompressed, reader.TotalColumnBytes().value());
}

TEST(RcFileTest, ZoneMapSkipsGroupsOnUserIds) {
  std::vector<events::ClientEvent> events;
  for (size_t i = 0; i < 60; ++i) {
    events::ClientEvent ev;
    ev.event_name = "web:e";
    ev.user_id = static_cast<int64_t>(i / 10) * 1000;  // 6 uid bands
    ev.timestamp = 1345507200000 + static_cast<TimeMs>(i);
    events.push_back(std::move(ev));
  }
  std::string body = WriteAll(events, 10);  // one group per uid band
  RcFileReader reader(body);
  ScanSpec spec;
  spec.user_ids = std::set<int64_t>{3000};
  std::vector<events::ClientEvent> got;
  ScanStats stats;
  ASSERT_TRUE(reader.Scan(spec, &got, &stats).ok());
  EXPECT_EQ(got.size(), 10u);
  for (const auto& ev : got) EXPECT_EQ(ev.user_id, 3000);
  EXPECT_EQ(stats.groups_skipped, 5u);
  EXPECT_EQ(stats.groups_scanned, 1u);
}

TEST(RcFileTest, DictionarySkipsGroupsWithoutMatchingName) {
  std::vector<events::ClientEvent> events;
  for (size_t i = 0; i < 50; ++i) {
    events::ClientEvent ev;
    ev.event_name = i < 30 ? "web:home:click" : "api:timeline:fetch";
    ev.user_id = 7;
    ev.timestamp = 1345507200000 + static_cast<TimeMs>(i);
    events.push_back(std::move(ev));
  }
  std::string body = WriteAll(events, 10);  // groups 0-2 click, 3-4 fetch
  {
    RcFileReader reader(body);
    ScanSpec spec;
    spec.event_names = std::set<std::string>{"api:timeline:fetch"};
    std::vector<events::ClientEvent> got;
    ScanStats stats;
    ASSERT_TRUE(reader.Scan(spec, &got, &stats).ok());
    EXPECT_EQ(got.size(), 20u);
    EXPECT_EQ(stats.groups_skipped, 3u);  // the all-click groups
  }
  {
    RcFileReader reader(body);
    ScanSpec spec;
    spec.event_name_patterns.push_back("web:*");
    std::vector<events::ClientEvent> got;
    ScanStats stats;
    ASSERT_TRUE(reader.Scan(spec, &got, &stats).ok());
    EXPECT_EQ(got.size(), 30u);
    EXPECT_EQ(stats.groups_skipped, 2u);  // the all-fetch groups
  }
}

TEST(RcFileTest, EncodedPruningDropsRowsBeforeMaterialization) {
  auto events = MakeEvents(90);  // 7 names interleaved in every group
  std::string body = WriteAll(events, 30);
  RcFileReader reader(body);
  ScanSpec spec;
  spec.event_names = std::set<std::string>{"web:home:::tweet:action3"};
  std::vector<events::ClientEvent> got;
  ScanStats stats;
  ASSERT_TRUE(reader.Scan(spec, &got, &stats).ok());

  std::vector<events::ClientEvent> want;
  for (const auto& ev : events) {
    if (ev.event_name == "web:home:::tweet:action3") want.push_back(ev);
  }
  EXPECT_EQ(got, want);
  // Every group holds all 7 names, so none skip; rows are pruned on
  // dictionary ids instead.
  EXPECT_EQ(stats.groups_skipped, 0u);
  EXPECT_EQ(stats.groups_scanned, stats.groups_total);
  EXPECT_GT(stats.rows_pruned, 0u);
  EXPECT_EQ(stats.rows_pruned + stats.rows_returned, events.size());
}

TEST(RcFileTest, ScanProjectionKeepsUnrequestedColumnsDefault) {
  auto events = MakeEvents(24);
  std::string body = WriteAll(events, 8);
  RcFileReader reader(body);
  ScanSpec spec;
  spec.columns =
      ColumnBit(EventColumn::kEventName) | ColumnBit(EventColumn::kTimestamp);
  spec.event_name_patterns.push_back("web:*");
  std::vector<events::ClientEvent> got;
  ASSERT_TRUE(reader.Scan(spec, &got, nullptr).ok());
  ASSERT_EQ(got.size(), events.size());
  EXPECT_EQ(got[5].event_name, events[5].event_name);
  EXPECT_EQ(got[5].timestamp, events[5].timestamp);
  EXPECT_EQ(got[5].user_id, 0);
  EXPECT_TRUE(got[5].session_id.empty());
  EXPECT_TRUE(got[5].details.empty());
}

TEST(RcFileTest, GroupParallelScanMatchesSerial) {
  auto events = MakeEvents(200);
  std::string body = WriteAll(events, 16);
  RcFileReader reader(body);
  ScanSpec spec;
  spec.min_timestamp = events[40].timestamp;
  spec.max_timestamp = events[150].timestamp;
  spec.event_name_patterns.push_back("*:action?");

  std::vector<events::ClientEvent> serial;
  ASSERT_TRUE(reader.Scan(spec, &serial, nullptr).ok());

  auto groups = reader.IndexGroups();
  ASSERT_TRUE(groups.ok());
  for (int threads : {2, 8}) {
    exec::ExecOptions opts;
    opts.threads = threads;
    exec::Executor executor(opts);
    std::vector<std::vector<events::ClientEvent>> slots(groups->size());
    ASSERT_TRUE(executor
                    .ParallelForStatus(
                        "scan", groups->size(),
                        [&](size_t g) {
                          return reader.ScanGroup((*groups)[g], spec,
                                                  &slots[g], nullptr);
                        })
                    .ok());
    std::vector<events::ClientEvent> merged;
    for (const auto& slot : slots) {
      merged.insert(merged.end(), slot.begin(), slot.end());
    }
    EXPECT_EQ(merged, serial) << "threads=" << threads;
  }
}

TEST(RcFileTest, ReportScanStatsIncrementsCounters) {
  obs::MetricsRegistry metrics;
  ScanStats stats;
  stats.groups_scanned = 3;
  stats.groups_skipped = 7;
  stats.bytes_decompressed = 4096;
  stats.rows_pruned = 90;
  stats.rows_returned = 10;
  ReportScanStats(stats, &metrics, "/logs/client_events");
  ReportScanStats(stats, &metrics, "/logs/client_events");  // accumulates
  EXPECT_EQ(metrics.CounterTotal("columnar.groups_scanned"), 6u);
  EXPECT_EQ(metrics.CounterTotal("columnar.groups_skipped"), 14u);
  EXPECT_EQ(metrics.CounterTotal("columnar.bytes_decompressed"), 8192u);
  EXPECT_EQ(metrics.CounterTotal("columnar.rows_pruned"), 180u);
  EXPECT_EQ(metrics.CounterTotal("columnar.rows_returned"), 20u);
  ReportScanStats(stats, nullptr, "x");  // null registry is a no-op
}

// ---------------------------------------------------------------------------
// Content fingerprints (the input half of the Oink cache key): derived
// from the embedded per-group checksums, no blob decompression.

TEST(ContentFingerprintTest, DeterministicAcrossReadersAndWrites) {
  auto events = MakeEvents(200);
  std::string a = WriteAll(events, 32);
  std::string b = WriteAll(events, 32);
  EXPECT_EQ(a, b);  // writer is deterministic...
  RcFileReader ra(a), rb(b);
  auto fa = ra.ContentFingerprint();
  auto fb = rb.ContentFingerprint();
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(*fa, *fb);  // ...and so is the fingerprint
  // A second read of the same reader agrees.
  auto again = ra.ContentFingerprint();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *fa);
}

TEST(ContentFingerprintTest, ChangesWithContentAndGrouping) {
  auto events = MakeEvents(200);
  std::string base_body = WriteAll(events, 32);
  auto base_fp = RcFileReader(base_body).ContentFingerprint();
  ASSERT_TRUE(base_fp.ok());

  // One changed row changes the fingerprint.
  auto edited = events;
  edited[100].user_id += 1;
  auto edited_fp = RcFileReader(WriteAll(edited, 32)).ContentFingerprint();
  ASSERT_TRUE(edited_fp.ok());
  EXPECT_NE(*edited_fp, *base_fp);

  // One extra row changes the fingerprint.
  auto extended = events;
  extended.push_back(events[0]);
  auto ext_fp = RcFileReader(WriteAll(extended, 32)).ContentFingerprint();
  ASSERT_TRUE(ext_fp.ok());
  EXPECT_NE(*ext_fp, *base_fp);
}

TEST(ContentFingerprintTest, V1FilesAreFailedPrecondition) {
  auto events = MakeEvents(20);
  std::string body;
  RcFileWriterOptions options;
  options.rows_per_group = 8;
  options.format_version = 1;
  RcFileWriter writer(&body, options);
  for (const auto& ev : events) ASSERT_TRUE(writer.Add(ev).ok());
  ASSERT_TRUE(writer.Finish().ok());
  RcFileReader reader(body);
  EXPECT_TRUE(reader.ContentFingerprint().status().IsFailedPrecondition());
}

TEST(ContentFingerprintTest, TruncatedBodyIsAnError) {
  auto events = MakeEvents(100);
  std::string body = WriteAll(events, 16);
  std::string truncated = body.substr(0, body.size() - 7);
  RcFileReader reader(truncated);
  EXPECT_FALSE(reader.ContentFingerprint().ok());
}

// ---------------------------------------------------------------------------
// RowMatcher: the row-level view of a ScanSpec, used for legacy parts and
// shared-scan residual filtering. Must agree exactly with Scan().

TEST(RowMatcherTest, AgreesWithScanOnEveryPredicateKind) {
  auto events = MakeEvents(120);
  std::string body = WriteAll(events, 16);

  std::vector<ScanSpec> specs;
  {
    ScanSpec s;
    s.min_timestamp = events[30].timestamp;
    s.max_timestamp = events[90].timestamp;
    specs.push_back(s);
  }
  {
    ScanSpec s;
    s.event_names = {events[5].event_name, events[6].event_name};
    specs.push_back(s);
  }
  {
    ScanSpec s;
    s.event_name_patterns = {"*action1", "web:*"};
    specs.push_back(s);
  }
  {
    ScanSpec s;
    s.user_ids = {1001, 1003, 1007};
    s.min_timestamp = events[10].timestamp;
    specs.push_back(s);
  }
  {
    ScanSpec s;  // empty allowlist: matches nothing
    s.event_names = std::set<std::string>{};
    specs.push_back(s);
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    ScanSpec spec = specs[i];
    spec.columns = kAllColumns;
    RowMatcher matcher(spec);
    std::vector<events::ClientEvent> want;
    for (const auto& ev : events) {
      if (matcher.Matches(ev)) want.push_back(ev);
    }
    RcFileReader reader(body);
    std::vector<events::ClientEvent> got;
    ASSERT_TRUE(reader.Scan(spec, &got, nullptr).ok()) << i;
    EXPECT_EQ(got, want) << "spec " << i;
  }
}

// ---------------------------------------------------------------------------
// Background scrubber vs chaos-injected silent corruption

TEST(ScrubberTest, QuarantinesFlippedPartAndSparesHealthyOnes) {
  hdfs::MiniHdfs fs;
  auto events = MakeEvents(120);
  const std::string dir = "/logs/client_event/2012/08/21/00";
  ASSERT_TRUE(fs.WriteFile(dir + "/part-00000", WriteAll(events, 32)).ok());
  ASSERT_TRUE(fs.WriteFile(dir + "/part-00001", WriteAll(events, 16)).ok());
  ASSERT_TRUE(fs.WriteFile(dir + "/notes.txt", "not columnar").ok());
  // Chaos-style silent byte flip past the 4-byte magic: no mtime bump, no
  // error at write time — only the part's own checksums can catch it.
  ASSERT_TRUE(fs.CorruptFile(dir + "/part-00001", 100).ok());

  auto report = ScrubColumnarDir(&fs, "/logs");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->files_checked, 2u);
  EXPECT_EQ(report->files_skipped, 1u);  // notes.txt carries no checksums
  EXPECT_EQ(report->files_quarantined, 1u);
  EXPECT_EQ(report->rows_verified, events.size());
  ASSERT_EQ(report->quarantined.size(), 1u);
  EXPECT_EQ(report->quarantined[0], dir + "/_quarantined.part-00001");

  // The bad part is out of service under a hidden name; the healthy part
  // still reads clean in place.
  EXPECT_FALSE(fs.Exists(dir + "/part-00001"));
  ASSERT_TRUE(fs.Exists(dir + "/_quarantined.part-00001"));
  auto healthy = fs.ReadFile(dir + "/part-00000");
  ASSERT_TRUE(healthy.ok());
  RcFileReader reader(*healthy);
  std::vector<events::ClientEvent> back;
  EXPECT_TRUE(reader.ReadAll(kAllColumns, &back).ok());
  EXPECT_EQ(back.size(), events.size());

  // A second pass is idempotent: the quarantined part is hidden, the
  // healthy one re-verifies, nothing new is renamed.
  auto again = ScrubColumnarDir(&fs, "/logs");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->files_checked, 1u);
  EXPECT_EQ(again->files_quarantined, 0u);
  EXPECT_EQ(again->rows_verified, events.size());
}

TEST(ScrubberTest, BrownoutAbortsPassWithoutQuarantining) {
  hdfs::MiniHdfs fs;
  auto events = MakeEvents(40);
  const std::string part = "/logs/client_event/2012/08/21/00/part-00000";
  ASSERT_TRUE(fs.WriteFile(part, WriteAll(events, 16)).ok());
  ASSERT_TRUE(fs.CorruptFile(part, 50).ok());
  fs.SetDatanodeAvailable(0, false);

  // Reads fail during the brownout, so the pass aborts for a later retry
  // instead of mistaking darkness for corruption.
  auto report = ScrubColumnarDir(&fs, "/logs");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable()) << report.status().ToString();
  EXPECT_TRUE(fs.Exists(part));  // nothing renamed

  fs.SetDatanodeAvailable(0, true);
  auto retry = ScrubColumnarDir(&fs, "/logs");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->files_quarantined, 1u);
}

}  // namespace
}  // namespace unilog::columnar
