// Tests for the unilog::exec deterministic parallel execution engine: the
// thread pool itself, the Executor primitives, and the end-to-end
// determinism contract — the dataflow layer must produce byte-identical
// output at any thread count. The stress cases double as the TSan
// workload (see -DUNILOG_SANITIZE_THREAD in the top-level CMakeLists).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/summary.h"
#include "analytics/udfs.h"
#include "bench_common.h"
#include "dataflow/mapreduce.h"
#include "dataflow/pig.h"
#include "dataflow/relation.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"
#include "pipeline/daily_pipeline.h"
#include "sessions/sessionizer.h"

namespace unilog {
namespace {

exec::Executor MakeExecutor(int threads) {
  exec::ExecOptions opts;
  opts.threads = threads;
  return exec::Executor(opts);
}

uint64_t Fnv1a(std::string_view data, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.Run(hits.size(), [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  exec::ThreadPool pool(0);
  std::vector<int> order;
  pool.Run(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  exec::ThreadPool pool(2);
  bool ran = false;
  pool.Run(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, BackToBackBatches) {
  exec::ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 100; ++round) {
    pool.Run(32, [&](size_t i) { sum += i + 1; });
  }
  EXPECT_EQ(sum.load(), 100u * (32u * 33u / 2u));
}

// The TSan hammer: many tiny batches so publication/claiming/completion
// paths are exercised under contention.
TEST(ThreadPoolStressTest, ManyTinyBatches) {
  exec::ThreadPool pool(8);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 400; ++round) {
    pool.Run(5, [&](size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 400u * 10u);
}

TEST(ThreadPoolStressTest, PerSlotWritesNeverCollide) {
  exec::ThreadPool pool(8);
  std::vector<uint32_t> slots(10000, 0);
  for (int round = 0; round < 20; ++round) {
    pool.Run(slots.size(), [&](size_t i) { slots[i] += 1; });
  }
  for (uint32_t s : slots) EXPECT_EQ(s, 20u);
}

// ---------------------------------------------------------------------------
// Executor

TEST(ExecutorTest, SerialModeHasNoPool) {
  exec::Executor serial = MakeExecutor(1);
  EXPECT_FALSE(serial.parallel());
  EXPECT_EQ(serial.threads(), 1);
  EXPECT_EQ(serial.ChunksFor(1000), 1u);
  std::vector<int> order;
  serial.ParallelFor("t", 4, [&](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ExecutorTest, ParallelModeCoversAllIndices) {
  exec::Executor par = MakeExecutor(4);
  EXPECT_TRUE(par.parallel());
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  par.ParallelFor("t", hits.size(), [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorTest, ChunkBoundariesPartitionTheRange) {
  exec::Executor par = MakeExecutor(4);
  size_t n = 1003;
  size_t chunks = par.ChunksFor(n);
  EXPECT_GE(chunks, 2u);
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  par.ParallelForChunked("t", n, [&](size_t chunk, size_t begin, size_t end) {
    EXPECT_LT(chunk, chunks);
    EXPECT_LE(end, n);
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorTest, SmallInputsDoNotShatter) {
  exec::Executor par = MakeExecutor(8);
  // Fewer items than min_items_per_chunk → one chunk.
  EXPECT_EQ(par.ChunksFor(3), 1u);
}

TEST(ExecutorTest, StatusVariantReportsFirstErrorByIndex) {
  for (int threads : {1, 4}) {
    exec::Executor executor = MakeExecutor(threads);
    Status st = executor.ParallelForStatus("t", 100, [&](size_t i) -> Status {
      if (i == 17) return Status::InvalidArgument("first");
      if (i == 80) return Status::Internal("later");
      return Status::OK();
    });
    EXPECT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_EQ(st.message(), "first") << "threads=" << threads;
  }
}

TEST(ExecutorTest, NestedRegionsRunInlineWithoutDeadlock) {
  exec::Executor par = MakeExecutor(4);
  std::vector<std::atomic<int>> hits(64 * 8);
  for (auto& h : hits) h = 0;
  par.ParallelFor("outer", 64, [&](size_t i) {
    // A nested region from a pool worker must not re-enter the pool.
    par.ParallelFor("inner", 8, [&](size_t j) { ++hits[i * 8 + j]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorTest, RecordsPerStageMetrics) {
  obs::MetricsRegistry metrics;
  exec::Executor par = MakeExecutor(2);
  par.set_metrics(&metrics);
  par.ParallelFor("mystage", 10, [](size_t) {});
  par.ParallelFor("mystage", 5, [](size_t) {});
  obs::Labels labels{{"stage", "mystage"}};
  EXPECT_EQ(metrics.GetCounter("exec_tasks", labels)->value(), 15u);
  EXPECT_EQ(metrics.GetCounter("exec_regions", labels)->value(), 2u);
  EXPECT_EQ(metrics.GetHistogram("exec_region_ms", labels)->count(), 2u);
  EXPECT_EQ(metrics.GetGauge("exec_threads")->value(), 2);
}

// ---------------------------------------------------------------------------
// Morsel-driven scheduling

TEST(MorselTest, PackingIsDeterministicAndGreedy) {
  exec::Executor serial = MakeExecutor(1);
  std::vector<uint64_t> weights;
  for (int i = 0; i < 37; ++i) weights.push_back((i * 131) % 900 + 1);
  const uint64_t target = 1000;
  exec::MorselOptions opts;
  opts.morsel_bytes = target;
  std::vector<std::pair<size_t, size_t>> bounds;
  Status st = serial.ParallelForMorsels(
      "t", weights, opts,
      [&](size_t morsel, size_t begin, size_t end) -> Status {
        EXPECT_EQ(morsel, bounds.size());
        bounds.emplace_back(begin, end);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  // Bounds partition [0, n) in order; every morsel holds >= 1 item and
  // closed greedily: the morsel without its final item is under target.
  ASSERT_FALSE(bounds.empty());
  size_t next = 0;
  for (const auto& [begin, end] : bounds) {
    EXPECT_EQ(begin, next);
    EXPECT_LT(begin, end);
    uint64_t prefix = 0;
    for (size_t i = begin; i + 1 < end; ++i) prefix += weights[i];
    EXPECT_LT(prefix, target);
    next = end;
  }
  EXPECT_EQ(next, weights.size());

  // Re-running and running under a parallel executor yields the same
  // morsel boundaries: packing is a pure function of weights + target.
  for (int threads : {1, 4}) {
    exec::Executor executor = MakeExecutor(threads);
    std::vector<std::pair<size_t, size_t>> again(bounds.size());
    Status st2 = executor.ParallelForMorsels(
        "t", weights, opts,
        [&](size_t morsel, size_t begin, size_t end) -> Status {
          again[morsel] = {begin, end};
          return Status::OK();
        });
    ASSERT_TRUE(st2.ok());
    EXPECT_EQ(again, bounds) << "threads=" << threads;
  }
}

TEST(MorselTest, ParallelCoversEveryItemOnceAtAnyGranularity) {
  std::vector<uint64_t> weights(501);
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = (i * 7) % 64 + 1;
  for (int threads : {1, 2, 4, 8}) {
    for (uint64_t morsel_bytes : {uint64_t{1}, uint64_t{64},
                                  uint64_t{1} << 20}) {
      exec::Executor executor = MakeExecutor(threads);
      exec::MorselOptions opts;
      opts.morsel_bytes = morsel_bytes;
      std::vector<std::atomic<int>> hits(weights.size());
      for (auto& h : hits) h = 0;
      Status st = executor.ParallelForMorsels(
          "t", weights, opts,
          [&](size_t, size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) ++hits[i];
            return Status::OK();
          });
      ASSERT_TRUE(st.ok());
      for (auto& h : hits) {
        EXPECT_EQ(h.load(), 1)
            << "threads=" << threads << " morsel_bytes=" << morsel_bytes;
      }
    }
  }
}

TEST(MorselTest, SmallestIndexErrorWinsInParallel) {
  // Unit weights with a tiny target: one morsel per item, so morsel index
  // == item index and the smallest failing index must surface.
  std::vector<uint64_t> weights(100, 1);
  exec::MorselOptions opts;
  opts.morsel_bytes = 1;
  for (int threads : {1, 4}) {
    exec::Executor executor = MakeExecutor(threads);
    Status st = executor.ParallelForMorsels(
        "t", weights, opts,
        [&](size_t morsel, size_t, size_t) -> Status {
          if (morsel == 17) return Status::InvalidArgument("first");
          if (morsel == 80) return Status::Internal("later");
          return Status::OK();
        });
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_EQ(st.message(), "first") << "threads=" << threads;
  }
}

TEST(MorselTest, StatsMetricsAndTotalsAccumulate) {
  obs::MetricsRegistry metrics;
  exec::Executor executor = MakeExecutor(2);
  executor.set_metrics(&metrics);
  std::vector<uint64_t> weights(64, 100);
  exec::MorselOptions opts;
  opts.morsel_bytes = 300;
  exec::MorselStats stats;
  Status st = executor.ParallelForMorsels(
      "morsel_stage", weights, opts,
      [](size_t, size_t, size_t) -> Status { return Status::OK(); }, &stats);
  ASSERT_TRUE(st.ok());
  EXPECT_GT(stats.morsels, 1u);
  EXPECT_EQ(stats.total_bytes, 64u * 100u);
  EXPECT_GE(stats.max_morsel_bytes, 300u);
  obs::Labels labels{{"stage", "morsel_stage"}};
  EXPECT_EQ(metrics.GetHistogram("exec.morsel_size_bytes", labels)->count(),
            stats.morsels);
  // Steal traffic is nondeterministic but the counter must exist and the
  // cumulative totals must cover this region.
  EXPECT_EQ(metrics.GetCounter("exec.morsel_steals", labels)->value(),
            stats.steals);
  exec::MorselStats totals = executor.morsel_totals();
  EXPECT_GE(totals.morsels, stats.morsels);
  EXPECT_GE(totals.total_bytes, stats.total_bytes);
}

TEST(MorselTest, NestedRegionRunsInlineWithoutDeadlock) {
  exec::Executor par = MakeExecutor(4);
  std::vector<uint64_t> outer(16, 1), inner(8, 1);
  exec::MorselOptions opts;
  opts.morsel_bytes = 2;
  std::vector<std::atomic<int>> hits(16 * 8);
  for (auto& h : hits) h = 0;
  Status st = par.ParallelForMorsels(
      "outer", outer, opts, [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          UNILOG_RETURN_NOT_OK(par.ParallelForMorsels(
              "inner", inner, opts,
              [&, i](size_t, size_t b, size_t e) -> Status {
                for (size_t j = b; j < e; ++j) ++hits[i * 8 + j];
                return Status::OK();
              }));
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(MorselTest, EmptyWeightsIsANoOp) {
  exec::Executor par = MakeExecutor(4);
  bool ran = false;
  Status st = par.ParallelForMorsels(
      "t", {}, exec::MorselOptions{},
      [&](size_t, size_t, size_t) -> Status {
        ran = true;
        return Status::OK();
      });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(ran);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: MapReduce

// A small warehouse of framed-record files for MapReduce determinism runs.
std::unique_ptr<hdfs::MiniHdfs> WordWarehouse() {
  auto fs = std::make_unique<hdfs::MiniHdfs>();
  // 6 files, several records each; repeated words across files so the
  // shuffle actually groups values from different tasks.
  for (int f = 0; f < 6; ++f) {
    std::string body;
    for (int r = 0; r < 40; ++r) {
      std::string record = "word" + std::to_string((f * 7 + r * 3) % 11) +
                           " payload" + std::to_string(f) + "_" +
                           std::to_string(r);
      bench::AppendFramedRecord(&body, record);
    }
    EXPECT_TRUE(
        fs->WriteFile("/in/part-" + std::to_string(f), body).ok());
  }
  return fs;
}

std::vector<std::pair<std::string, std::string>> RunWordJob(
    const hdfs::MiniHdfs& fs, exec::Executor* executor, bool with_reduce,
    dataflow::JobStats* stats) {
  dataflow::MapReduceJob job(&fs, dataflow::JobCostModel{});
  job.set_executor(executor);
  job.set_input_format(dataflow::InputFormat::Framed());
  EXPECT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string& record,
                 dataflow::Emitter* emitter) -> Status {
    size_t space = record.find(' ');
    emitter->Emit(record.substr(0, space), record.substr(space + 1));
    return Status::OK();
  });
  if (with_reduce) {
    job.set_reduce([](const std::string& key,
                      const std::vector<std::string>& values,
                      dataflow::Emitter* emitter) -> Status {
      std::string joined;
      for (const auto& v : values) {
        joined += v;
        joined.push_back(',');
      }
      emitter->Emit(key, std::to_string(values.size()) + ":" + joined);
      return Status::OK();
    });
  }
  auto result = job.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (stats != nullptr) *stats = job.stats();
  return *result;
}

TEST(MapReduceDeterminismTest, OutputIdenticalAcrossThreadCounts) {
  auto fs = WordWarehouse();
  for (bool with_reduce : {false, true}) {
    dataflow::JobStats serial_stats;
    auto serial = RunWordJob(*fs, nullptr, with_reduce, &serial_stats);
    for (int threads : {1, 2, 8}) {
      exec::Executor executor = MakeExecutor(threads);
      dataflow::JobStats stats;
      auto out = RunWordJob(*fs, &executor, with_reduce, &stats);
      EXPECT_EQ(out, serial) << "threads=" << threads
                             << " reduce=" << with_reduce;
      EXPECT_EQ(stats.records_read, serial_stats.records_read);
      EXPECT_EQ(stats.records_emitted, serial_stats.records_emitted);
      EXPECT_EQ(stats.records_output, serial_stats.records_output);
      EXPECT_EQ(stats.bytes_scanned, serial_stats.bytes_scanned);
      EXPECT_EQ(stats.bytes_shuffled, serial_stats.bytes_shuffled);
    }
  }
}

TEST(MapReduceDeterminismTest, MapErrorsSurfaceInParallel) {
  auto fs = WordWarehouse();
  for (int threads : {1, 4}) {
    exec::Executor executor = MakeExecutor(threads);
    dataflow::MapReduceJob job(fs.get(), dataflow::JobCostModel{});
    job.set_executor(&executor);
    job.set_input_format(dataflow::InputFormat::Framed());
    ASSERT_TRUE(job.AddInputDir("/in").ok());
    job.set_map([](const std::string& record, dataflow::Emitter*) -> Status {
      if (record.find("payload3_7") != std::string::npos) {
        return Status::InvalidArgument("poison record");
      }
      return Status::OK();
    });
    auto result = job.Run();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "poison record");
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: daily pipeline (§4.2 job graph)

std::string FingerprintDaily(const pipeline::DailyJobResult& daily) {
  std::string blob;
  for (const auto& seq : daily.sequences) {
    sessions::AppendSequenceRecord(&blob, seq);
  }
  for (const auto& [name, count] : daily.histogram.SortedByFrequency()) {
    blob += name + "=" + std::to_string(count) + ";";
    for (const auto& sample : daily.histogram.SamplesOf(name)) blob += sample;
  }
  for (int level = 0; level < events::kRollupLevels; ++level) {
    for (const auto& row : daily.rollups.TopRows(
             static_cast<events::RollupLevel>(level), 1000)) {
      blob += row + "\n";
    }
  }
  return std::to_string(Fnv1a(blob)) + "/" + std::to_string(blob.size());
}

TEST(DailyPipelineDeterminismTest, ResultIdenticalAcrossThreadCounts) {
  workload::WorkloadOptions wopts = bench::DefaultWorkload(7, 60);
  std::string serial_print;
  for (int threads : {1, 2, 8}) {
    // Fresh warehouse per run (daily partitions are write-once) from the
    // same deterministic workload seed.
    auto warehouse = std::make_unique<hdfs::MiniHdfs>();
    workload::WorkloadGenerator generator(wopts);
    ASSERT_TRUE(
        bench::MaterializeWarehouseDay(&generator, warehouse.get()).ok());
    pipeline::UserTable users = pipeline::UserTable::FromWorkload(generator);

    exec::Executor executor = MakeExecutor(threads);
    pipeline::DailyPipeline daily(warehouse.get(), dataflow::JobCostModel{});
    daily.set_executor(&executor);
    auto result = daily.RunForDate(bench::kBenchDay, users);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string print = FingerprintDaily(*result);
    if (threads == 1) {
      serial_print = print;
      EXPECT_GT(result->sequences.size(), 0u);
    } else {
      EXPECT_EQ(print, serial_print) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: Pig scripts

TEST(PigDeterminismTest, ScriptOutputIdenticalAcrossThreadCounts) {
  // A deterministic loader (no warehouse needed) exercising FILTER,
  // row-level FOREACH with a UDF, GROUP/aggregate FOREACH (incl. a
  // floating-point SUM), and JOIN.
  auto loader = [](const std::string& path,
                   const std::vector<std::string>&) -> Result<dataflow::Relation> {
    dataflow::Relation rel({"id", "user", "score"});
    int n = path == "big" ? 500 : 40;
    for (int i = 0; i < n; ++i) {
      UNILOG_RETURN_NOT_OK(rel.AddRow(
          {dataflow::Value::Int(i), dataflow::Value::Int(i % 13),
           dataflow::Value::Real(0.1 * ((i * 37) % 101))}));
    }
    return rel;
  };
  const std::string script = R"(
    big = LOAD 'big' USING rows();
    small = LOAD 'small' USING rows();
    kept = FILTER big BY id >= 25;
    scored = FOREACH kept GENERATE user, Double(score) AS dscore;
    g = GROUP scored BY user;
    sums = FOREACH g GENERATE user, SUM(dscore) AS total, COUNT(*) AS n;
    j = JOIN sums BY user, small BY user;
    sorted = ORDER j BY total DESC;
    top = LIMIT sorted 10;
    DUMP sums;
    DUMP top;
  )";
  std::vector<std::string> serial_output;
  for (int threads : {1, 2, 8}) {
    exec::Executor executor = MakeExecutor(threads);
    dataflow::PigInterpreter interp;
    if (threads > 1) interp.set_executor(&executor);
    interp.RegisterLoader("rows", loader);
    interp.RegisterUdfFactory(
        "double", [](const std::vector<std::string>&)
                      -> Result<dataflow::PigInterpreter::ScalarUdf> {
          return dataflow::PigInterpreter::ScalarUdf(
              [](const std::vector<dataflow::Value>& args)
                  -> Result<dataflow::Value> {
                return dataflow::Value::Real(2.0 * args[0].AsNumber());
              });
        });
    Status st = interp.Run(script);
    ASSERT_TRUE(st.ok()) << "threads=" << threads << ": " << st.ToString();
    if (threads == 1) {
      serial_output = interp.output();
      EXPECT_FALSE(serial_output.empty());
    } else {
      EXPECT_EQ(interp.output(), serial_output) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: sessionizer

TEST(SessionizerDeterminismTest, BuildIdenticalAcrossThreadCounts) {
  sessions::Sessionizer sessionizer;
  // Interleaved, partially out-of-order events across many groups.
  for (int i = 0; i < 3000; ++i) {
    events::ClientEvent ev;
    ev.user_id = (i * 17) % 97;
    ev.session_id = "s" + std::to_string((i * 5) % 3);
    ev.timestamp = 1000000 + ((i * 31337) % 100000) * 1000;
    ev.event_name = "web:home:timeline:stream:tweet:e" + std::to_string(i % 7);
    ev.ip = "10.0.0.1";
    sessionizer.Add(ev);
  }
  std::vector<sessions::Session> serial = sessionizer.Build();
  ASSERT_GT(serial.size(), 0u);
  for (int threads : {1, 2, 8}) {
    exec::Executor executor = MakeExecutor(threads);
    std::vector<sessions::Session> parallel = sessionizer.Build(&executor);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].user_id, serial[i].user_id);
      EXPECT_EQ(parallel[i].session_id, serial[i].session_id);
      EXPECT_EQ(parallel[i].start, serial[i].start);
      EXPECT_EQ(parallel[i].end, serial[i].end);
      EXPECT_EQ(parallel[i].event_names, serial[i].event_names);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: analytics scans

TEST(AnalyticsDeterminismTest, SummaryFunnelAndRatesIdentical) {
  bench::DayFixture fx =
      bench::BuildDay(bench::DefaultWorkload(11, 80));
  auto serial_summary =
      analytics::Summarize(fx.daily.sequences, fx.daily.dictionary);
  ASSERT_TRUE(serial_summary.ok());
  analytics::CountClientEvents counter(fx.daily.dictionary,
                                       events::EventPattern("*:impression"));
  uint64_t serial_count = counter.TotalCount(fx.daily.sequences);
  analytics::RateReport serial_rate = analytics::ComputeRate(
      fx.daily.sequences, fx.daily.dictionary,
      events::EventPattern("*:impression"), events::EventPattern("*:click"));
  for (int threads : {2, 8}) {
    exec::Executor executor = MakeExecutor(threads);
    auto summary = analytics::Summarize(fx.daily.sequences,
                                        fx.daily.dictionary, &executor);
    ASSERT_TRUE(summary.ok());
    EXPECT_EQ(summary->ToString(), serial_summary->ToString())
        << "threads=" << threads;
    EXPECT_EQ(counter.TotalCount(fx.daily.sequences, &executor), serial_count);
    analytics::RateReport rate = analytics::ComputeRate(
        fx.daily.sequences, fx.daily.dictionary,
        events::EventPattern("*:impression"), events::EventPattern("*:click"),
        &executor);
    EXPECT_EQ(rate.impressions, serial_rate.impressions);
    EXPECT_EQ(rate.actions, serial_rate.actions);
    EXPECT_EQ(rate.rate, serial_rate.rate);
    EXPECT_EQ(rate.sessions_with_impression,
              serial_rate.sessions_with_impression);
    EXPECT_EQ(rate.sessions_with_action, serial_rate.sessions_with_action);
  }
}

}  // namespace
}  // namespace unilog
