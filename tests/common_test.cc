// Unit tests for src/common: Status/Result, coding, UTF-8, strings, RNG,
// time, and the LZ block codec.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/compress.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/utf8.h"

namespace unilog {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such category");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such category");
  EXPECT_EQ(s.ToString(), "NotFound: no such category");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IOError("disk gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  UNILOG_ASSIGN_OR_RETURN(*out, HalveEven(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseAssignOrReturn(7, &out).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Coding

TEST(CodingTest, VarintRoundTrip) {
  const uint64_t values[] = {0,       1,          127,        128,
                             300,     16383,      16384,      UINT32_MAX,
                             1ull << 40, UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    Decoder dec(buf);
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint64(&got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(CodingTest, VarintSizeGrowsWithMagnitude) {
  std::string small, big;
  PutVarint64(&small, 5);
  PutVarint64(&big, 1ull << 60);
  EXPECT_EQ(small.size(), 1u);
  EXPECT_GT(big.size(), 8u);
}

TEST(CodingTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, INT64_MIN, INT64_MAX,
                    int64_t{-123456789}}) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  for (int32_t v : {0, -1, 1, INT32_MIN, INT32_MAX, -9999}) {
    EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(v)), v);
  }
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Decoder dec(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(dec.GetFixed32(&v32).ok());
  ASSERT_TRUE(dec.GetFixed64(&v64).ok());
  EXPECT_EQ(v32, 0xDEADBEEF);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  std::string_view a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&b).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodingTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 100000);
  std::string truncated = buf.substr(0, 1);
  Decoder dec(truncated);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());

  Decoder dec2("ab");
  uint32_t v32;
  EXPECT_TRUE(dec2.GetFixed32(&v32).IsCorruption());

  std::string lp;
  PutLengthPrefixed(&lp, "hello world");
  Decoder dec3(std::string_view(lp).substr(0, 4));
  std::string_view sv;
  EXPECT_TRUE(dec3.GetLengthPrefixed(&sv).IsCorruption());
}

TEST(CodingTest, OverlongVarintIsCorruption) {
  std::string buf(11, '\x80');
  Decoder dec(buf);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

// ---------------------------------------------------------------------------
// UTF-8

TEST(Utf8Test, EncodedLengthBoundaries) {
  EXPECT_EQ(Utf8EncodedLength(0x00), 1);
  EXPECT_EQ(Utf8EncodedLength(0x7F), 1);
  EXPECT_EQ(Utf8EncodedLength(0x80), 2);
  EXPECT_EQ(Utf8EncodedLength(0x7FF), 2);
  EXPECT_EQ(Utf8EncodedLength(0x800), 3);
  EXPECT_EQ(Utf8EncodedLength(0xFFFF), 3);
  EXPECT_EQ(Utf8EncodedLength(0x10000), 4);
  EXPECT_EQ(Utf8EncodedLength(0x10FFFF), 4);
  EXPECT_EQ(Utf8EncodedLength(0x110000), 0);   // out of range
  EXPECT_EQ(Utf8EncodedLength(0xD800), 0);     // surrogate
}

TEST(Utf8Test, RoundTripRepresentativeCodePoints) {
  std::vector<uint32_t> cps = {0x00,   0x41,    0x7F,   0x80,    0x235,
                               0x7FF,  0x800,   0xD7FF, 0xE000,  0xFFFF,
                               0x10000, 0x10FFFF};
  auto encoded = EncodeUtf8(cps);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeUtf8(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, cps);
  EXPECT_EQ(Utf8Length(*encoded), cps.size());
}

TEST(Utf8Test, RejectsSurrogatesAndOutOfRange) {
  std::string out;
  EXPECT_TRUE(AppendUtf8(&out, 0xD800).IsInvalidArgument());
  EXPECT_TRUE(AppendUtf8(&out, 0xDFFF).IsInvalidArgument());
  EXPECT_TRUE(AppendUtf8(&out, 0x110000).IsInvalidArgument());
}

TEST(Utf8Test, RejectsMalformedInput) {
  // Truncated 2-byte sequence.
  EXPECT_TRUE(DecodeUtf8("\xC3").status().IsCorruption());
  // Bad continuation byte.
  EXPECT_TRUE(DecodeUtf8("\xC3\x41").status().IsCorruption());
  // Overlong encoding of '/' (0x2F as two bytes).
  EXPECT_TRUE(DecodeUtf8("\xC0\xAF").status().IsCorruption());
  // Bare continuation byte.
  EXPECT_TRUE(DecodeUtf8("\x80").status().IsCorruption());
  // Encoded surrogate (0xD800 in 3 bytes).
  EXPECT_TRUE(DecodeUtf8("\xED\xA0\x80").status().IsCorruption());
}

// Property-style sweep over the dictionary-relevant range: the first ~4096
// code points round-trip individually.
class Utf8SweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Utf8SweepTest, SingleCodePointRoundTrip) {
  uint32_t base = GetParam();
  for (uint32_t cp = base; cp < base + 64; ++cp) {
    if (!IsValidCodePoint(cp)) continue;
    std::string buf;
    ASSERT_TRUE(AppendUtf8(&buf, cp).ok());
    size_t pos = 0;
    uint32_t got;
    ASSERT_TRUE(DecodeOneUtf8(buf, &pos, &got).ok()) << cp;
    EXPECT_EQ(got, cp);
    EXPECT_EQ(pos, buf.size());
  }
}

INSTANTIATE_TEST_SUITE_P(DictionaryRange, Utf8SweepTest,
                         ::testing::Values(0u, 64u, 128u, 0x700u, 0x7C0u,
                                           0x800u, 0xD780u, 0xE000u, 0xFFC0u,
                                           0x10000u, 0x10FFC0u));

// ---------------------------------------------------------------------------
// Strings

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a:b:c", ':'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a::b", ':'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ':'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ':'), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ':'), "a:b:c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ':'), "");
  EXPECT_EQ(Join(std::vector<std::string>{"x"}, ':'), "x");
}

TEST(StringsTest, SplitJoinInverse) {
  std::string s = "web:home:mentions:stream:avatar:profile_click";
  EXPECT_EQ(Join(Split(s, ':'), ':'), s);
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("web:home", "web"));
  EXPECT_FALSE(StartsWith("web", "web:home"));
  EXPECT_TRUE(EndsWith("profile_click", "click"));
  EXPECT_FALSE(EndsWith("click", "profile_click"));
}

TEST(StringsTest, ToLowerAndTrim) {
  EXPECT_EQ(ToLower("CamelCase_snake"), "camelcase_snake");
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, IsLowerSnake) {
  EXPECT_TRUE(IsLowerSnake("profile_click"));
  EXPECT_TRUE(IsLowerSnake("web2"));
  EXPECT_FALSE(IsLowerSnake(""));
  EXPECT_FALSE(IsLowerSnake("CamelCase"));
  EXPECT_FALSE(IsLowerSnake("has space"));
  EXPECT_FALSE(IsLowerSnake("has-dash"));
}

TEST(StringsTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("web", "web"));
  EXPECT_FALSE(GlobMatch("web", "webx"));
  EXPECT_TRUE(GlobMatch("web*", "web_client"));
  EXPECT_TRUE(GlobMatch("*click", "profile_click"));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "aXXcYYb"));
  EXPECT_TRUE(GlobMatch("**", "x"));
}

TEST(StringsTest, HumanBytesAndCommas) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(100), "100");
  EXPECT_EQ(WithCommas(1000), "1,000");
}

// ---------------------------------------------------------------------------
// RNG

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.2);
  // Large-mean path (normal approximation).
  sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PickWeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.PickWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ForkIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  EXPECT_NE(a.Next64(), b.Next64());
}

TEST(ZipfianTest, RankZeroMostPopular) {
  Rng rng(23);
  ZipfianSampler zipf(100, 1.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfianTest, PmfSumsToOne) {
  ZipfianSampler zipf(50, 0.9);
  double sum = 0;
  for (size_t i = 0; i < 50; ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfianTest, SkewIncreasesHeadMass) {
  ZipfianSampler flat(100, 0.5), skewed(100, 1.5);
  EXPECT_GT(skewed.Pmf(0), flat.Pmf(0));
}

// ---------------------------------------------------------------------------
// Time

TEST(SimTimeTest, EpochIsCorrect) {
  CivilTime c = ToCivil(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
}

TEST(SimTimeTest, CivilRoundTrip) {
  TimeMs t = MakeDate(2012, 8, 21) + 13 * kMillisPerHour +
             45 * kMillisPerMinute + 30 * kMillisPerSecond + 123;
  CivilTime c = ToCivil(t);
  EXPECT_EQ(c.year, 2012);
  EXPECT_EQ(c.month, 8);
  EXPECT_EQ(c.day, 21);
  EXPECT_EQ(c.hour, 13);
  EXPECT_EQ(c.minute, 45);
  EXPECT_EQ(c.second, 30);
  EXPECT_EQ(c.millisecond, 123);
  EXPECT_EQ(FromCivil(c), t);
}

TEST(SimTimeTest, LeapYearHandled) {
  TimeMs t = MakeDate(2012, 2, 29);
  CivilTime c = ToCivil(t);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 29);
  EXPECT_EQ(ToCivil(t + kMillisPerDay).month, 3);
  EXPECT_EQ(ToCivil(t + kMillisPerDay).day, 1);
}

TEST(SimTimeTest, TruncationAndPaths) {
  TimeMs t = MakeDate(2012, 8, 21) + 13 * kMillisPerHour + 7 * kMillisPerMinute;
  EXPECT_EQ(TruncateToHour(t), MakeDate(2012, 8, 21) + 13 * kMillisPerHour);
  EXPECT_EQ(TruncateToDay(t), MakeDate(2012, 8, 21));
  EXPECT_EQ(HourPartitionPath(t), "2012/08/21/13");
  EXPECT_EQ(DateString(t), "2012-08-21");
  EXPECT_EQ(TimestampString(t), "2012-08-21 13:07:00.000");
}

TEST(SimTimeTest, SessionGapConstant) {
  EXPECT_EQ(kSessionInactivityGapMs, 30 * 60 * 1000);
}

// ---------------------------------------------------------------------------
// LZ codec

TEST(LzTest, EmptyInput) {
  std::string c = Lz::Compress("");
  auto d = Lz::Decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, "");
}

TEST(LzTest, IncompressibleRoundTrip) {
  Rng rng(29);
  std::string data;
  for (int i = 0; i < 10000; ++i) {
    data.push_back(static_cast<char>(rng.Next64() & 0xFF));
  }
  std::string c = Lz::Compress(data);
  auto d = Lz::Decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, data);
}

TEST(LzTest, RepetitiveInputCompresses) {
  std::string data;
  for (int i = 0; i < 1000; ++i) {
    data += "web:home:mentions:stream:avatar:profile_click|";
  }
  std::string c = Lz::Compress(data);
  auto d = Lz::Decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, data);
  EXPECT_LT(c.size(), data.size() / 10);
}

TEST(LzTest, OverlappingMatch) {
  // "aaaa..." forces self-overlapping copies.
  std::string data(5000, 'a');
  std::string c = Lz::Compress(data);
  auto d = Lz::Decompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, data);
  EXPECT_LT(c.size(), 100u);
}

TEST(LzTest, CorruptedBlockDetected) {
  std::string c = Lz::Compress("hello hello hello hello hello");
  // Truncate mid-stream.
  auto d = Lz::Decompress(std::string_view(c).substr(0, c.size() - 3));
  EXPECT_FALSE(d.ok());
  // Garbage tag.
  std::string bad = c;
  bad[1] = '\x7F';
  EXPECT_FALSE(Lz::Decompress(bad).ok());
}

TEST(LzTest, PooledCompressorMatchesReference) {
  // The pooled (state-reusing) compressor must emit byte-identical blocks
  // to a fresh-state compressor on every input shape: repetitive, random,
  // runs, and empty.
  Rng rng(37);
  std::vector<std::string> inputs;
  inputs.emplace_back();
  inputs.emplace_back(5000, 'a');
  {
    std::string repetitive;
    for (int i = 0; i < 2000; ++i) repetitive += "home:timeline:tweet:click|";
    inputs.push_back(std::move(repetitive));
  }
  {
    std::string random;
    for (int i = 0; i < 100000; ++i) {
      random.push_back(static_cast<char>(rng.Next64() & 0xFF));
    }
    inputs.push_back(std::move(random));
  }
  Lz::Compressor compressor;
  std::string out;
  for (const std::string& data : inputs) {
    compressor.CompressTo(data, &out);
    EXPECT_EQ(out, Lz::CompressReference(data)) << "size=" << data.size();
    EXPECT_EQ(Lz::Compress(data), Lz::CompressReference(data));
  }
}

TEST(LzTest, WindowStraddlingMatchesRoundTrip) {
  // Matches whose source sits just inside / just outside the 64 KiB window
  // relative to the match position: phrase at offset 0, repeats placed at
  // distances straddling kWindow.
  std::string phrase = "straddle-the-window-boundary-phrase!";
  for (size_t gap : {Lz::kWindow - phrase.size() - 1, Lz::kWindow - 1,
                     Lz::kWindow, Lz::kWindow + 1, Lz::kWindow + 64}) {
    std::string data = phrase;
    data.append(gap, '\x00');
    data += phrase;
    data.append(17, 'z');
    data += phrase;
    std::string pooled = Lz::Compress(data);
    EXPECT_EQ(pooled, Lz::CompressReference(data)) << "gap=" << gap;
    auto back = Lz::Decompress(pooled);
    ASSERT_TRUE(back.ok()) << "gap=" << gap;
    EXPECT_EQ(*back, data) << "gap=" << gap;
  }
}

TEST(LzTest, CompressorReuseAcrossDecreasingSizes) {
  // A reused compressor must not leak hash-chain state from a big input
  // into a later small one (positions beyond the small input's size would
  // be read as matches → corrupt or non-reference output).
  Rng rng(41);
  Lz::Compressor compressor;
  std::string out;
  for (size_t size : {200000ul, 70000ul, 1000ul, 64ul, 5ul, 0ul}) {
    std::string data;
    data.reserve(size);
    while (data.size() < size) {
      if (rng.Bernoulli(0.5)) {
        data += "web:home:mentions:avatar|";
      } else {
        data.push_back(static_cast<char>(rng.Next64() & 0xFF));
      }
    }
    data.resize(size);
    compressor.CompressTo(data, &out);
    ASSERT_EQ(out, Lz::CompressReference(data)) << "size=" << size;
    auto back = Lz::Decompress(out);
    ASSERT_TRUE(back.ok()) << "size=" << size;
    EXPECT_EQ(*back, data) << "size=" << size;
  }
}

TEST(LzTest, CompressToReusesCapacity) {
  Lz::Compressor compressor;
  std::string out;
  Rng rng(43);
  std::string big;
  for (int i = 0; i < 100000; ++i) {
    big.push_back(static_cast<char>(rng.Next64() & 0xFF));
  }
  compressor.CompressTo(big, &out);
  const size_t cap = out.capacity();
  compressor.CompressTo("tiny tiny tiny tiny", &out);
  EXPECT_GE(out.capacity(), cap);  // capacity retained, not reallocated
  EXPECT_EQ(out, Lz::CompressReference("tiny tiny tiny tiny"));
}

TEST(LzTest, MixedContentRoundTrip) {
  Rng rng(31);
  std::string data;
  for (int block = 0; block < 50; ++block) {
    if (rng.Bernoulli(0.5)) {
      data += "the quick brown fox jumps over the lazy dog ";
    } else {
      for (int i = 0; i < 100; ++i) {
        data.push_back(static_cast<char>(rng.Next64() & 0xFF));
      }
    }
  }
  auto d = Lz::Decompress(Lz::Compress(data));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, data);
}

}  // namespace
}  // namespace unilog
