// Tests for §5.4 user modeling: n-gram language models (cross-entropy /
// perplexity), collocation extraction (PMI + Dunning LLR), and the §6
// Smith-Waterman query-by-example extension.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "nlp/alignment.h"
#include "nlp/collocations.h"
#include "nlp/ngram_model.h"

namespace unilog::nlp {
namespace {

// ---------------------------------------------------------------------------
// NgramModel

TEST(NgramModelTest, ProbabilitiesSumToOneOverVocabulary) {
  // Vocabulary {1,2,3}; model must be a proper distribution including EOS.
  NgramModel model(2, 3);
  model.TrainBatch({{1, 2, 3}, {1, 2}, {2, 3, 1}});
  SymbolSequence history = {1};
  double sum = 0;
  for (uint32_t s : {1u, 2u, 3u}) sum += model.Probability(history, s);
  sum += model.Probability(history, kEosSymbol);
  sum += model.Probability(history, kBosSymbol);  // tiny uniform mass
  // Remaining mass sits on the uniform floor spread over unseen ids; with
  // vocab_size=5 internal, the enumerated symbols carry nearly all of it.
  EXPECT_NEAR(sum, 1.0, 0.01);
}

TEST(NgramModelTest, SeenBigramMoreLikelyThanUnseen) {
  NgramModel model(2, 10);
  for (int i = 0; i < 50; ++i) {
    model.Train({1, 2});  // 1 is always followed by 2
    model.Train({3, 4});
  }
  EXPECT_GT(model.Probability({1}, 2), model.Probability({1}, 4));
  EXPECT_GT(model.Probability({1}, 2), 0.5);
}

TEST(NgramModelTest, UnseenSymbolHasNonZeroProbability) {
  NgramModel model(2, 100);
  model.Train({1, 2, 3});
  double p = model.Probability({1}, 99);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.01);
}

TEST(NgramModelTest, UnigramModelIgnoresHistory) {
  NgramModel model(1, 5);
  model.TrainBatch({{1, 1, 1, 2}});
  EXPECT_EQ(model.Probability({1}, 1), model.Probability({2}, 1));
}

TEST(NgramModelTest, CrossEntropyLowerForPredictableData) {
  // Deterministic alternation vs uniform noise.
  Rng rng(3);
  std::vector<SymbolSequence> predictable, noisy;
  for (int s = 0; s < 200; ++s) {
    SymbolSequence p, n;
    for (int i = 0; i < 20; ++i) {
      p.push_back(1 + (i % 2));
      n.push_back(1 + static_cast<uint32_t>(rng.Uniform(10)));
    }
    predictable.push_back(p);
    noisy.push_back(n);
  }
  auto train_eval = [](const std::vector<SymbolSequence>& data) {
    NgramModel model(2, 10);
    std::vector<SymbolSequence> train(data.begin(), data.begin() + 150);
    std::vector<SymbolSequence> test(data.begin() + 150, data.end());
    model.TrainBatch(train);
    return model.CrossEntropy(test).value();
  };
  EXPECT_LT(train_eval(predictable), train_eval(noisy) - 1.0);
}

TEST(NgramModelTest, HigherOrderCapturesMarkovStructure) {
  // Data with strong bigram structure: after A comes B 90% of the time.
  Rng rng(11);
  std::vector<SymbolSequence> data;
  for (int s = 0; s < 300; ++s) {
    SymbolSequence seq;
    uint32_t cur = 1 + static_cast<uint32_t>(rng.Uniform(6));
    for (int i = 0; i < 25; ++i) {
      seq.push_back(cur);
      if (cur == 1 && rng.Bernoulli(0.9)) {
        cur = 2;
      } else {
        cur = 1 + static_cast<uint32_t>(rng.Uniform(6));
      }
    }
    data.push_back(seq);
  }
  std::vector<SymbolSequence> train(data.begin(), data.begin() + 250);
  std::vector<SymbolSequence> test(data.begin() + 250, data.end());

  std::vector<double> perplexities;
  for (int n = 1; n <= 3; ++n) {
    NgramModel model(n, 6);
    model.TrainBatch(train);
    perplexities.push_back(model.Perplexity(test).value());
  }
  // Bigram beats unigram distinctly (the "temporal signal" of §5.4);
  // trigram adds little on 1st-order Markov data.
  EXPECT_LT(perplexities[1], perplexities[0] * 0.95);
  EXPECT_LT(perplexities[2], perplexities[0]);
  double bigram_gain = perplexities[0] - perplexities[1];
  double trigram_gain = perplexities[1] - perplexities[2];
  EXPECT_LT(trigram_gain, bigram_gain);
}

TEST(NgramModelTest, EmptyTestSetRejected) {
  NgramModel model(2, 5);
  model.Train({1, 2});
  EXPECT_TRUE(model.CrossEntropy({}).status().IsInvalidArgument());
}

TEST(NgramModelTest, PerplexityIsTwoToTheCrossEntropy) {
  NgramModel model(2, 5);
  model.TrainBatch({{1, 2, 3}, {2, 3, 1}});
  std::vector<SymbolSequence> test = {{1, 2}};
  double h = model.CrossEntropy(test).value();
  double ppl = model.Perplexity(test).value();
  EXPECT_NEAR(ppl, std::pow(2.0, h), 1e-9);
}

// Parameterized sweep: perplexity is finite and positive for n = 1..5.
class NgramOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(NgramOrderSweep, FinitePerplexity) {
  int n = GetParam();
  Rng rng(n);
  std::vector<SymbolSequence> data;
  for (int s = 0; s < 50; ++s) {
    SymbolSequence seq;
    for (int i = 0; i < 15; ++i) {
      seq.push_back(1 + static_cast<uint32_t>(rng.Uniform(20)));
    }
    data.push_back(seq);
  }
  NgramModel model(n, 20);
  model.TrainBatch(data);
  auto ppl = model.Perplexity(data);
  ASSERT_TRUE(ppl.ok());
  EXPECT_GT(*ppl, 1.0);
  EXPECT_LT(*ppl, 50.0);
}

INSTANTIATE_TEST_SUITE_P(Orders, NgramOrderSweep, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Collocations

TEST(CollocationTest, PlantedPairRanksTop) {
  // Symbols 1..20 uniform, but 5 is followed by 6 80% of the time.
  Rng rng(17);
  CollocationFinder finder;
  for (int s = 0; s < 500; ++s) {
    SymbolSequence seq;
    uint32_t cur = 1 + static_cast<uint32_t>(rng.Uniform(20));
    for (int i = 0; i < 30; ++i) {
      seq.push_back(cur);
      if (cur == 5 && rng.Bernoulli(0.8)) {
        cur = 6;
      } else {
        cur = 1 + static_cast<uint32_t>(rng.Uniform(20));
      }
    }
    finder.Add(seq);
  }
  auto top_pmi = finder.TopByPmi(/*min_count=*/20, /*k=*/5);
  ASSERT_FALSE(top_pmi.empty());
  EXPECT_EQ(top_pmi[0].first, 5u);
  EXPECT_EQ(top_pmi[0].second, 6u);
  EXPECT_GT(top_pmi[0].pmi, 2.0);

  auto top_llr = finder.TopByLlr(/*k=*/5);
  ASSERT_FALSE(top_llr.empty());
  EXPECT_EQ(top_llr[0].first, 5u);
  EXPECT_EQ(top_llr[0].second, 6u);
  EXPECT_GT(top_llr[0].llr, 100.0);
}

TEST(CollocationTest, IndependentPairsHaveLowScores) {
  Rng rng(23);
  CollocationFinder finder;
  for (int s = 0; s < 500; ++s) {
    SymbolSequence seq;
    for (int i = 0; i < 30; ++i) {
      seq.push_back(1 + static_cast<uint32_t>(rng.Uniform(10)));
    }
    finder.Add(seq);
  }
  for (const auto& c : finder.TopByPmi(/*min_count=*/20, /*k=*/3)) {
    EXPECT_LT(c.pmi, 0.5);
  }
}

TEST(CollocationTest, PairStatsAndCounts) {
  CollocationFinder finder;
  finder.Add({1, 2, 1, 2, 3});
  EXPECT_EQ(finder.total_bigrams(), 4u);
  Collocation c = finder.PairStats(1, 2);
  EXPECT_EQ(c.pair_count, 2u);
  EXPECT_EQ(c.first_count, 2u);   // 1 appears twice as bigram-left
  EXPECT_EQ(c.second_count, 2u);  // 2 appears twice as bigram-right
  Collocation missing = finder.PairStats(9, 9);
  EXPECT_EQ(missing.pair_count, 0u);
}

TEST(CollocationTest, MinCountFiltersRarePairs) {
  CollocationFinder finder;
  finder.Add({1, 2});  // a single rare pair with sky-high PMI
  for (int i = 0; i < 100; ++i) finder.Add({3, 4});
  auto top = finder.TopByPmi(/*min_count=*/10, /*k=*/10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 3u);
}

TEST(LlrTest, KnownBehaviours) {
  // Strong association vs no association.
  EXPECT_GT(LogLikelihoodRatio(90, 100, 10, 1000),
            LogLikelihoodRatio(10, 100, 100, 1000));
  // Identical rates → ~0.
  EXPECT_NEAR(LogLikelihoodRatio(10, 100, 100, 1000), 0.0, 1e-6);
  // Degenerate inputs do not blow up.
  EXPECT_EQ(LogLikelihoodRatio(0, 0, 5, 10), 0.0);
  EXPECT_GE(LogLikelihoodRatio(100, 100, 0, 1000), 0.0);
}

// ---------------------------------------------------------------------------
// Alignment

TEST(AlignmentTest, IdenticalSequencesAlignFully) {
  SymbolSequence a = {1, 2, 3, 4, 5};
  AlignmentResult r = LocalAlign(a, a);
  EXPECT_EQ(r.matches, 5u);
  EXPECT_EQ(r.score, 10.0);  // 5 matches x 2.0
  EXPECT_EQ(r.a_begin, 0u);
  EXPECT_EQ(r.a_end, 5u);
}

TEST(AlignmentTest, FindsSharedSubsequence) {
  // Common motif {7,8,9} embedded in different noise.
  SymbolSequence a = {1, 2, 7, 8, 9, 3};
  SymbolSequence b = {4, 7, 8, 9, 5, 6};
  AlignmentResult r = LocalAlign(a, b);
  EXPECT_GE(r.matches, 3u);
  EXPECT_GE(r.score, 6.0);
  EXPECT_EQ(r.a_begin, 2u);
  EXPECT_EQ(r.a_end, 5u);
  EXPECT_EQ(r.b_begin, 1u);
  EXPECT_EQ(r.b_end, 4u);
}

TEST(AlignmentTest, DisjointSequencesScoreZero) {
  AlignmentResult r = LocalAlign({1, 2, 3}, {4, 5, 6});
  EXPECT_EQ(r.score, 0.0);
  EXPECT_EQ(r.matches, 0u);
}

TEST(AlignmentTest, GapsTolerated) {
  SymbolSequence a = {1, 2, 3, 4};
  SymbolSequence b = {1, 2, 9, 3, 4};  // insertion of 9
  AlignmentResult r = LocalAlign(a, b);
  EXPECT_EQ(r.matches, 4u);
  EXPECT_EQ(r.score, 4 * 2.0 - 1.0);  // four matches minus one gap
}

TEST(AlignmentTest, EmptyInputs) {
  EXPECT_EQ(LocalAlign({}, {1, 2}).score, 0.0);
  EXPECT_EQ(LocalAlign({1, 2}, {}).score, 0.0);
}

TEST(AlignmentTest, QueryByExampleRanksSimilarFirst) {
  SymbolSequence example = {1, 2, 3, 4, 5};
  std::vector<SymbolSequence> candidates = {
      {9, 9, 9, 9},            // unrelated
      {1, 2, 3, 4, 5},         // identical
      {0, 1, 2, 3, 9},         // partial overlap
  };
  auto ranked = QueryByExample(example, candidates, 3);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 1u);
  EXPECT_EQ(ranked[1].first, 2u);
  EXPECT_EQ(ranked[2].first, 0u);
  EXPECT_GT(ranked[0].second, ranked[1].second);
  // k limits results.
  EXPECT_EQ(QueryByExample(example, candidates, 1).size(), 1u);
}

}  // namespace
}  // namespace unilog::nlp
