// Tests for the partitioned replicated commit log under Scribe: the
// batch-granular PartitionLog storage unit, BrokerNode produce/dedup/
// backpressure (record-at-a-time and compressed-batch paths), zk leader
// election, and the chaos suite — leader kill mid-produce, session expiry
// during election, acks=all with a replica down — each asserting the
// delivery audit stays balanced at quiescence and consumer-group offsets
// never move backwards. The batched path's invariant — payload bytes are
// compressed once at the daemon and decompressed once at warehouse
// landing — is checked with the Lz call-count probes.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "broker/fleet.h"
#include "broker/partition_log.h"
#include "common/compress.h"
#include "common/rng.h"
#include "obs/delivery_audit.h"
#include "scribe/cluster.h"
#include "scribe/log_mover.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::broker {
namespace {

constexpr TimeMs kT0 = 1345507200000;  // 2012-08-21 00:00 UTC
constexpr TimeMs kFarFuture = kT0 + 365 * 24 * kMillisPerHour;

// Decodes every batch of a read result into one flat record vector.
std::vector<Record> Flatten(const PartitionLog::ReadResult& read) {
  std::vector<Record> records;
  for (const Batch& b : read.batches) {
    std::vector<Record> decoded;
    auto n = DecodeBatch(b, &decoded);
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    for (auto& r : decoded) records.push_back(std::move(r));
  }
  return records;
}

// Frames `payloads` the way a daemon does and hand-builds a batch around
// the (optionally compressed) body. A non-empty `times` gives each record
// its own appended_at (and logged_at), for batches that straddle an hour.
Batch MakeBatch(std::string producer, uint64_t first_seq,
                const std::vector<std::string>& payloads, TimeMs appended_at,
                std::vector<TimeMs> times = {}, bool compressed = true) {
  Batch b;
  b.count = static_cast<uint32_t>(payloads.size());
  b.producer = std::move(producer);
  b.first_seq = first_seq;
  std::string body;
  for (size_t i = 0; i < payloads.size(); ++i) {
    AppendBatchFrame(&body, times.empty() ? appended_at : times[i],
                     payloads[i]);
    b.record_sizes.push_back(static_cast<uint32_t>(payloads[i].size()));
    b.payload_bytes += payloads[i].size();
  }
  b.min_appended_at = times.empty() ? appended_at : times.front();
  b.max_appended_at = times.empty() ? appended_at : times.back();
  b.record_times = std::move(times);
  b.compressed = compressed;
  b.body = std::make_shared<const std::string>(
      compressed ? Lz::Compress(body) : std::move(body));
  return b;
}

// Frames + compresses a produce batch exactly as ScribeDaemon does.
Status ProduceBatchOf(BrokerNode* leader, const std::string& category,
                      int partition, const std::string& producer,
                      uint64_t first_seq,
                      const std::vector<std::string>& payloads,
                      TimeMs logged_at, ProduceAck* ack) {
  ProduceBatchRequest req;
  req.first_seq = first_seq;
  req.count = static_cast<uint32_t>(payloads.size());
  std::string body;
  for (const std::string& p : payloads) {
    AppendBatchFrame(&body, logged_at, p);
    req.record_sizes.push_back(static_cast<uint32_t>(p.size()));
  }
  req.body = Lz::Compress(body);
  req.compressed = true;
  return leader->ProduceBatch(category, partition, producer, std::move(req),
                              ack);
}

// ---------------------------------------------------------------------------
// PartitionLog

TEST(PartitionLogTest, AppendAssignsDenseOffsets) {
  PartitionLog log;
  EXPECT_EQ(log.Append("h1", 1, kT0, kT0, "a").base_offset, 0u);
  EXPECT_EQ(log.Append("h1", 2, kT0, kT0, "bb").base_offset, 1u);
  EXPECT_EQ(log.Append("h2", 1, kT0, kT0, "ccc").base_offset, 2u);
  EXPECT_EQ(log.end_offset(), 3u);
  EXPECT_EQ(log.begin_offset(), 0u);
  EXPECT_EQ(log.entry_count(), 3u);
  EXPECT_EQ(log.byte_size(), 6u);
  EXPECT_EQ(log.batch_count(), 3u);
}

TEST(PartitionLogTest, AppendBatchCoversDenseRange) {
  PartitionLog log;
  const Batch& b = log.AppendBatch(MakeBatch("h1", 1, {"aa", "bb", "cc"}, kT0));
  EXPECT_EQ(b.base_offset, 0u);
  EXPECT_EQ(b.end_offset(), 3u);
  EXPECT_EQ(b.last_seq(), 3u);
  EXPECT_EQ(log.end_offset(), 3u);
  EXPECT_EQ(log.entry_count(), 3u);
  EXPECT_EQ(log.batch_count(), 1u);
  // byte_size stays in uncompressed payload terms — the audit and
  // backpressure unit; the stored (blob) accounting is separate.
  EXPECT_EQ(log.byte_size(), 6u);
  EXPECT_EQ(log.stored_byte_size(), b.stored_bytes());
  std::vector<Record> records = Flatten(log.ReadFrom(0, 3, kFarFuture));
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1].offset, 1u);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(records[1].payload, "bb");
}

TEST(PartitionLogTest, TrimRaisesBeginAndNeverLowers) {
  PartitionLog log;
  for (int i = 0; i < 5; ++i) log.Append("h", i + 1, kT0, kT0, "xy");
  log.TrimTo(3);
  EXPECT_EQ(log.begin_offset(), 3u);
  EXPECT_EQ(log.entry_count(), 2u);
  EXPECT_EQ(log.byte_size(), 4u);
  log.TrimTo(1);  // no-op: begin never moves backwards
  EXPECT_EQ(log.begin_offset(), 3u);
  auto read = log.ReadFrom(0, log.end_offset(), kFarFuture);
  std::vector<Record> records = Flatten(read);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].offset, 3u);
  EXPECT_EQ(read.next_offset, 5u);
}

TEST(PartitionLogTest, RetentionNeverSplitsABatch) {
  PartitionLog log;
  log.AppendBatch(MakeBatch("h", 1, {"aaaa", "bbbb", "cccc", "dddd"}, kT0));
  log.AppendBatch(MakeBatch("h", 5, {"eeee", "ffff"}, kT0));
  ASSERT_EQ(log.end_offset(), 6u);
  const uint64_t stored_before = log.stored_byte_size();

  // Mid-batch trim: the straddling batch is kept whole — nothing drops,
  // and begin stays below the batch (a blob is never split or rewritten).
  log.TrimTo(2);
  EXPECT_EQ(log.begin_offset(), 0u);
  EXPECT_EQ(log.batch_count(), 2u);
  EXPECT_EQ(log.entry_count(), 6u);
  EXPECT_EQ(log.stored_byte_size(), stored_before);

  // Offset 5 covers the first batch entirely and cuts into the second:
  // only the first drops; begin stops at the retained batch's base.
  log.TrimTo(5);
  EXPECT_EQ(log.begin_offset(), 4u);
  EXPECT_EQ(log.batch_count(), 1u);
  EXPECT_EQ(log.entry_count(), 2u);
  EXPECT_EQ(log.byte_size(), 8u);

  log.TrimTo(6);
  EXPECT_EQ(log.begin_offset(), 6u);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.stored_byte_size(), 0u);
  EXPECT_EQ(log.byte_size(), 0u);
}

TEST(PartitionLogTest, ReadFromStopsAtTimestampLimit) {
  PartitionLog log;
  log.Append("h", 1, kT0, kT0, "a");
  log.Append("h", 2, kT0 + 10, kT0, "b");
  log.Append("h", 3, kT0 + 20, kT0, "c");
  auto read = log.ReadFrom(0, log.end_offset(), kT0 + 20);
  EXPECT_EQ(read.record_count, 2u);
  // next_offset marks the first excluded record so consumption resumes
  // exactly at the hour boundary.
  EXPECT_EQ(read.next_offset, 2u);
}

TEST(PartitionLogTest, HourBoundaryMidBatchSlicesWithoutDecompressingTail) {
  PartitionLog log;
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(std::string(120, static_cast<char>('a' + i)));
  }
  // Two records inside the hour, two past it — one compressed blob.
  std::vector<TimeMs> times{kT0 + 10, kT0 + 20, kT0 + kMillisPerHour + 5,
                            kT0 + kMillisPerHour + 6};
  log.AppendBatch(MakeBatch("h", 1, payloads, kT0, times));
  const uint64_t full_payload = log.byte_size();  // 480

  auto read = log.ReadFrom(0, log.end_offset(), kT0 + kMillisPerHour);
  ASSERT_EQ(read.batches.size(), 1u);
  EXPECT_EQ(read.record_count, 2u);
  // Clean mid-batch resumption point at the hour boundary.
  EXPECT_EQ(read.next_offset, 2u);

  std::vector<Record> head;
  auto materialized = DecodeBatch(read.batches[0], &head);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head[0].payload, payloads[0]);
  EXPECT_EQ(head[1].payload, payloads[1]);
  EXPECT_EQ(head[1].appended_at, kT0 + 20);
  // Token-granular incremental decode: the hour's two records materialize
  // but the blob's tail frames stay compressed.
  EXPECT_GE(*materialized, 240u);
  EXPECT_LT(*materialized, full_payload);

  // Resuming at the boundary decodes exactly the tail records via the
  // slice's grown skip_frames — same shared blob, no rewrite.
  auto rest = log.ReadFrom(read.next_offset, log.end_offset(), kFarFuture);
  ASSERT_EQ(rest.batches.size(), 1u);
  EXPECT_EQ(rest.batches[0].skip_frames, 2u);
  EXPECT_EQ(rest.batches[0].body, read.batches[0].body);
  std::vector<Record> tail;
  ASSERT_TRUE(DecodeBatch(rest.batches[0], &tail).ok());
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].offset, 2u);
  EXPECT_EQ(tail[0].seq, 3u);
  EXPECT_EQ(tail[0].payload, payloads[2]);
  EXPECT_EQ(tail[1].payload, payloads[3]);
}

TEST(PartitionLogTest, AdvanceToOpensExplicitGap) {
  PartitionLog log;
  log.Append("h", 1, kT0, kT0, "a");
  log.AdvanceTo(10);  // entries 1..9 died with the old leader
  EXPECT_EQ(log.end_offset(), 10u);
  EXPECT_EQ(log.Append("h", 2, kT0, kT0, "b").base_offset, 10u);
  // Reading across the gap skips to the next retained record.
  auto read = log.ReadFrom(0, log.end_offset(), kFarFuture);
  std::vector<Record> records = Flatten(read);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].offset, 10u);
  EXPECT_EQ(read.next_offset, 11u);
}

TEST(PartitionLogTest, MirrorRejectsCoveredRangesAndTracksWatermarks) {
  PartitionLog log;
  log.Append("h", 1, kT0, kT0, "a");
  Batch dup = MakeBatch("h", 1, {"zz"}, kT0);
  dup.base_offset = 0;
  EXPECT_FALSE(log.AppendMirror(dup));  // already covered locally
  Batch next = MakeBatch("h", 9, {"b"}, kT0);
  next.base_offset = 5;  // mirrors a leader gap
  EXPECT_TRUE(log.AppendMirror(next));
  EXPECT_EQ(log.end_offset(), 6u);
  EXPECT_EQ(log.ProducerHighWatermarks(6)["h"], 9u);
  // Batch-granular watermark arithmetic: a `below` cutting into a batch
  // counts only the covered prefix of its dense seq run.
  Batch run = MakeBatch("h", 10, {"c", "d", "e"}, kT0);
  run.base_offset = 6;
  EXPECT_TRUE(log.AppendMirror(run));
  EXPECT_EQ(log.ProducerHighWatermarks(8)["h"], 11u);
  EXPECT_EQ(log.ProducerHighWatermarks(9)["h"], 12u);
}

// ---------------------------------------------------------------------------
// BrokerNode + fleet unit behavior

struct FleetHarness {
  Simulator sim{kT0};
  zk::ZooKeeper zk{&sim};
  obs::MetricsRegistry metrics{&sim};
  std::unique_ptr<BrokerFleet> fleet;

  explicit FleetHarness(int nodes, BrokerOptions options) {
    std::vector<std::string> ids;
    for (int i = 0; i < nodes; ++i) ids.push_back("brk" + std::to_string(i));
    fleet = std::make_unique<BrokerFleet>(&sim, &zk, "dc1", std::move(ids),
                                          options, &metrics);
    EXPECT_TRUE(fleet->Start().ok());
  }

  BrokerNode* Leader(const std::string& category, int partition) {
    return fleet->FindLeader(category, partition);
  }

  Status ProduceOne(const std::string& category, int partition,
                    const std::string& producer, uint64_t seq,
                    const std::string& payload, ProduceAck* ack = nullptr) {
    ProduceAck local;
    std::vector<ProduceItem> items{ProduceItem{seq, sim.Now(), payload}};
    BrokerNode* leader = Leader(category, partition);
    if (leader == nullptr) return Status::Unavailable("leaderless");
    return leader->Produce(category, partition, producer, items,
                           ack != nullptr ? ack : &local);
  }
};

TEST(BrokerNodeTest, AssignedReplicasAreDistinctAndRotate) {
  std::vector<std::string> ids{"a", "b", "c", "d"};
  auto r1 = BrokerNode::AssignedReplicas(ids, "clicks", 0, 2);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_NE(r1[0], r1[1]);
  auto r2 = BrokerNode::AssignedReplicas(ids, "clicks", 1, 2);
  // Consecutive partitions rotate one step through the fleet.
  EXPECT_EQ(r2[0], r1[1]);
  // Replication can never exceed the fleet size.
  EXPECT_EQ(BrokerNode::AssignedReplicas(ids, "x", 0, 9).size(), 4u);
}

TEST(BrokerNodeTest, ProduceDedupsOnProducerSeq) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  ProduceAck ack;
  std::vector<ProduceItem> batch{ProduceItem{1, kT0, "a"},
                                 ProduceItem{2, kT0, "b"},
                                 ProduceItem{3, kT0, "c"}};
  BrokerNode* leader = h.Leader("clicks", 0);
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(leader->Produce("clicks", 0, "host1", batch, &ack).ok());
  EXPECT_EQ(ack.accepted, 3u);
  EXPECT_EQ(ack.deduped, 0u);

  // A crash-retry resend of the same (producer, seq) batch must not
  // re-append or re-count: entries_sent can never inflate past logged.
  ASSERT_TRUE(leader->Produce("clicks", 0, "host1", batch, &ack).ok());
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_EQ(ack.deduped, 3u);
  const BrokerNodeStats stats = leader->stats();
  EXPECT_EQ(stats.entries_produced, 3u);
  EXPECT_EQ(stats.entries_duplicate, 3u);
  auto read = leader->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Flatten(*read).size(), 3u);
}

TEST(BrokerNodeTest, BatchedProduceDedupsAcrossBatchBoundaries) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());
  BrokerNode* leader = h.Leader("clicks", 0);
  ASSERT_NE(leader, nullptr);
  const uint64_t decompress_base = Lz::DecompressCallCount();

  auto payload = [](uint64_t seq) { return "payload-" + std::to_string(seq); };
  std::vector<std::string> first;
  for (uint64_t s = 1; s <= 5; ++s) first.push_back(payload(s));
  ProduceAck ack;
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 1, first, kT0, &ack).ok());
  EXPECT_EQ(ack.accepted, 5u);
  EXPECT_EQ(ack.deduped, 0u);

  // A crash-retry whose batch GREW while the daemon waited: seqs 3..8
  // partially overlap the appended run. The overlap must dedup and the
  // fresh tail must append — without splitting or rewriting the blob.
  std::vector<std::string> retried;
  for (uint64_t s = 3; s <= 8; ++s) retried.push_back(payload(s));
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 3, retried, kT0, &ack)
          .ok());
  EXPECT_EQ(ack.accepted, 3u);
  EXPECT_EQ(ack.deduped, 3u);

  // A fully covered resend appends nothing.
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 1, first, kT0, &ack).ok());
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_EQ(ack.deduped, 5u);

  const BrokerNodeStats stats = leader->stats();
  EXPECT_EQ(stats.entries_produced, 8u);
  EXPECT_EQ(stats.entries_duplicate, 8u);
  EXPECT_EQ(stats.log_entries, 8u);
  // The overlap was trimmed in metadata only: nothing on the produce path
  // ever decompressed a blob.
  EXPECT_EQ(Lz::DecompressCallCount(), decompress_base);

  auto read = leader->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->batches.size(), 2u);
  EXPECT_EQ(read->batches[1].skip_frames, 3u);
  std::vector<Record> records = Flatten(*read);
  ASSERT_EQ(records.size(), 8u);
  for (uint64_t s = 1; s <= 8; ++s) {
    EXPECT_EQ(records[s - 1].offset, s - 1);
    EXPECT_EQ(records[s - 1].seq, s);
    EXPECT_EQ(records[s - 1].payload, payload(s));
  }
}

TEST(BrokerNodeTest, AckLossBatchedResendResolvesWithoutSplit) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());
  BrokerNode* leader = h.Leader("clicks", 0);
  ASSERT_NE(leader, nullptr);

  auto payload = [](uint64_t seq) { return "p" + std::to_string(seq); };
  leader->InjectAckLossOnce();
  ProduceAck ack;
  std::vector<std::string> lost{payload(1), payload(2), payload(3)};
  Status st = ProduceBatchOf(leader, "clicks", 0, "host1", 1, lost, kT0, &ack);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  // Appended but unacknowledged: invisible to consumers until the resend
  // resolves the batch's fate.
  auto hidden = leader->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(hidden.ok());
  EXPECT_EQ(hidden->record_count, 0u);

  // The retried batch grew by two entries while the daemon backed off.
  std::vector<std::string> resend;
  for (uint64_t s = 1; s <= 5; ++s) resend.push_back(payload(s));
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 1, resend, kT0, &ack).ok());
  EXPECT_EQ(ack.accepted, 5u);  // all five acknowledged for the first time
  EXPECT_EQ(ack.deduped, 3u);   // the head was already in the log

  const BrokerNodeStats stats = leader->stats();
  EXPECT_EQ(stats.entries_produced, 5u);
  EXPECT_EQ(stats.log_entries, 5u);
  auto read = leader->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->batches.size(), 2u);  // original + head-trimmed tail
  EXPECT_EQ(read->batches[1].skip_frames, 3u);
  std::vector<Record> records = Flatten(*read);
  ASSERT_EQ(records.size(), 5u);
  for (uint64_t s = 1; s <= 5; ++s) {
    EXPECT_EQ(records[s - 1].seq, s);
    EXPECT_EQ(records[s - 1].payload, payload(s));
  }
}

TEST(BrokerNodeTest, RetentionGaugesTrackCompressedAndUncompressedBytes) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());
  BrokerNode* leader = h.Leader("clicks", 0);
  ASSERT_NE(leader, nullptr);

  // Highly compressible payloads: the stored blob is far smaller than the
  // uncompressed accounting unit.
  std::vector<std::string> b1, b2;
  for (int i = 0; i < 4; ++i) {
    b1.push_back(std::string(256, static_cast<char>('a' + i)));
    b2.push_back(std::string(256, static_cast<char>('e' + i)));
  }
  ProduceAck ack;
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 1, b1, kT0, &ack).ok());
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 5, b2, kT0, &ack).ok());

  BrokerNodeStats stats = leader->stats();
  EXPECT_EQ(stats.retained_bytes_uncompressed, 2048u);
  EXPECT_EQ(stats.retained_bytes_uncompressed, stats.log_bytes);
  EXPECT_GT(stats.retained_bytes_compressed, 0u);
  EXPECT_LT(stats.retained_bytes_compressed, stats.retained_bytes_uncompressed);

  // Committing into the middle of the second batch trims only the first:
  // retention is batch-granular and both gauges drop by exactly batch one.
  ASSERT_TRUE(h.fleet->CommitOffset("log-mover", "clicks", 0, 6, 6, 1536).ok());
  stats = leader->stats();
  EXPECT_EQ(stats.retained_bytes_uncompressed, 1024u);
  EXPECT_EQ(stats.log_entries, 4u);

  auto read = leader->ConsumerFetch("clicks", 0, 6, kFarFuture);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(h.fleet
                  ->CommitOffset("log-mover", "clicks", 0, read->next_offset,
                                 read->record_count, 512)
                  .ok());
  stats = leader->stats();
  EXPECT_EQ(stats.retained_bytes_compressed, 0u);
  EXPECT_EQ(stats.retained_bytes_uncompressed, 0u);
  EXPECT_EQ(stats.log_entries, 0u);
}

TEST(BrokerNodeTest, GroupCommitShipsLaggingFollowerEverythingInOneRound) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.acks = kAcksAll;
  options.min_insync_replicas = 1;
  // Idle the periodic pull path so only produce-driven group commits move
  // data in this test.
  options.replica_fetch_interval_ms = 10 * kMillisPerMinute;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());
  BrokerNode* leader = h.Leader("clicks", 0);
  ASSERT_NE(leader, nullptr);
  BrokerNode* follower =
      h.fleet->node(0) == leader ? h.fleet->node(1) : h.fleet->node(0);

  ProduceAck ack;
  ASSERT_TRUE(
      ProduceBatchOf(leader, "clicks", 0, "host1", 1, {"a1", "a2"}, kT0, &ack)
          .ok());
  // acks=all pipelines the mirror inside the produce call.
  EXPECT_EQ(follower->MirrorEndOffset("clicks", 0), 2u);
  EXPECT_EQ(leader->stats().replication_rounds, 1u);

  follower->Crash();
  h.sim.RunUntil(kT0 + kMillisPerSecond);
  ASSERT_EQ(h.Leader("clicks", 0), leader);
  // min_insync=1: the leader keeps accepting while the peer is down, and
  // the follower's backlog accumulates.
  ASSERT_TRUE(ProduceBatchOf(leader, "clicks", 0, "host1", 3, {"b1", "b2"},
                             h.sim.Now(), &ack)
                  .ok());
  ASSERT_TRUE(ProduceBatchOf(leader, "clicks", 0, "host1", 5, {"c1", "c2"},
                             h.sim.Now(), &ack)
                  .ok());
  EXPECT_EQ(leader->stats().replication_rounds, 1u);  // no live peer

  ASSERT_TRUE(follower->Start().ok());
  h.sim.RunUntil(kT0 + 2 * kMillisPerSecond);
  EXPECT_EQ(follower->MirrorEndOffset("clicks", 0), 0u);  // restarted empty

  // The next produce's group-commit round carries the whole backlog plus
  // the new batch in ONE MirrorBatches call.
  ASSERT_TRUE(ProduceBatchOf(leader, "clicks", 0, "host1", 7, {"d1", "d2"},
                             h.sim.Now(), &ack)
                  .ok());
  EXPECT_EQ(leader->stats().replication_rounds, 2u);
  EXPECT_EQ(follower->MirrorEndOffset("clicks", 0), 8u);
  uint64_t trim_to = 0;
  auto mirrored = follower->ReplicaFetch("clicks", 0, 0, &trim_to);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->record_count, 8u);
  std::vector<Record> records = Flatten(*mirrored);
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(records.back().seq, 8u);
}

TEST(BrokerNodeTest, BackpressureThrottlesInsteadOfDropping) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  options.partition_inflight_limit_bytes = 8;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 1, "0123456789").ok());
  // The retained log is past the window: the next produce is pushed back,
  // not silently dropped-oldest.
  Status st = h.ProduceOne("clicks", 0, "host1", 2, "x");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(h.Leader("clicks", 0)->stats().throttled_backpressure, 1u);

  // Consuming (and committing) drains the window and produce resumes.
  auto read = h.Leader("clicks", 0)->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(h.fleet
                  ->CommitOffset("log-mover", "clicks", 0, read->next_offset,
                                 read->record_count, 10)
                  .ok());
  EXPECT_TRUE(h.ProduceOne("clicks", 0, "host1", 2, "x").ok());
}

TEST(BrokerNodeTest, FailoverElectsMostCaughtUpReplica) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.replica_fetch_interval_ms = 500;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  BrokerNode* first = h.Leader("clicks", 0);
  ASSERT_NE(first, nullptr);
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", seq, "payload").ok());
  }
  // Let the follower mirror, then kill the leader.
  h.sim.RunUntil(kT0 + 2 * kMillisPerSecond);
  first->Crash();
  h.sim.RunUntil(kT0 + 3 * kMillisPerSecond);

  BrokerNode* second = h.Leader("clicks", 0);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second, first);
  EXPECT_TRUE(second->IsLeader("clicks", 0));
  // Everything was replicated before the crash: no failover loss, and the
  // full range stays consumable from the new leader.
  EXPECT_EQ(second->stats().entries_lost_failover, 0u);
  auto read = second->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->record_count, 10u);
  // The new leader inherits the idempotence table: the old producer's
  // seqs stay deduped.
  ProduceAck ack;
  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 10, "payload", &ack).ok());
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_EQ(ack.deduped, 1u);
}

TEST(BrokerNodeTest, UnreplicatedAckedEntriesAreChargedToFailoverLoss) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.replica_fetch_interval_ms = 500;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  BrokerNode* first = h.Leader("clicks", 0);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 1, "replicated").ok());
  h.sim.RunUntil(kT0 + 2 * kMillisPerSecond);  // follower catches up
  // Acked but never fetched by the follower: dies with the leader.
  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 2, "unreplicated").ok());
  first->Crash();
  h.sim.RunUntil(kT0 + 3 * kMillisPerSecond);

  BrokerNode* second = h.Leader("clicks", 0);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->stats().entries_lost_failover, 1u);
  // The lost offset is an explicit gap, not a silent hole: consumption
  // resumes past it.
  auto read = second->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->record_count, 1u);
  EXPECT_EQ(read->next_offset, 2u);
}

TEST(BrokerNodeTest, AcksAllRejectsBelowMinInsync) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.acks = kAcksAll;
  options.min_insync_replicas = 2;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 1, "a").ok());
  // Synchronous replication: the follower already holds the record.
  BrokerNode* follower = h.fleet->node(0)->IsLeader("clicks", 0)
                             ? h.fleet->node(1)
                             : h.fleet->node(0);
  uint64_t trim_to = 0;
  auto mirrored = follower->ReplicaFetch("clicks", 0, 0, &trim_to);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->record_count, 1u);

  follower->Crash();
  h.sim.RunUntil(kT0 + kMillisPerSecond);
  Status st = h.ProduceOne("clicks", 0, "host1", 2, "b");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(h.Leader("clicks", 0)->stats().insufficient_replicas, 1u);
}

// ---------------------------------------------------------------------------
// Cluster-level chaos suite

scribe::ClusterTopology BrokerTopology(int brokers, BrokerOptions options) {
  scribe::ClusterTopology topology;
  topology.datacenters = {"dc1"};
  topology.daemons_per_dc = 4;
  topology.brokers_per_dc = brokers;
  topology.broker_options = options;
  return topology;
}

// Drives a steady two-category workload over [from, until).
void ScheduleWorkload(Simulator* sim, scribe::ScribeCluster* cluster,
                      TimeMs from, TimeMs until) {
  for (TimeMs t = from; t < until; t += 5 * kMillisPerSecond) {
    sim->At(t, [cluster] {
      for (int i = 0; i < 10; ++i) {
        cluster->Log(0, scribe::LogEntry{i % 2 == 0 ? "clicks" : "search",
                                         "message-" + std::to_string(i)});
      }
    });
  }
}

// Samples consumer-group offsets every 30 s and records any regression.
class OffsetMonotonicityProbe {
 public:
  OffsetMonotonicityProbe(Simulator* sim, scribe::ScribeCluster* cluster,
                          int num_partitions, TimeMs until)
      : sim_(sim), cluster_(cluster), num_partitions_(num_partitions) {
    Schedule(until);
  }

  bool violated() const { return violated_; }

 private:
  void Schedule(TimeMs until) {
    sim_->After(30 * kMillisPerSecond, [this, until] {
      Sample();
      if (sim_->Now() < until) Schedule(until);
    });
  }

  void Sample() {
    for (const char* category : {"clicks", "search"}) {
      for (int p = 0; p < num_partitions_; ++p) {
        uint64_t off =
            cluster_->fleet(0)->CommittedOffset("log-mover", category, p);
        uint64_t& prev = last_[{category, p}];
        if (off < prev) violated_ = true;
        prev = off;
      }
    }
  }

  Simulator* sim_;
  scribe::ScribeCluster* cluster_;
  int num_partitions_;
  std::map<std::pair<std::string, int>, uint64_t> last_;
  bool violated_ = false;
};

// Every live-replica partition must have exactly one leader at quiescence.
void ExpectExactlyOneLeader(scribe::ScribeCluster* cluster,
                            int num_partitions) {
  for (const char* category : {"clicks", "search"}) {
    for (int p = 0; p < num_partitions; ++p) {
      int leaders = 0;
      for (size_t b = 0; b < cluster->broker_count(0); ++b) {
        if (cluster->broker(0, b)->alive() &&
            cluster->broker(0, b)->IsLeader(category, p)) {
          ++leaders;
        }
      }
      EXPECT_EQ(leaders, 1) << category << "/" << p;
    }
  }
}

// Runs well past the hour close so daemon queues, broker partitions, and
// the mover all drain; the workload must end inside the first hour.
void DrainToQuiescence(Simulator* sim) {
  sim->RunUntil(kT0 + kMillisPerHour + 20 * kMillisPerMinute);
}

TEST(BrokerChaosTest, LeaderKillMidProduceKeepsAuditBalanced) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/42);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  // Mid-produce: lose an ack (forcing an idempotent resend), then kill the
  // node outright; restart it later so every partition regains both
  // replicas before the drain.
  sim.At(kT0 + 5 * kMillisPerMinute, [&] {
    BrokerNode* leader = cluster.fleet(0)->FindLeader("clicks", 0);
    ASSERT_NE(leader, nullptr);
    leader->InjectAckLossOnce();
  });
  sim.At(kT0 + 7 * kMillisPerMinute, [&] {
    BrokerNode* leader = cluster.fleet(0)->FindLeader("clicks", 0);
    ASSERT_NE(leader, nullptr);
    leader->Crash();
  });
  sim.At(kT0 + 20 * kMillisPerMinute, [&] {
    for (size_t b = 0; b < cluster.broker_count(0); ++b) {
      if (!cluster.broker(0, b)->alive()) {
        ASSERT_TRUE(cluster.RestartBroker(0, b).ok());
      }
    }
  });

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  EXPECT_EQ(snap.in_flight_daemons, 0u) << snap.ToString();
  // Quiescent identity with drift zero: everything logged is warehoused or
  // in a named loss channel.
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons +
                             snap.lost_unreplicated);
  // The injected ack loss forced at least one dedup resend.
  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.entries_dup_resends, 0u);
  EXPECT_GT(totals.broker_elections, 0u);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);
}

// The batched-path variant of leader failover: the daemon's compressed
// produce batches are mid-flight (and one mid-batch ack is lost) when the
// leader dies. The blobs must survive failover intact — re-elected leaders
// rebuild watermarks from batch metadata, mirrors share blobs — and the Lz
// probes must show the payload was decompressed exactly once, at warehouse
// landing.
TEST(BrokerChaosTest, LeaderFailoverMidBatchDecompressesOnlyAtLanding) {
  Lz::ResetCompressionProbes();
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/1234);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  sim.At(kT0 + 5 * kMillisPerMinute, [&] {
    BrokerNode* leader = cluster.fleet(0)->FindLeader("search", 2);
    ASSERT_NE(leader, nullptr);
    leader->InjectAckLossOnce();  // a batch resend with an overlapping head
  });
  sim.At(kT0 + 5 * kMillisPerMinute + 2 * kMillisPerSecond, [&] {
    BrokerNode* leader = cluster.fleet(0)->FindLeader("search", 2);
    if (leader != nullptr) leader->Crash();
  });
  sim.At(kT0 + 18 * kMillisPerMinute, [&] {
    for (size_t b = 0; b < cluster.broker_count(0); ++b) {
      if (!cluster.broker(0, b)->alive()) {
        ASSERT_TRUE(cluster.RestartBroker(0, b).ok());
      }
    }
  });

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons +
                             snap.lost_unreplicated);
  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.entries_dup_resends, 0u);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);

  // The decompress-count probe: a broker-tier datacenter stages nothing,
  // so the only legal decompressions in the whole run are the mover's
  // batch decodes at warehouse landing — append, replication, failover
  // recovery, and fetch never opened a blob.
  const scribe::LogMoverStats mstats = cluster.mover()->stats();
  EXPECT_GT(mstats.broker_batches_decoded, 0u);
  EXPECT_EQ(Lz::DecompressCallCount(), mstats.broker_batches_decoded);
}

TEST(BrokerChaosTest, SessionExpiryDuringElectionLosesNothing) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/7);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  // Expire the current leader's session mid-stream — its ephemeral
  // candidates vanish (peers campaign) while its logs stay intact — and a
  // second expiry shortly after hits the re-election window itself.
  for (TimeMs at : {kT0 + 5 * kMillisPerMinute,
                    kT0 + 5 * kMillisPerMinute + kMillisPerSecond}) {
    sim.At(at, [&] {
      BrokerNode* leader = cluster.fleet(0)->FindLeader("search", 1);
      if (leader == nullptr) return;  // mid-election: nothing to expire
      for (size_t b = 0; b < cluster.broker_count(0); ++b) {
        if (cluster.broker(0, b) == leader) {
          ASSERT_TRUE(cluster.ExpireBrokerSession(0, b).ok());
        }
      }
    });
  }

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  // Session expiry is not a crash: no log was lost anywhere.
  EXPECT_EQ(snap.lost_unreplicated, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);
}

TEST(BrokerChaosTest, AcksAllWithReplicaDownLosesNoAckedEntry) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  options.acks = kAcksAll;
  options.min_insync_replicas = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/99);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  // One replica down: partitions it backs fall below min_insync and
  // producers are pushed back (backpressure), not acknowledged into a
  // single point of failure. Acked entries always exist on both replicas.
  sim.At(kT0 + 3 * kMillisPerMinute, [&] { cluster.CrashBroker(0, 1); });
  sim.At(kT0 + 9 * kMillisPerMinute, [&] {
    ASSERT_TRUE(cluster.RestartBroker(0, 1).ok());
  });

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  // The acks=all guarantee: zero acknowledged entries lost, ever.
  EXPECT_EQ(snap.lost_unreplicated, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons);
  // The outage exercised the pushback path.
  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.produce_throttled, 0u);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);
}

// Property: across seeded crash/ack-loss schedules — on the batched AND
// the record-at-a-time produce path — a daemon's entries_sent (unique
// acknowledged sends) never exceeds its entries_logged: resends are deduped
// on (producer, seq), batch overlap included, so crash-retry cannot inflate
// delivery.
TEST(BrokerPropertyTest, CrashRetryNeverInflatesSentPastLogged) {
  struct SweepCase {
    uint64_t seed;
    bool batched;
  };
  for (const SweepCase sweep : {SweepCase{1, true}, SweepCase{2, true},
                                SweepCase{3, true}, SweepCase{1, false}}) {
    const uint64_t seed = sweep.seed;
    Simulator sim(kT0);
    BrokerOptions options;
    options.num_partitions = 4;
    options.replication_factor = 2;
    scribe::ScribeOptions scribe_options;
    scribe_options.broker_batched_produce = sweep.batched;
    scribe::LogMoverOptions mover_options;
    scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                  scribe_options, mover_options, seed);
    ASSERT_TRUE(cluster.Start().ok());

    ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                     kT0 + 12 * kMillisPerMinute);
    // An ack loss plus a crash every two minutes, rotating targets.
    for (int round = 0; round < 4; ++round) {
      TimeMs at = kT0 + (2 + 2 * round) * kMillisPerMinute;
      sim.At(at, [&cluster, round] {
        BrokerNode* leader =
            cluster.fleet(0)->FindLeader(round % 2 == 0 ? "clicks" : "search",
                                         round % 4);
        if (leader != nullptr) leader->InjectAckLossOnce();
      });
      sim.At(at + 30 * kMillisPerSecond, [&cluster, round] {
        size_t victim = static_cast<size_t>(round) % cluster.broker_count(0);
        if (cluster.broker(0, victim)->alive()) {
          cluster.CrashBroker(0, victim);
        }
      });
      sim.At(at + 90 * kMillisPerSecond, [&cluster] {
        for (size_t b = 0; b < cluster.broker_count(0); ++b) {
          if (!cluster.broker(0, b)->alive()) {
            ASSERT_TRUE(cluster.RestartBroker(0, b).ok());
          }
        }
      });
    }

    // Invariant checked while the chaos is still in flight, not only at
    // quiescence.
    for (TimeMs t = kT0 + kMillisPerMinute; t < kT0 + 14 * kMillisPerMinute;
         t += kMillisPerMinute) {
      sim.At(t, [&cluster, seed] {
        for (size_t d = 0; d < cluster.daemon_count(0); ++d) {
          const scribe::DaemonStats s = cluster.daemon(0, d)->stats();
          ASSERT_LE(s.entries_sent, s.entries_logged) << "seed " << seed;
        }
      });
    }

    DrainToQuiescence(&sim);

    obs::DeliveryAudit audit(&cluster);
    const obs::DeliverySnapshot snap = audit.Snapshot();
    EXPECT_TRUE(snap.Balanced())
        << "seed " << seed << (sweep.batched ? " batched" : " unbatched")
        << ": " << snap.ToString();
    EXPECT_EQ(snap.in_flight_broker, 0u)
        << "seed " << seed << ": " << snap.ToString();
    for (size_t d = 0; d < cluster.daemon_count(0); ++d) {
      const scribe::DaemonStats s = cluster.daemon(0, d)->stats();
      EXPECT_LE(s.entries_sent, s.entries_logged);
    }
  }
}

// The broker-consumed warehouse hour is indistinguishable downstream: data
// lands at /logs/<category>/YYYY/MM/DD/HH as framed parts, same as the
// aggregator path — and the batched delivery path decompressed each blob
// exactly once, at landing.
TEST(BrokerClusterTest, WarehouseLayoutUnchangedDownstream) {
  Lz::ResetCompressionProbes();
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 2;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(2, options),
                                scribe_options, mover_options, /*seed=*/5);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 5 * kMillisPerMinute);
  DrainToQuiescence(&sim);

  EXPECT_TRUE(cluster.warehouse()->Exists("/logs/clicks/2012/08/21/00"));
  EXPECT_TRUE(cluster.warehouse()->Exists("/logs/search/2012/08/21/00"));
  auto files = cluster.warehouse()->ListRecursive("/logs/clicks/2012/08/21/00");
  ASSERT_TRUE(files.ok());
  EXPECT_FALSE(files->empty());

  obs::DeliveryAudit audit(&cluster);
  EXPECT_TRUE(audit.Check().ok());
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_EQ(snap.logged, snap.warehoused);  // no faults: full delivery

  // Single-decompression invariant on the fault-free path too.
  const scribe::LogMoverStats mstats = cluster.mover()->stats();
  EXPECT_GT(mstats.broker_batches_decoded, 0u);
  EXPECT_EQ(Lz::DecompressCallCount(), mstats.broker_batches_decoded);
}

// Session-expiry storm at fleet scale: 120 daemons funnel into a 5-broker
// tier while three seeded storms each expire a random run of broker
// sessions at 250 ms spacing. Expiry is not a crash — the logs survive —
// so the drain must deliver everything, every partition must end with
// exactly one leader, and re-election/rediscovery churn must stay bounded
// (storms re-elect displaced partitions, not a thundering herd).
TEST(BrokerChaosTest, SessionExpiryStormAtScaleConvergesBounded) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ClusterTopology topology = BrokerTopology(5, options);
  topology.daemons_per_dc = 120;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, topology, scribe_options,
                                mover_options, /*seed=*/2026);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  Rng rng(99);
  int expiries = 0;
  for (TimeMs storm : {kT0 + 3 * kMillisPerMinute,
                       kT0 + 6 * kMillisPerMinute,
                       kT0 + 9 * kMillisPerMinute}) {
    const int count = 2 + static_cast<int>(rng.Uniform(3));  // 2..4 brokers
    const size_t first = rng.Uniform(cluster.broker_count(0));
    for (int i = 0; i < count; ++i) {
      const size_t target = (first + i) % cluster.broker_count(0);
      sim.At(storm + i * 250, [&cluster, target] {
        // A storm can hit a broker twice; a dead session is fine to skip.
        (void)cluster.ExpireBrokerSession(0, target);
      });
      ++expiries;
    }
  }

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_TRUE(audit.AssertQuiescent().ok()) << snap.ToString();
  // Expiry is not a crash: nothing was lost on any replica.
  EXPECT_EQ(snap.lost_unreplicated, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons)
      << snap.ToString();
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);

  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.broker_elections, 0u);
  // Bounded re-election: the initial election per (category, partition)
  // plus at most one re-election per partition per expiry.
  const uint64_t partitions = 2u * options.num_partitions;
  EXPECT_LE(totals.broker_elections,
            partitions + partitions * static_cast<uint64_t>(expiries));
  // Bounded rediscovery: each of the 120 daemons re-resolves leadership at
  // most once per expiry on top of its initial discovery.
  EXPECT_LE(totals.daemon_rediscoveries,
            static_cast<uint64_t>(topology.daemons_per_dc) *
                static_cast<uint64_t>(1 + expiries));
}

}  // namespace
}  // namespace unilog::broker
