// Tests for the partitioned replicated commit log under Scribe: the
// PartitionLog storage unit, BrokerNode produce/dedup/backpressure, zk
// leader election, and the chaos suite — leader kill mid-produce, session
// expiry during election, acks=all with a replica down — each asserting
// the delivery audit stays balanced at quiescence and consumer-group
// offsets never move backwards.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "broker/fleet.h"
#include "broker/partition_log.h"
#include "common/rng.h"
#include "obs/delivery_audit.h"
#include "scribe/cluster.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::broker {
namespace {

constexpr TimeMs kT0 = 1345507200000;  // 2012-08-21 00:00 UTC
constexpr TimeMs kFarFuture = kT0 + 365 * 24 * kMillisPerHour;

// ---------------------------------------------------------------------------
// PartitionLog

TEST(PartitionLogTest, AppendAssignsDenseOffsets) {
  PartitionLog log;
  EXPECT_EQ(log.Append("h1", 1, kT0, kT0, "a").offset, 0u);
  EXPECT_EQ(log.Append("h1", 2, kT0, kT0, "bb").offset, 1u);
  EXPECT_EQ(log.Append("h2", 1, kT0, kT0, "ccc").offset, 2u);
  EXPECT_EQ(log.end_offset(), 3u);
  EXPECT_EQ(log.begin_offset(), 0u);
  EXPECT_EQ(log.entry_count(), 3u);
  EXPECT_EQ(log.byte_size(), 6u);
}

TEST(PartitionLogTest, TrimRaisesBeginAndNeverLowers) {
  PartitionLog log;
  for (int i = 0; i < 5; ++i) log.Append("h", i + 1, kT0, kT0, "xy");
  log.TrimTo(3);
  EXPECT_EQ(log.begin_offset(), 3u);
  EXPECT_EQ(log.entry_count(), 2u);
  EXPECT_EQ(log.byte_size(), 4u);
  log.TrimTo(1);  // no-op: begin never moves backwards
  EXPECT_EQ(log.begin_offset(), 3u);
  auto read = log.ReadFrom(0, log.end_offset(), kFarFuture);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].offset, 3u);
  EXPECT_EQ(read.next_offset, 5u);
}

TEST(PartitionLogTest, ReadFromStopsAtTimestampLimit) {
  PartitionLog log;
  log.Append("h", 1, kT0, kT0, "a");
  log.Append("h", 2, kT0 + 10, kT0, "b");
  log.Append("h", 3, kT0 + 20, kT0, "c");
  auto read = log.ReadFrom(0, log.end_offset(), kT0 + 20);
  ASSERT_EQ(read.records.size(), 2u);
  // next_offset marks the first excluded record so consumption resumes
  // exactly at the hour boundary.
  EXPECT_EQ(read.next_offset, 2u);
}

TEST(PartitionLogTest, AdvanceToOpensExplicitGap) {
  PartitionLog log;
  log.Append("h", 1, kT0, kT0, "a");
  log.AdvanceTo(10);  // entries 1..9 died with the old leader
  EXPECT_EQ(log.end_offset(), 10u);
  EXPECT_EQ(log.Append("h", 2, kT0, kT0, "b").offset, 10u);
  // Reading across the gap skips to the next retained record.
  auto read = log.ReadFrom(0, log.end_offset(), kFarFuture);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[1].offset, 10u);
  EXPECT_EQ(read.next_offset, 11u);
}

TEST(PartitionLogTest, AppendRecordRejectsCoveredOffsets) {
  PartitionLog log;
  log.Append("h", 1, kT0, kT0, "a");
  Record dup;
  dup.offset = 0;
  dup.payload = "zz";
  EXPECT_FALSE(log.AppendRecord(dup));  // already covered locally
  Record next;
  next.offset = 5;  // mirrors a leader gap
  next.producer = "h";
  next.seq = 9;
  next.payload = "b";
  EXPECT_TRUE(log.AppendRecord(next));
  EXPECT_EQ(log.end_offset(), 6u);
  EXPECT_EQ(log.ProducerHighWatermarks(6)["h"], 9u);
}

// ---------------------------------------------------------------------------
// BrokerNode + fleet unit behavior

struct FleetHarness {
  Simulator sim{kT0};
  zk::ZooKeeper zk{&sim};
  obs::MetricsRegistry metrics{&sim};
  std::unique_ptr<BrokerFleet> fleet;

  explicit FleetHarness(int nodes, BrokerOptions options) {
    std::vector<std::string> ids;
    for (int i = 0; i < nodes; ++i) ids.push_back("brk" + std::to_string(i));
    fleet = std::make_unique<BrokerFleet>(&sim, &zk, "dc1", std::move(ids),
                                          options, &metrics);
    EXPECT_TRUE(fleet->Start().ok());
  }

  BrokerNode* Leader(const std::string& category, int partition) {
    return fleet->FindLeader(category, partition);
  }

  Status ProduceOne(const std::string& category, int partition,
                    const std::string& producer, uint64_t seq,
                    const std::string& payload, ProduceAck* ack = nullptr) {
    ProduceAck local;
    std::vector<ProduceItem> items{ProduceItem{seq, sim.Now(), payload}};
    BrokerNode* leader = Leader(category, partition);
    if (leader == nullptr) return Status::Unavailable("leaderless");
    return leader->Produce(category, partition, producer, items,
                           ack != nullptr ? ack : &local);
  }
};

TEST(BrokerNodeTest, AssignedReplicasAreDistinctAndRotate) {
  std::vector<std::string> ids{"a", "b", "c", "d"};
  auto r1 = BrokerNode::AssignedReplicas(ids, "clicks", 0, 2);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_NE(r1[0], r1[1]);
  auto r2 = BrokerNode::AssignedReplicas(ids, "clicks", 1, 2);
  // Consecutive partitions rotate one step through the fleet.
  EXPECT_EQ(r2[0], r1[1]);
  // Replication can never exceed the fleet size.
  EXPECT_EQ(BrokerNode::AssignedReplicas(ids, "x", 0, 9).size(), 4u);
}

TEST(BrokerNodeTest, ProduceDedupsOnProducerSeq) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  ProduceAck ack;
  std::vector<ProduceItem> batch{ProduceItem{1, kT0, "a"},
                                 ProduceItem{2, kT0, "b"},
                                 ProduceItem{3, kT0, "c"}};
  BrokerNode* leader = h.Leader("clicks", 0);
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(leader->Produce("clicks", 0, "host1", batch, &ack).ok());
  EXPECT_EQ(ack.accepted, 3u);
  EXPECT_EQ(ack.deduped, 0u);

  // A crash-retry resend of the same (producer, seq) batch must not
  // re-append or re-count: entries_sent can never inflate past logged.
  ASSERT_TRUE(leader->Produce("clicks", 0, "host1", batch, &ack).ok());
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_EQ(ack.deduped, 3u);
  const BrokerNodeStats stats = leader->stats();
  EXPECT_EQ(stats.entries_produced, 3u);
  EXPECT_EQ(stats.entries_duplicate, 3u);
  auto read = leader->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 3u);
}

TEST(BrokerNodeTest, BackpressureThrottlesInsteadOfDropping) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 1;
  options.partition_inflight_limit_bytes = 8;
  FleetHarness h(1, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 1, "0123456789").ok());
  // The retained log is past the window: the next produce is pushed back,
  // not silently dropped-oldest.
  Status st = h.ProduceOne("clicks", 0, "host1", 2, "x");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(h.Leader("clicks", 0)->stats().throttled_backpressure, 1u);

  // Consuming (and committing) drains the window and produce resumes.
  auto read = h.Leader("clicks", 0)->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(h.fleet
                  ->CommitOffset("log-mover", "clicks", 0, read->next_offset,
                                 read->records.size(), 10)
                  .ok());
  EXPECT_TRUE(h.ProduceOne("clicks", 0, "host1", 2, "x").ok());
}

TEST(BrokerNodeTest, FailoverElectsMostCaughtUpReplica) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.replica_fetch_interval_ms = 500;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  BrokerNode* first = h.Leader("clicks", 0);
  ASSERT_NE(first, nullptr);
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    ASSERT_TRUE(
        h.ProduceOne("clicks", 0, "host1", seq, "payload").ok());
  }
  // Let the follower mirror, then kill the leader.
  h.sim.RunUntil(kT0 + 2 * kMillisPerSecond);
  first->Crash();
  h.sim.RunUntil(kT0 + 3 * kMillisPerSecond);

  BrokerNode* second = h.Leader("clicks", 0);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second, first);
  EXPECT_TRUE(second->IsLeader("clicks", 0));
  // Everything was replicated before the crash: no failover loss, and the
  // full range stays consumable from the new leader.
  EXPECT_EQ(second->stats().entries_lost_failover, 0u);
  auto read = second->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 10u);
  // The new leader inherits the idempotence table: the old producer's
  // seqs stay deduped.
  ProduceAck ack;
  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 10, "payload", &ack).ok());
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_EQ(ack.deduped, 1u);
}

TEST(BrokerNodeTest, UnreplicatedAckedEntriesAreChargedToFailoverLoss) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.replica_fetch_interval_ms = 500;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  BrokerNode* first = h.Leader("clicks", 0);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 1, "replicated").ok());
  h.sim.RunUntil(kT0 + 2 * kMillisPerSecond);  // follower catches up
  // Acked but never fetched by the follower: dies with the leader.
  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 2, "unreplicated").ok());
  first->Crash();
  h.sim.RunUntil(kT0 + 3 * kMillisPerSecond);

  BrokerNode* second = h.Leader("clicks", 0);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->stats().entries_lost_failover, 1u);
  // The lost offset is an explicit gap, not a silent hole: consumption
  // resumes past it.
  auto read = second->ConsumerFetch("clicks", 0, 0, kFarFuture);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->next_offset, 2u);
}

TEST(BrokerNodeTest, AcksAllRejectsBelowMinInsync) {
  BrokerOptions options;
  options.num_partitions = 1;
  options.replication_factor = 2;
  options.acks = kAcksAll;
  options.min_insync_replicas = 2;
  FleetHarness h(2, options);
  ASSERT_TRUE(h.fleet->EnsureTopic("clicks").ok());

  ASSERT_TRUE(h.ProduceOne("clicks", 0, "host1", 1, "a").ok());
  // Synchronous replication: the follower already holds the record.
  BrokerNode* follower = h.fleet->node(0)->IsLeader("clicks", 0)
                             ? h.fleet->node(1)
                             : h.fleet->node(0);
  uint64_t trim_to = 0;
  auto mirrored = follower->ReplicaFetch("clicks", 0, 0, &trim_to);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(mirrored->records.size(), 1u);

  follower->Crash();
  h.sim.RunUntil(kT0 + kMillisPerSecond);
  Status st = h.ProduceOne("clicks", 0, "host1", 2, "b");
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(h.Leader("clicks", 0)->stats().insufficient_replicas, 1u);
}

// ---------------------------------------------------------------------------
// Cluster-level chaos suite

scribe::ClusterTopology BrokerTopology(int brokers, BrokerOptions options) {
  scribe::ClusterTopology topology;
  topology.datacenters = {"dc1"};
  topology.daemons_per_dc = 4;
  topology.brokers_per_dc = brokers;
  topology.broker_options = options;
  return topology;
}

// Drives a steady two-category workload over [from, until).
void ScheduleWorkload(Simulator* sim, scribe::ScribeCluster* cluster,
                      TimeMs from, TimeMs until) {
  for (TimeMs t = from; t < until; t += 5 * kMillisPerSecond) {
    sim->At(t, [cluster] {
      for (int i = 0; i < 10; ++i) {
        cluster->Log(0, scribe::LogEntry{i % 2 == 0 ? "clicks" : "search",
                                         "message-" + std::to_string(i)});
      }
    });
  }
}

// Samples consumer-group offsets every 30 s and records any regression.
class OffsetMonotonicityProbe {
 public:
  OffsetMonotonicityProbe(Simulator* sim, scribe::ScribeCluster* cluster,
                          int num_partitions, TimeMs until)
      : sim_(sim), cluster_(cluster), num_partitions_(num_partitions) {
    Schedule(until);
  }

  bool violated() const { return violated_; }

 private:
  void Schedule(TimeMs until) {
    sim_->After(30 * kMillisPerSecond, [this, until] {
      Sample();
      if (sim_->Now() < until) Schedule(until);
    });
  }

  void Sample() {
    for (const char* category : {"clicks", "search"}) {
      for (int p = 0; p < num_partitions_; ++p) {
        uint64_t off =
            cluster_->fleet(0)->CommittedOffset("log-mover", category, p);
        uint64_t& prev = last_[{category, p}];
        if (off < prev) violated_ = true;
        prev = off;
      }
    }
  }

  Simulator* sim_;
  scribe::ScribeCluster* cluster_;
  int num_partitions_;
  std::map<std::pair<std::string, int>, uint64_t> last_;
  bool violated_ = false;
};

// Every live-replica partition must have exactly one leader at quiescence.
void ExpectExactlyOneLeader(scribe::ScribeCluster* cluster,
                            int num_partitions) {
  for (const char* category : {"clicks", "search"}) {
    for (int p = 0; p < num_partitions; ++p) {
      int leaders = 0;
      for (size_t b = 0; b < cluster->broker_count(0); ++b) {
        if (cluster->broker(0, b)->alive() &&
            cluster->broker(0, b)->IsLeader(category, p)) {
          ++leaders;
        }
      }
      EXPECT_EQ(leaders, 1) << category << "/" << p;
    }
  }
}

// Runs well past the hour close so daemon queues, broker partitions, and
// the mover all drain; the workload must end inside the first hour.
void DrainToQuiescence(Simulator* sim) {
  sim->RunUntil(kT0 + kMillisPerHour + 20 * kMillisPerMinute);
}

TEST(BrokerChaosTest, LeaderKillMidProduceKeepsAuditBalanced) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/42);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  // Mid-produce: lose an ack (forcing an idempotent resend), then kill the
  // node outright; restart it later so every partition regains both
  // replicas before the drain.
  sim.At(kT0 + 5 * kMillisPerMinute, [&] {
    BrokerNode* leader = cluster.fleet(0)->FindLeader("clicks", 0);
    ASSERT_NE(leader, nullptr);
    leader->InjectAckLossOnce();
  });
  sim.At(kT0 + 7 * kMillisPerMinute, [&] {
    BrokerNode* leader = cluster.fleet(0)->FindLeader("clicks", 0);
    ASSERT_NE(leader, nullptr);
    leader->Crash();
  });
  sim.At(kT0 + 20 * kMillisPerMinute, [&] {
    for (size_t b = 0; b < cluster.broker_count(0); ++b) {
      if (!cluster.broker(0, b)->alive()) {
        ASSERT_TRUE(cluster.RestartBroker(0, b).ok());
      }
    }
  });

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  EXPECT_EQ(snap.in_flight_daemons, 0u) << snap.ToString();
  // Quiescent identity with drift zero: everything logged is warehoused or
  // in a named loss channel.
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons +
                             snap.lost_unreplicated);
  // The injected ack loss forced at least one dedup resend.
  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.entries_dup_resends, 0u);
  EXPECT_GT(totals.broker_elections, 0u);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);
}

TEST(BrokerChaosTest, SessionExpiryDuringElectionLosesNothing) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/7);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  // Expire the current leader's session mid-stream — its ephemeral
  // candidates vanish (peers campaign) while its logs stay intact — and a
  // second expiry shortly after hits the re-election window itself.
  for (TimeMs at : {kT0 + 5 * kMillisPerMinute,
                    kT0 + 5 * kMillisPerMinute + kMillisPerSecond}) {
    sim.At(at, [&] {
      BrokerNode* leader = cluster.fleet(0)->FindLeader("search", 1);
      if (leader == nullptr) return;  // mid-election: nothing to expire
      for (size_t b = 0; b < cluster.broker_count(0); ++b) {
        if (cluster.broker(0, b) == leader) {
          ASSERT_TRUE(cluster.ExpireBrokerSession(0, b).ok());
        }
      }
    });
  }

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  // Session expiry is not a crash: no log was lost anywhere.
  EXPECT_EQ(snap.lost_unreplicated, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);
}

TEST(BrokerChaosTest, AcksAllWithReplicaDownLosesNoAckedEntry) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  options.acks = kAcksAll;
  options.min_insync_replicas = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                scribe_options, mover_options,
                                /*seed=*/99);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  // One replica down: partitions it backs fall below min_insync and
  // producers are pushed back (backpressure), not acknowledged into a
  // single point of failure. Acked entries always exist on both replicas.
  sim.At(kT0 + 3 * kMillisPerMinute, [&] { cluster.CrashBroker(0, 1); });
  sim.At(kT0 + 9 * kMillisPerMinute, [&] {
    ASSERT_TRUE(cluster.RestartBroker(0, 1).ok());
  });

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_EQ(snap.in_flight_broker, 0u) << snap.ToString();
  // The acks=all guarantee: zero acknowledged entries lost, ever.
  EXPECT_EQ(snap.lost_unreplicated, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons);
  // The outage exercised the pushback path.
  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.produce_throttled, 0u);
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);
}

// Property: across seeded crash/ack-loss schedules, a daemon's entries_sent
// (unique acknowledged sends) never exceeds its entries_logged — resends
// are deduped on (producer, seq), so crash-retry cannot inflate delivery.
TEST(BrokerPropertyTest, CrashRetryNeverInflatesSentPastLogged) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Simulator sim(kT0);
    BrokerOptions options;
    options.num_partitions = 4;
    options.replication_factor = 2;
    scribe::ScribeOptions scribe_options;
    scribe::LogMoverOptions mover_options;
    scribe::ScribeCluster cluster(&sim, BrokerTopology(3, options),
                                  scribe_options, mover_options, seed);
    ASSERT_TRUE(cluster.Start().ok());

    ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                     kT0 + 12 * kMillisPerMinute);
    // An ack loss plus a crash every two minutes, rotating targets.
    for (int round = 0; round < 4; ++round) {
      TimeMs at = kT0 + (2 + 2 * round) * kMillisPerMinute;
      sim.At(at, [&cluster, round] {
        BrokerNode* leader =
            cluster.fleet(0)->FindLeader(round % 2 == 0 ? "clicks" : "search",
                                         round % 4);
        if (leader != nullptr) leader->InjectAckLossOnce();
      });
      sim.At(at + 30 * kMillisPerSecond, [&cluster, round] {
        size_t victim = static_cast<size_t>(round) % cluster.broker_count(0);
        if (cluster.broker(0, victim)->alive()) {
          cluster.CrashBroker(0, victim);
        }
      });
      sim.At(at + 90 * kMillisPerSecond, [&cluster] {
        for (size_t b = 0; b < cluster.broker_count(0); ++b) {
          if (!cluster.broker(0, b)->alive()) {
            ASSERT_TRUE(cluster.RestartBroker(0, b).ok());
          }
        }
      });
    }

    // Invariant checked while the chaos is still in flight, not only at
    // quiescence.
    for (TimeMs t = kT0 + kMillisPerMinute; t < kT0 + 14 * kMillisPerMinute;
         t += kMillisPerMinute) {
      sim.At(t, [&cluster, seed] {
        for (size_t d = 0; d < cluster.daemon_count(0); ++d) {
          const scribe::DaemonStats s = cluster.daemon(0, d)->stats();
          ASSERT_LE(s.entries_sent, s.entries_logged) << "seed " << seed;
        }
      });
    }

    DrainToQuiescence(&sim);

    obs::DeliveryAudit audit(&cluster);
    const obs::DeliverySnapshot snap = audit.Snapshot();
    EXPECT_TRUE(snap.Balanced()) << "seed " << seed << ": " << snap.ToString();
    EXPECT_EQ(snap.in_flight_broker, 0u)
        << "seed " << seed << ": " << snap.ToString();
    for (size_t d = 0; d < cluster.daemon_count(0); ++d) {
      const scribe::DaemonStats s = cluster.daemon(0, d)->stats();
      EXPECT_LE(s.entries_sent, s.entries_logged);
    }
  }
}

// The broker-consumed warehouse hour is indistinguishable downstream: data
// lands at /logs/<category>/YYYY/MM/DD/HH as framed parts, same as the
// aggregator path.
TEST(BrokerClusterTest, WarehouseLayoutUnchangedDownstream) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 2;
  options.replication_factor = 2;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, BrokerTopology(2, options),
                                scribe_options, mover_options, /*seed=*/5);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 5 * kMillisPerMinute);
  DrainToQuiescence(&sim);

  EXPECT_TRUE(cluster.warehouse()->Exists("/logs/clicks/2012/08/21/00"));
  EXPECT_TRUE(cluster.warehouse()->Exists("/logs/search/2012/08/21/00"));
  auto files = cluster.warehouse()->ListRecursive("/logs/clicks/2012/08/21/00");
  ASSERT_TRUE(files.ok());
  EXPECT_FALSE(files->empty());

  obs::DeliveryAudit audit(&cluster);
  EXPECT_TRUE(audit.Check().ok());
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_EQ(snap.logged, snap.warehoused);  // no faults: full delivery
}

// Session-expiry storm at fleet scale: 120 daemons funnel into a 5-broker
// tier while three seeded storms each expire a random run of broker
// sessions at 250 ms spacing. Expiry is not a crash — the logs survive —
// so the drain must deliver everything, every partition must end with
// exactly one leader, and re-election/rediscovery churn must stay bounded
// (storms re-elect displaced partitions, not a thundering herd).
TEST(BrokerChaosTest, SessionExpiryStormAtScaleConvergesBounded) {
  Simulator sim(kT0);
  BrokerOptions options;
  options.num_partitions = 4;
  options.replication_factor = 2;
  scribe::ClusterTopology topology = BrokerTopology(5, options);
  topology.daemons_per_dc = 120;
  scribe::ScribeOptions scribe_options;
  scribe::LogMoverOptions mover_options;
  scribe::ScribeCluster cluster(&sim, topology, scribe_options,
                                mover_options, /*seed=*/2026);
  ASSERT_TRUE(cluster.Start().ok());

  ScheduleWorkload(&sim, &cluster, kT0 + kMillisPerSecond,
                   kT0 + 15 * kMillisPerMinute);
  OffsetMonotonicityProbe probe(&sim, &cluster, options.num_partitions,
                                kT0 + kMillisPerHour);

  Rng rng(99);
  int expiries = 0;
  for (TimeMs storm : {kT0 + 3 * kMillisPerMinute,
                       kT0 + 6 * kMillisPerMinute,
                       kT0 + 9 * kMillisPerMinute}) {
    const int count = 2 + static_cast<int>(rng.Uniform(3));  // 2..4 brokers
    const size_t first = rng.Uniform(cluster.broker_count(0));
    for (int i = 0; i < count; ++i) {
      const size_t target = (first + i) % cluster.broker_count(0);
      sim.At(storm + i * 250, [&cluster, target] {
        // A storm can hit a broker twice; a dead session is fine to skip.
        (void)cluster.ExpireBrokerSession(0, target);
      });
      ++expiries;
    }
  }

  DrainToQuiescence(&sim);

  obs::DeliveryAudit audit(&cluster);
  const obs::DeliverySnapshot snap = audit.Snapshot();
  EXPECT_TRUE(snap.Balanced()) << snap.ToString();
  EXPECT_TRUE(audit.AssertQuiescent().ok()) << snap.ToString();
  // Expiry is not a crash: nothing was lost on any replica.
  EXPECT_EQ(snap.lost_unreplicated, 0u) << snap.ToString();
  EXPECT_EQ(snap.logged, snap.warehoused + snap.dropped_at_daemons)
      << snap.ToString();
  EXPECT_FALSE(probe.violated());
  ExpectExactlyOneLeader(&cluster, options.num_partitions);

  const scribe::ClusterStats totals = cluster.TotalStats();
  EXPECT_GT(totals.broker_elections, 0u);
  // Bounded re-election: the initial election per (category, partition)
  // plus at most one re-election per partition per expiry.
  const uint64_t partitions = 2u * options.num_partitions;
  EXPECT_LE(totals.broker_elections,
            partitions + partitions * static_cast<uint64_t>(expiries));
  // Bounded rediscovery: each of the 120 daemons re-resolves leadership at
  // most once per expiry on top of its initial discovery.
  EXPECT_LE(totals.daemon_rediscoveries,
            static_cast<uint64_t>(topology.daemons_per_dc) *
                static_cast<uint64_t>(1 + expiries));
}

}  // namespace
}  // namespace unilog::broker
