// End-to-end integration tests: synthetic workload → Scribe delivery →
// warehouse → daily histogram/dictionary/sessionization jobs → session
// sequences — validated against the generator's exact ground truth.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analytics/summary.h"
#include "analytics/udfs.h"
#include "columnar/rcfile.h"
#include "pipeline/daily_pipeline.h"
#include "scribe/cluster.h"
#include "sessions/session_sequence.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace unilog::pipeline {
namespace {

constexpr TimeMs kDay = 1345507200000;  // 2012-08-21 00:00 UTC

class PipelineTest : public ::testing::Test {
 protected:
  // Runs the full pipeline for a small day of traffic; returns the result.
  // With `columnar` set the mover lands warehouse hours as RCFile v2 parts
  // and the daily jobs must read them through the format-sniffing input.
  DailyJobResult RunEndToEnd(workload::WorkloadOptions wopts,
                             bool columnar = false) {
    sim_ = std::make_unique<Simulator>(kDay);
    scribe::ClusterTopology topo;
    topo.datacenters = {"dc1", "dc2"};
    topo.aggregators_per_dc = 2;
    topo.daemons_per_dc = 4;
    scribe::ScribeOptions sopts;
    sopts.roll_interval_ms = kMillisPerMinute;
    scribe::LogMoverOptions mopts;
    mopts.run_interval_ms = 5 * kMillisPerMinute;
    mopts.grace_ms = 2 * kMillisPerMinute;
    if (columnar) mopts.columnar_categories = {"client_events"};
    cluster_ = std::make_unique<scribe::ScribeCluster>(sim_.get(), topo,
                                                       sopts, mopts, 99);
    EXPECT_TRUE(cluster_->Start().ok());

    generator_ = std::make_unique<workload::WorkloadGenerator>(wopts);
    EXPECT_TRUE(DriveWorkloadThroughScribe(sim_.get(), cluster_.get(),
                                           generator_.get(), "client_events")
                    .ok());
    // Run through the end of the day plus enough slack for the final
    // hour's close, grace, and mover run.
    sim_->RunUntil(kDay + kMillisPerDay + kMillisPerHour);

    UserTable users = UserTable::FromWorkload(*generator_);
    DailyPipeline pipeline(cluster_->warehouse(), dataflow::JobCostModel{});
    auto result = pipeline.RunForDate(kDay, users);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static workload::WorkloadOptions SmallWorkload() {
    workload::WorkloadOptions wopts;
    wopts.seed = 31;
    wopts.num_users = 120;
    wopts.start = kDay;
    wopts.duration = kMillisPerDay - 2 * kMillisPerHour;  // finish early
    wopts.sessions_per_user_mean = 1.2;
    wopts.events_per_session_mean = 10;
    return wopts;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<scribe::ScribeCluster> cluster_;
  std::unique_ptr<workload::WorkloadGenerator> generator_;
};

TEST_F(PipelineTest, AllEventsReachWarehouseAndHistogram) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  const workload::GroundTruth& truth = generator_->truth();

  // No loss anywhere: histogram totals equal generated totals.
  EXPECT_EQ(result.histogram.total_events(), truth.total_events);
  // Per-event counts match exactly.
  for (const auto& [name, count] : truth.event_counts) {
    EXPECT_EQ(result.histogram.CountOf(name), count) << name;
  }
  EXPECT_EQ(result.histogram.distinct_events(), truth.event_counts.size());
}

TEST_F(PipelineTest, SessionizationRecoversGeneratedSessions) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  const workload::GroundTruth& truth = generator_->truth();
  EXPECT_EQ(result.sequences.size(), truth.total_sessions);

  // Total encoded events match.
  uint64_t encoded_events = 0;
  for (const auto& seq : result.sequences) {
    encoded_events += seq.EventCount();
  }
  EXPECT_EQ(encoded_events, truth.total_events);

  // Sequence partition is on HDFS and loads back identically.
  auto loaded =
      sessions::SequenceStore::LoadDaily(*cluster_->warehouse(), kDay);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), result.sequences.size());
}

TEST_F(PipelineTest, ColumnarWarehouseFeedsDailyPipeline) {
  // Same workload twice: once landing framed-compressed hours, once landing
  // RCFile v2 columnar hours. The daily jobs sniff the format per file, so
  // both runs must produce identical results.
  DailyJobResult framed = RunEndToEnd(SmallWorkload());
  DailyJobResult columnar = RunEndToEnd(SmallWorkload(), /*columnar=*/true);
  const workload::GroundTruth& truth = generator_->truth();

  // The columnar run really did land RCFile parts in the warehouse.
  auto files =
      cluster_->warehouse()->ListRecursive("/logs/client_events/2012/08/21");
  ASSERT_TRUE(files.ok());
  size_t rcfile_parts = 0;
  for (const auto& f : *files) {
    auto body = cluster_->warehouse()->ReadFile(f.path);
    ASSERT_TRUE(body.ok());
    if (columnar::IsRcFile(*body)) ++rcfile_parts;
  }
  EXPECT_GT(rcfile_parts, 0u);

  // No loss through the columnar path, and job-for-job parity with the
  // framed run.
  EXPECT_EQ(columnar.histogram.total_events(), truth.total_events);
  EXPECT_EQ(columnar.histogram.total_events(), framed.histogram.total_events());
  for (const auto& [name, count] : truth.event_counts) {
    EXPECT_EQ(columnar.histogram.CountOf(name), count) << name;
  }
  EXPECT_EQ(columnar.sequences, framed.sequences);
}

TEST_F(PipelineTest, SummaryMatchesGroundTruthByClient) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  const workload::GroundTruth& truth = generator_->truth();
  auto summary = analytics::Summarize(result.sequences, result.dictionary);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->sessions, truth.total_sessions);
  for (const auto& [client, n] : truth.sessions_per_client) {
    EXPECT_EQ(summary->sessions_by_client.at(client), n) << client;
  }
}

TEST_F(PipelineTest, FunnelRecoversPlantedAbandonment) {
  workload::WorkloadOptions wopts = SmallWorkload();
  wopts.num_users = 250;
  wopts.signup_session_fraction = 0.4;
  DailyJobResult result = RunEndToEnd(wopts);
  const workload::GroundTruth& truth = generator_->truth();

  std::vector<std::string> stages;
  for (int s = 0; s < workload::ViewHierarchy::kSignupStages; ++s) {
    stages.push_back(workload::ViewHierarchy::SignupStageEvent("web", s));
  }
  // Some clients may have no signup sessions in a small run; web almost
  // surely does. Aggregate across all clients by running one funnel per
  // client and summing.
  std::vector<uint64_t> recovered(workload::ViewHierarchy::kSignupStages, 0);
  for (const auto& client : generator_->hierarchy().clients()) {
    std::vector<std::string> client_stages;
    for (int s = 0; s < workload::ViewHierarchy::kSignupStages; ++s) {
      client_stages.push_back(
          workload::ViewHierarchy::SignupStageEvent(client, s));
    }
    auto funnel = analytics::Funnel::Make(result.dictionary, client_stages);
    if (!funnel.ok()) continue;  // client had no signup events that day
    auto counts = funnel->StageCounts(result.sequences);
    for (size_t i = 0; i < counts.size(); ++i) recovered[i] += counts[i];
  }
  for (int s = 0; s < workload::ViewHierarchy::kSignupStages; ++s) {
    EXPECT_EQ(recovered[s], truth.funnel_stage_sessions[s]) << "stage " << s;
  }
}

TEST_F(PipelineTest, SequencesAreDramaticallySmallerThanRawLogs) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  // Raw warehouse bytes for the day vs sequence partition bytes.
  uint64_t raw_bytes = 0, seq_bytes = 0;
  auto raw_files =
      cluster_->warehouse()->ListRecursive("/logs/client_events");
  ASSERT_TRUE(raw_files.ok());
  for (const auto& f : *raw_files) raw_bytes += f.size;
  auto seq_files = cluster_->warehouse()->ListRecursive(
      sessions::SequenceStore::PartitionDir(kDay));
  ASSERT_TRUE(seq_files.ok());
  for (const auto& f : *seq_files) {
    if (f.path.find("/part-") != std::string::npos) seq_bytes += f.size;
  }
  ASSERT_GT(raw_bytes, 0u);
  ASSERT_GT(seq_bytes, 0u);
  // Both sides compressed; the paper reports ~50x. Small runs compress
  // less well, but an order of magnitude must hold.
  EXPECT_GT(raw_bytes, 10 * seq_bytes);
}

TEST_F(PipelineTest, CostModelShowsGroupByShuffleDominance) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  // The sessionization job shuffles whole events (the §4.1 complaint);
  // the histogram job shuffles only names.
  EXPECT_GT(result.sessionize_job.bytes_shuffled,
            result.histogram_job.bytes_shuffled);
  EXPECT_GT(result.sessionize_job.map_tasks, 0u);
}

TEST_F(PipelineTest, CatalogCoversAllObservedEvents) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  EXPECT_EQ(result.catalog.size(), result.histogram.distinct_events());
  // Every catalog entry has at least one rendered sample.
  auto by_count = result.catalog.ByCount();
  ASSERT_FALSE(by_count.empty());
  EXPECT_FALSE(by_count[0]->samples.empty());
}

TEST_F(PipelineTest, MissingDateFails) {
  RunEndToEnd(SmallWorkload());
  DailyPipeline pipeline(cluster_->warehouse(), dataflow::JobCostModel{});
  UserTable empty;
  EXPECT_TRUE(pipeline.RunForDate(kDay + 30 * kMillisPerDay, empty)
                  .status().IsNotFound());
}

TEST_F(PipelineTest, RollupsMatchHistogramTotals) {
  DailyJobResult result = RunEndToEnd(SmallWorkload());
  // The client-level rollup totals sum to the histogram total.
  uint64_t rollup_total = 0;
  for (const auto& [key, cell] :
       result.rollups.Level(events::RollupLevel::kNoPage)) {
    rollup_total += cell.total;
  }
  EXPECT_EQ(rollup_total, result.histogram.total_events());
}

}  // namespace
}  // namespace unilog::pipeline
