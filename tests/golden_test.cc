// Golden-file tests: the fixed-seed bench fixture numbers reported by
// bench_summary_stats and bench_event_counting, captured as text files
// under tests/golden/ and recomputed here at several thread counts. Any
// drift in the workload generator, the daily pipeline, or the exec
// engine's determinism shows up as a golden mismatch in ctest.
//
// Regenerate with: UNILOG_UPDATE_GOLDEN=1 ./golden_test

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analytics/summary.h"
#include "analytics/udfs.h"
#include "bench_common.h"
#include "exec/executor.h"

#ifndef UNILOG_GOLDEN_DIR
#error "UNILOG_GOLDEN_DIR must be defined by the build"
#endif

namespace unilog {
namespace {

const bench::DayFixture& Fixture() {
  static const bench::DayFixture* fx =
      new bench::DayFixture(bench::BuildDay(bench::DefaultWorkload(42, 400)));
  return *fx;
}

std::string GoldenPath(const std::string& name) {
  return std::string(UNILOG_GOLDEN_DIR) + "/" + name + ".golden";
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  std::string path = GoldenPath(name);
  if (std::getenv("UNILOG_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with UNILOG_UPDATE_GOLDEN=1 to create)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "golden drift in " << name;
}

std::string SummaryStatsReport(exec::Executor* exec) {
  const bench::DayFixture& fx = Fixture();
  auto summary =
      analytics::Summarize(fx.daily.sequences, fx.daily.dictionary, exec);
  EXPECT_TRUE(summary.ok());
  std::ostringstream os;
  os << "bench_summary_stats golden (seed=42, users=400)\n"
     << summary->ToString() << "\n"
     << "dictionary_size=" << fx.daily.dictionary.size() << "\n"
     << "ground_truth_sessions=" << fx.generator->truth().total_sessions
     << "\n";
  return os.str();
}

std::string EventCountingReport(exec::Executor* exec) {
  const bench::DayFixture& fx = Fixture();
  analytics::CountClientEvents sum_udf(fx.daily.dictionary,
                                       events::EventPattern("*:impression"));
  analytics::CountClientEvents any_udf(
      fx.daily.dictionary, events::EventPattern("*:profile_click"));
  uint64_t sessions_containing = 0;
  for (const auto& seq : fx.daily.sequences) {
    if (any_udf.ContainsAny(seq)) ++sessions_containing;
  }
  analytics::RateReport ctr = analytics::ComputeRate(
      fx.daily.sequences, fx.daily.dictionary,
      events::EventPattern("*:impression"), events::EventPattern("*:click"),
      exec);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.6f", ctr.rate);
  std::ostringstream os;
  os << "bench_event_counting golden (seed=42, users=400)\n"
     << "sessions=" << fx.daily.sequences.size() << "\n"
     << "impression_sum=" << sum_udf.TotalCount(fx.daily.sequences, exec)
     << "\n"
     << "sessions_with_profile_click=" << sessions_containing << "\n"
     << "ctr=" << ctr.actions << "/" << ctr.impressions << "=" << rate << "\n";
  return os.str();
}

TEST(GoldenTest, SummaryStatsSerial) {
  CompareOrUpdate("summary_stats", SummaryStatsReport(nullptr));
}

TEST(GoldenTest, SummaryStatsParallelMatchesGolden) {
  exec::ExecOptions opts;
  opts.threads = 8;
  exec::Executor executor(opts);
  CompareOrUpdate("summary_stats", SummaryStatsReport(&executor));
}

TEST(GoldenTest, EventCountingSerial) {
  CompareOrUpdate("event_counting", EventCountingReport(nullptr));
}

TEST(GoldenTest, EventCountingParallelMatchesGolden) {
  exec::ExecOptions opts;
  opts.threads = 8;
  exec::Executor executor(opts);
  CompareOrUpdate("event_counting", EventCountingReport(&executor));
}

}  // namespace
}  // namespace unilog
