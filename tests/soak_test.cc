// Tests for the fleet-scale soak/chaos harness: deterministic chaos
// plans, a scaled-down green run, reproducibility from the seed alone,
// and the fault-injection self-test proving that unrecovered loss can
// never pass the quiescence gate.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "scribe/cluster.h"
#include "soak/chaos.h"
#include "soak/harness.h"
#include "soak/slo.h"

namespace unilog::soak {
namespace {

// The full soak configuration scaled down to unit-test size: same code
// path, mixed aggregator/broker fleet, sharded HDFS, two orders of
// magnitude fewer events.
SoakOptions SmallOptions() {
  SoakOptions o;
  o.seed = 42;
  o.hours = 3;
  o.daemons_per_dc = 30;
  o.aggregators_per_dc = 2;
  o.brokers_per_dc = 3;
  o.staging_datanodes = 3;
  o.staging_replication = 2;
  o.warehouse_datanodes = 4;
  o.warehouse_replication = 3;
  o.users_per_hour = 400;
  o.drain_ms = 2 * kMillisPerHour;
  o.scrub_interval_ms = kMillisPerHour;
  o.sample_interval_ms = 5 * kMillisPerMinute;
  o.oink_hours = 2;
  return o;
}

scribe::ClusterTopology MixedTopology() {
  scribe::ClusterTopology topo;
  topo.datacenters = {"east", "west"};
  topo.broker_datacenters = {"west"};
  topo.aggregators_per_dc = 4;
  topo.daemons_per_dc = 100;
  topo.brokers_per_dc = 5;
  topo.staging_hdfs.num_datanodes = 6;
  topo.staging_hdfs.replication = 2;
  topo.warehouse_hdfs.num_datanodes = 8;
  topo.warehouse_hdfs.replication = 3;
  return topo;
}

TEST(ChaosScheduleTest, SameSeedSameScheduleDifferentSeedDiffers) {
  const scribe::ClusterTopology topo = MixedTopology();
  const TimeMs start = MakeDate(2012, 8, 20);
  const TimeMs end = start + 48 * kMillisPerHour;
  ChaosScheduleOptions options;

  ChaosSchedule a = ChaosSchedule::Generate(options, topo, start, end, 7);
  ChaosSchedule b = ChaosSchedule::Generate(options, topo, start, end, 7);
  EXPECT_EQ(a.ToString(), b.ToString());
  ASSERT_GT(a.events().size(), 0u);

  ChaosSchedule c = ChaosSchedule::Generate(options, topo, start, end, 8);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(ChaosScheduleTest, EventsSortedInWindowAndCoverEveryKind) {
  const scribe::ClusterTopology topo = MixedTopology();
  const TimeMs start = MakeDate(2012, 8, 20);
  const TimeMs end = start + 48 * kMillisPerHour;
  ChaosSchedule plan =
      ChaosSchedule::Generate(ChaosScheduleOptions{}, topo, start, end, 42);

  std::set<ChaosKind> kinds;
  TimeMs prev = 0;
  for (const ChaosEvent& ev : plan.events()) {
    EXPECT_GE(ev.at, start);
    EXPECT_LT(ev.at, end);
    EXPECT_GE(ev.at, prev);  // sorted by time
    prev = ev.at;
    kinds.insert(ev.kind);
    // Broker faults and zk storms only in the brokered DC; aggregator
    // faults only where aggregator chains run.
    if (ev.kind == ChaosKind::kBrokerCrash ||
        ev.kind == ChaosKind::kZkExpiryStorm) {
      EXPECT_TRUE(topo.BrokeredDatacenter(topo.datacenters[ev.dc]))
          << ev.ToString();
    }
    if (ev.kind == ChaosKind::kAggregatorCrash) {
      EXPECT_FALSE(topo.BrokeredDatacenter(topo.datacenters[ev.dc]))
          << ev.ToString();
    }
  }
  // Two simulated days at the default rates exercise every fault class.
  EXPECT_EQ(kinds.size(), 7u);
}

TEST(SoakHarnessTest, SmallScaleRunPassesWithBalancedQuiescentAudit) {
  SoakHarness harness(SmallOptions());
  auto result = harness.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result->passed) << result->ToString();
  EXPECT_TRUE(result->slo.ok()) << result->slo.ToString();
  EXPECT_TRUE(result->slo.audit_quiescent) << result->slo.audit_detail;
  EXPECT_TRUE(result->audit.Balanced()) << result->audit.ToString();
  EXPECT_GT(result->events_logged, 0u);
  EXPECT_GT(result->audit.warehoused, 0u);
  EXPECT_EQ(result->daemons, 60u);  // both DCs
  // The post-drain Oink cold+warm pass ran and hit its cache.
  EXPECT_GE(result->oink_warm_hit_rate, 0.9);
}

TEST(SoakHarnessTest, SameSeedReproducesTheIdenticalRun) {
  auto first = SoakHarness(SmallOptions()).Run();
  auto second = SoakHarness(SmallOptions()).Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The whole report — counts, audit identity, SLO observations — must
  // be byte-identical: a violation reproduces from its printed seed.
  EXPECT_EQ(first->ToString(), second->ToString());
  EXPECT_EQ(first->events_logged, second->events_logged);
  EXPECT_EQ(first->chaos_events, second->chaos_events);
  EXPECT_EQ(first->audit.warehoused, second->audit.warehoused);
}

TEST(SoakHarnessTest, InjectedUnrecoveredLossFailsTheRun) {
  SoakOptions options = SmallOptions();
  options.inject_unrecovered_loss = true;
  auto result = SoakHarness(options).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The deleted staged file bypassed every accounting hook, so the run
  // must fail at the quiescence gate: in_flight_staging can never drain.
  EXPECT_FALSE(result->passed) << result->ToString();
  EXPECT_FALSE(result->slo.audit_quiescent);
  EXPECT_GT(result->audit.in_flight_staging, 0u) << result->audit.ToString();
  bool flagged = false;
  for (const SloViolation& v : result->slo.violations) {
    if (v.name == "audit_quiescent") flagged = true;
  }
  EXPECT_TRUE(flagged) << result->slo.ToString();
  // The identity itself still balances — the loss is visible as stuck
  // in-flight data, not as counter drift.
  EXPECT_TRUE(result->audit.Balanced()) << result->audit.ToString();
}

TEST(SoakHarnessTest, TightenedThresholdTripsAnSloViolation) {
  SoakOptions options = SmallOptions();
  options.slo.max_pool_high_water = 0;  // any pooled lease trips it
  auto result = SoakHarness(options).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(result->passed);
  bool flagged = false;
  for (const SloViolation& v : result->slo.violations) {
    if (v.name == "pool_high_water") {
      flagged = true;
      EXPECT_GT(v.observed, v.bound);
    }
  }
  EXPECT_TRUE(flagged) << result->slo.ToString();
  // Everything else about the run was healthy.
  EXPECT_TRUE(result->slo.audit_quiescent) << result->slo.audit_detail;
}

TEST(SoakHarnessTest, RejectsDegenerateOptions) {
  SoakOptions no_hours = SmallOptions();
  no_hours.hours = 0;
  EXPECT_TRUE(SoakHarness(no_hours).Run().status().IsInvalidArgument());

  SoakOptions no_dcs = SmallOptions();
  no_dcs.datacenters.clear();
  no_dcs.broker_datacenters.clear();
  EXPECT_TRUE(SoakHarness(no_dcs).Run().status().IsInvalidArgument());
}

}  // namespace
}  // namespace unilog::soak
