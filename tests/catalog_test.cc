// Tests for the §4.3 client event catalog: browsing (hierarchical, by
// component, by pattern), payload samples, descriptions, and JSON export.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/json.h"
#include "events/client_event.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"

namespace unilog::catalog {
namespace {

using sessions::EventDictionary;
using sessions::EventHistogram;

EventHistogram MakeHistogram() {
  EventHistogram hist;
  events::ClientEvent ev;
  ev.user_id = 1;
  ev.session_id = "s";
  ev.ip = "10.0.0.1";
  ev.timestamp = 1345507200000;

  auto add = [&](const std::string& name, int count) {
    ev.event_name = name;
    std::string payload = ev.Serialize();
    for (int i = 0; i < count; ++i) hist.Add(name, &payload);
  };
  add("web:home:timeline:stream:tweet:impression", 100);
  add("web:home:timeline:stream:tweet:click", 40);
  add("web:home:mentions:stream:avatar:profile_click", 25);
  add("iphone:home:timeline:stream:tweet:impression", 60);
  add("iphone:profile:::header:impression", 5);
  return hist;
}

EventCatalog MakeCatalog() {
  EventHistogram hist = MakeHistogram();
  auto dict = EventDictionary::FromSortedCounts(hist.SortedByFrequency());
  return EventCatalog::Build(hist, *dict);
}

TEST(CatalogTest, BuildPopulatesEntries) {
  EventCatalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.size(), 5u);
  const CatalogEntry* e =
      catalog.Find("web:home:timeline:stream:tweet:impression");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 100u);
  EXPECT_GT(e->code_point, 0u);
  ASSERT_FALSE(e->samples.empty());
  // Samples are rendered Thrift structs, not raw bytes.
  EXPECT_NE(e->samples[0].find("web:home:timeline"), std::string::npos);
  EXPECT_EQ(catalog.Find("nope"), nullptr);
}

TEST(CatalogTest, MostFrequentEventHasSmallestCodePoint) {
  EventCatalog catalog = MakeCatalog();
  auto by_count = catalog.ByCount();
  ASSERT_EQ(by_count.size(), 5u);
  EXPECT_EQ(by_count[0]->name, "web:home:timeline:stream:tweet:impression");
  for (size_t i = 1; i < by_count.size(); ++i) {
    EXPECT_GE(by_count[i - 1]->count, by_count[i]->count);
  }
  EXPECT_EQ(by_count[0]->code_point, 1u);
}

TEST(CatalogTest, HierarchicalBrowsing) {
  EventCatalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.ByPrefix("web").size(), 3u);
  EXPECT_EQ(catalog.ByPrefix("web:home").size(), 3u);
  EXPECT_EQ(catalog.ByPrefix("web:home:timeline").size(), 2u);
  EXPECT_EQ(catalog.ByPrefix("iphone").size(), 2u);
  EXPECT_EQ(catalog.ByPrefix("android").size(), 0u);
  // Prefixes respect component boundaries: "web:ho" is not a component.
  EXPECT_EQ(catalog.ByPrefix("web:ho").size(), 0u);
  // Exact full-name prefix matches itself.
  EXPECT_EQ(
      catalog.ByPrefix("web:home:timeline:stream:tweet:click").size(), 1u);
}

TEST(CatalogTest, PatternBrowsing) {
  EventCatalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.ByPattern(events::EventPattern("*:impression")).size(),
            3u);
  EXPECT_EQ(catalog.ByPattern(events::EventPattern("*:profile_click")).size(),
            1u);
  EXPECT_EQ(catalog.ByPattern(events::EventPattern("*")).size(), 5u);
}

TEST(CatalogTest, ComponentBrowsing) {
  EventCatalog catalog = MakeCatalog();
  EXPECT_EQ(
      catalog.ByComponent(events::NameComponent::kSection, "mentions").size(),
      1u);
  EXPECT_EQ(
      catalog.ByComponent(events::NameComponent::kClient, "iphone").size(),
      2u);
  EXPECT_EQ(
      catalog.ByComponent(events::NameComponent::kAction, "impression").size(),
      3u);
  // Empty section matches the iphone profile event.
  EXPECT_EQ(catalog.ByComponent(events::NameComponent::kSection, "").size(),
            1u);
}

TEST(CatalogTest, DescriptionsAttachAndInherit) {
  EventCatalog today = MakeCatalog();
  ASSERT_TRUE(today
                  .AttachDescription(
                      "web:home:timeline:stream:tweet:click",
                      "User clicked a tweet in the home timeline")
                  .ok());
  EXPECT_TRUE(today.AttachDescription("nope", "x").IsNotFound());

  // Tomorrow's rebuild inherits yesterday's descriptions.
  EventCatalog tomorrow = MakeCatalog();
  tomorrow.InheritDescriptions(today);
  EXPECT_EQ(
      tomorrow.Find("web:home:timeline:stream:tweet:click")->description,
      "User clicked a tweet in the home timeline");
  EXPECT_TRUE(tomorrow.Find("web:home:timeline:stream:tweet:impression")
                  ->description.empty());
}

TEST(CatalogTest, JsonExportRoundTrips) {
  EventCatalog catalog = MakeCatalog();
  ASSERT_TRUE(
      catalog.AttachDescription("iphone:profile:::header:impression", "desc")
          .ok());
  Json exported = catalog.ExportJson();
  ASSERT_TRUE(exported.is_array());
  ASSERT_EQ(exported.array_items().size(), 5u);
  // First entry = most frequent.
  EXPECT_EQ(exported.at(0)["name"].string_value(),
            "web:home:timeline:stream:tweet:impression");
  EXPECT_EQ(exported.at(0)["count"].int_value(), 100);
  // Re-parse the dump to prove it is valid JSON.
  auto reparsed = Json::Parse(exported.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->array_items().size(), 5u);
}

TEST(CatalogTest, UnparseableSampleRenderedAsRaw) {
  EventHistogram hist;
  std::string garbage = "\xff\xfe not thrift";
  hist.Add("web:home:::tweet:click", &garbage);
  auto dict = EventDictionary::FromSortedCounts(hist.SortedByFrequency());
  EventCatalog catalog = EventCatalog::Build(hist, *dict);
  const CatalogEntry* e = catalog.Find("web:home:::tweet:click");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->samples.size(), 1u);
  EXPECT_EQ(e->samples[0].rfind("<raw:", 0), 0u);
}

}  // namespace
}  // namespace unilog::catalog
