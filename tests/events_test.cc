// Unit tests for the client events core: six-level names (Table 1),
// wildcard patterns, the ClientEvent struct (Table 2), framed batches,
// rollup schemas (§3.2), and the legacy application-specific formats
// (§3.1 baseline).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "events/client_event.h"
#include "events/event_name.h"
#include "thrift/compact_protocol.h"
#include "events/legacy.h"
#include "events/rollup.h"

namespace unilog::events {
namespace {

// The paper's running example.
constexpr const char* kExample = "web:home:mentions:stream:avatar:profile_click";

// ---------------------------------------------------------------------------
// EventName

TEST(EventNameTest, ParsePaperExample) {
  auto name = EventName::Parse(kExample);
  ASSERT_TRUE(name.ok()) << name.status().ToString();
  EXPECT_EQ(name->client(), "web");
  EXPECT_EQ(name->page(), "home");
  EXPECT_EQ(name->section(), "mentions");
  EXPECT_EQ(name->part_component(), "stream");
  EXPECT_EQ(name->element(), "avatar");
  EXPECT_EQ(name->action(), "profile_click");
  EXPECT_EQ(name->ToString(), kExample);
}

TEST(EventNameTest, ComponentAccessByEnum) {
  auto name = EventName::Parse(kExample);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->component(NameComponent::kClient), "web");
  EXPECT_EQ(name->component(NameComponent::kAction), "profile_click");
}

TEST(EventNameTest, WrongComponentCountRejected) {
  EXPECT_TRUE(EventName::Parse("web:home").status().IsInvalidArgument());
  EXPECT_TRUE(EventName::Parse("a:b:c:d:e:f:g").status().IsInvalidArgument());
  EXPECT_TRUE(EventName::Parse("").status().IsInvalidArgument());
}

TEST(EventNameTest, CamelCaseRejected) {
  // The paper imposed "consistent, lowercased naming" to combat the
  // dreaded camel_Snake.
  EXPECT_TRUE(EventName::Parse("web:home:Mentions:stream:avatar:click")
                  .status().IsInvalidArgument());
  EXPECT_TRUE(EventName::Parse("web:home:mentions:stream:avatar:profileClick")
                  .status().IsInvalidArgument());
  EXPECT_TRUE(EventName::Parse("Web:home:mentions:stream:avatar:click")
                  .status().IsInvalidArgument());
}

TEST(EventNameTest, EmptyMiddleComponentsAllowed) {
  // A page without multiple sections has an empty section component.
  auto name = EventName::Parse("iphone:profile::::impression");
  ASSERT_TRUE(name.ok()) << name.status().ToString();
  EXPECT_EQ(name->section(), "");
  EXPECT_EQ(name->element(), "");
}

TEST(EventNameTest, EmptyClientOrActionRejected) {
  EXPECT_TRUE(EventName::Parse(":home:mentions:stream:avatar:click")
                  .status().IsInvalidArgument());
  EXPECT_TRUE(EventName::Parse("web:home:mentions:stream:avatar:")
                  .status().IsInvalidArgument());
}

TEST(EventNameTest, MakeValidatesComponents) {
  EXPECT_TRUE(EventName::Make("web", "home", "", "", "", "click").ok());
  EXPECT_FALSE(EventName::Make("web", "Home", "", "", "", "click").ok());
  EXPECT_FALSE(EventName::Make("", "home", "", "", "", "click").ok());
}

TEST(EventNameTest, PrefixForCatalogBrowsing) {
  auto name = EventName::Parse(kExample);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->Prefix(1), "web");
  EXPECT_EQ(name->Prefix(2), "web:home");
  EXPECT_EQ(name->Prefix(3), "web:home:mentions");
  EXPECT_EQ(name->Prefix(6), kExample);
  EXPECT_EQ(name->Prefix(0), "");
  EXPECT_EQ(name->Prefix(99), kExample);
}

TEST(EventNameTest, Ordering) {
  auto a = EventName::Parse("android:home:::tweet:click");
  auto b = EventName::Parse("web:home:::tweet:click");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a < *b);
  EXPECT_TRUE(*a == *a);
}

// ---------------------------------------------------------------------------
// EventPattern: the paper's slice-and-dice queries.

TEST(EventPatternTest, PrefixWildcard) {
  // "all actions on the user's home mentions timeline on twitter.com".
  EventPattern p("web:home:mentions:*");
  EXPECT_TRUE(p.Matches(std::string_view(kExample)));
  EXPECT_TRUE(p.Matches("web:home:mentions:stream:tweet:impression"));
  EXPECT_FALSE(p.Matches("web:home:retweets:stream:tweet:impression"));
  EXPECT_FALSE(p.Matches("iphone:home:mentions:stream:tweet:impression"));
}

TEST(EventPatternTest, SuffixWildcard) {
  // "track profile clicks across all clients with *:profile_click".
  EventPattern p("*:profile_click");
  EXPECT_TRUE(p.Matches(std::string_view(kExample)));
  EXPECT_TRUE(p.Matches("iphone:profile::::profile_click"));
  EXPECT_FALSE(p.Matches("web:home:mentions:stream:avatar:click"));
}

TEST(EventPatternTest, ComponentWildcards) {
  EventPattern p("web:*:*:*:*:impression");
  EXPECT_TRUE(p.Matches("web:home:mentions:stream:tweet:impression"));
  EXPECT_TRUE(p.Matches("web:search:::results:impression"));
  EXPECT_FALSE(p.Matches("android:home:mentions:stream:tweet:impression"));
}

TEST(EventPatternTest, DefaultMatchesEverything) {
  EventPattern p;
  EXPECT_TRUE(p.Matches(std::string_view(kExample)));
  EXPECT_TRUE(p.Matches("x"));
}

TEST(EventPatternTest, MatchesEventNameObject) {
  auto name = EventName::Parse(kExample);
  ASSERT_TRUE(name.ok());
  EXPECT_TRUE(EventPattern("web:*").Matches(*name));
  EXPECT_FALSE(EventPattern("android:*").Matches(*name));
}

// ---------------------------------------------------------------------------
// ClientEvent

ClientEvent SampleEvent() {
  ClientEvent ev;
  ev.initiator = EventInitiator::kClientUser;
  ev.event_name = kExample;
  ev.user_id = 123456789;
  ev.session_id = "cookie-abc123";
  ev.ip = "10.20.30.40";
  ev.timestamp = 1345507200000;
  ev.details = {{"profile_id", "98765"}, {"rank", "3"}};
  return ev;
}

TEST(ClientEventTest, SerializeDeserializeRoundTrip) {
  ClientEvent ev = SampleEvent();
  std::string buf = ev.Serialize();
  auto parsed = ClientEvent::Deserialize(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, ev);
}

TEST(ClientEventTest, EmptyDetailsOmitted) {
  ClientEvent ev = SampleEvent();
  ev.details.clear();
  std::string with_details = SampleEvent().Serialize();
  std::string without = ev.Serialize();
  EXPECT_LT(without.size(), with_details.size());
  auto parsed = ClientEvent::Deserialize(without);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->details.empty());
}

TEST(ClientEventTest, ThriftConversionsRoundTrip) {
  ClientEvent ev = SampleEvent();
  thrift::ThriftValue v = ev.ToThrift();
  ASSERT_TRUE(ClientEvent::Schema().Validate(v).ok());
  auto back = ClientEvent::FromThrift(v);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, ev);
}

TEST(ClientEventTest, FromThriftRejectsMissingRequired) {
  thrift::ThriftValue v = SampleEvent().ToThrift();
  v.mutable_struct().fields.erase(ClientEvent::kFieldUserId);
  EXPECT_FALSE(ClientEvent::FromThrift(v).ok());
}

TEST(ClientEventTest, DeserializeSkipsUnknownFields) {
  // Simulate a newer producer adding field 20.
  thrift::ThriftValue v = SampleEvent().ToThrift();
  v.SetField(20, thrift::ThriftValue::String("new-feature-flag"));
  std::string buf;
  ASSERT_TRUE(thrift::SerializeStruct(v, &buf).ok());
  auto parsed = ClientEvent::Deserialize(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, SampleEvent());
}

TEST(ClientEventTest, CorruptionDetected) {
  std::string buf = SampleEvent().Serialize();
  EXPECT_FALSE(ClientEvent::Deserialize(buf.substr(0, buf.size() / 2)).ok());
  EXPECT_FALSE(ClientEvent::Deserialize(buf + "x").ok());
}

TEST(ClientEventTest, FindDetail) {
  ClientEvent ev = SampleEvent();
  ASSERT_NE(ev.FindDetail("rank"), nullptr);
  EXPECT_EQ(*ev.FindDetail("rank"), "3");
  EXPECT_EQ(ev.FindDetail("nope"), nullptr);
}

TEST(ClientEventTest, InitiatorNames) {
  EXPECT_STREQ(EventInitiatorName(EventInitiator::kClientUser), "client_user");
  EXPECT_STREQ(EventInitiatorName(EventInitiator::kClientApp), "client_app");
  EXPECT_STREQ(EventInitiatorName(EventInitiator::kServerUser), "server_user");
  EXPECT_STREQ(EventInitiatorName(EventInitiator::kServerApp), "server_app");
}

// ---------------------------------------------------------------------------
// Framed batches

TEST(ClientEventBatchTest, WriterReaderRoundTrip) {
  std::string buf;
  ClientEventWriter writer(&buf);
  std::vector<ClientEvent> events;
  for (int i = 0; i < 10; ++i) {
    ClientEvent ev = SampleEvent();
    ev.user_id = i;
    ev.timestamp += i * 1000;
    events.push_back(ev);
    writer.Add(ev);
  }
  EXPECT_EQ(writer.count(), 10u);

  ClientEventReader reader(buf);
  ClientEvent ev;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reader.Next(&ev).ok()) << i;
    EXPECT_EQ(ev, events[i]);
  }
  EXPECT_TRUE(reader.Next(&ev).IsNotFound());
}

TEST(ClientEventBatchTest, NameOnlyProjection) {
  std::string buf;
  ClientEventWriter writer(&buf);
  ClientEvent a = SampleEvent();
  ClientEvent b = SampleEvent();
  b.event_name = "iphone:home:::tweet:favorite";
  writer.Add(a);
  writer.Add(b);

  ClientEventReader reader(buf);
  std::string name;
  ASSERT_TRUE(reader.NextEventNameOnly(&name).ok());
  EXPECT_EQ(name, kExample);
  ASSERT_TRUE(reader.NextEventNameOnly(&name).ok());
  EXPECT_EQ(name, "iphone:home:::tweet:favorite");
  EXPECT_TRUE(reader.NextEventNameOnly(&name).IsNotFound());
}

TEST(ClientEventBatchTest, CorruptFramingDetected) {
  std::string buf;
  ClientEventWriter writer(&buf);
  writer.Add(SampleEvent());
  ClientEventReader reader(std::string_view(buf).substr(0, buf.size() - 2));
  ClientEvent ev;
  EXPECT_TRUE(reader.Next(&ev).IsCorruption());
}

// ---------------------------------------------------------------------------
// Rollups

TEST(RollupTest, KeyForEachLevel) {
  auto name = EventName::Parse(kExample);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(RollupKeyFor(*name, RollupLevel::kFull), kExample);
  EXPECT_EQ(RollupKeyFor(*name, RollupLevel::kNoElement),
            "web:home:mentions:stream:*:profile_click");
  EXPECT_EQ(RollupKeyFor(*name, RollupLevel::kNoComponent),
            "web:home:mentions:*:*:profile_click");
  EXPECT_EQ(RollupKeyFor(*name, RollupLevel::kNoSection),
            "web:home:*:*:*:profile_click");
  EXPECT_EQ(RollupKeyFor(*name, RollupLevel::kNoPage),
            "web:*:*:*:*:profile_click");
}

TEST(RollupTest, AggregatesAcrossLevels) {
  RollupAggregator agg;
  auto click = EventName::Parse(kExample);
  auto impression =
      EventName::Parse("web:home:mentions:stream:tweet:impression");
  auto iphone_click =
      EventName::Parse("iphone:home:mentions:stream:avatar:profile_click");
  ASSERT_TRUE(click.ok());
  ASSERT_TRUE(impression.ok());
  ASSERT_TRUE(iphone_click.ok());

  agg.Add(*click, "us", true);
  agg.Add(*click, "uk", false);
  agg.Add(*impression, "us", true);
  agg.Add(*iphone_click, "us", true);

  // Full level: three distinct keys.
  EXPECT_EQ(agg.Level(RollupLevel::kFull).size(), 3u);
  const RollupCell& full =
      agg.Level(RollupLevel::kFull).at(kExample);
  EXPECT_EQ(full.total, 2u);
  EXPECT_EQ(full.logged_in, 1u);
  EXPECT_EQ(full.logged_out, 1u);
  EXPECT_EQ(full.by_country.at("us"), 1u);
  EXPECT_EQ(full.by_country.at("uk"), 1u);

  // Client-level: web clicks and iphone clicks are separate; impressions
  // separate.
  const auto& top = agg.Level(RollupLevel::kNoPage);
  EXPECT_EQ(top.at("web:*:*:*:*:profile_click").total, 2u);
  EXPECT_EQ(top.at("iphone:*:*:*:*:profile_click").total, 1u);
  EXPECT_EQ(top.at("web:*:*:*:*:impression").total, 1u);
}

TEST(RollupTest, TopRowsSortedByCount) {
  RollupAggregator agg;
  auto a = EventName::Parse("web:home:::tweet:impression");
  auto b = EventName::Parse("web:home:::tweet:click");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  agg.Add(*a, "us", true, 10);
  agg.Add(*b, "us", true, 3);
  auto rows = agg.TopRows(RollupLevel::kFull, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "web:home:::tweet:impression 10 10 0");
  EXPECT_EQ(rows[1], "web:home:::tweet:click 3 3 0");
  EXPECT_EQ(agg.TopRows(RollupLevel::kFull, 1).size(), 1u);
}

TEST(RollupTest, TotalKeysCountsAllLevels) {
  RollupAggregator agg;
  auto a = EventName::Parse(kExample);
  ASSERT_TRUE(a.ok());
  agg.Add(*a, "us", true);
  // One event appears once in each of the five levels.
  EXPECT_EQ(agg.TotalKeys(), 5u);
}

// ---------------------------------------------------------------------------
// Legacy formats (the application-specific baseline)

TEST(LegacyTest, JsonFormatRoundTrip) {
  ClientEvent ev = SampleEvent();
  std::string line = LegacyJsonFormat::Format(ev);
  auto rec = LegacyJsonFormat::Parse(line);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->user_id, ev.user_id);
  EXPECT_EQ(rec->timestamp, ev.timestamp);  // ms precision preserved
  EXPECT_EQ(rec->action, "profile_click");
  EXPECT_EQ(rec->source, LegacyJsonFormat::kCategory);
}

TEST(LegacyTest, DelimitedFormatLosesSubSecondPrecision) {
  ClientEvent ev = SampleEvent();
  ev.timestamp = 1345507200789;  // with sub-second part
  std::string line = LegacyDelimitedFormat::Format(ev);
  auto rec = LegacyDelimitedFormat::Parse(line);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->user_id, ev.user_id);
  EXPECT_EQ(rec->timestamp, 1345507200000);  // truncated to seconds
  EXPECT_EQ(rec->action, "profile_click");
}

TEST(LegacyTest, DelimitedEscapesEmbeddedTabs) {
  ClientEvent ev = SampleEvent();
  ev.details = {{"query", "tab\there"}};
  std::string line = LegacyDelimitedFormat::Format(ev);
  // Still exactly 5 columns.
  auto rec = LegacyDelimitedFormat::Parse(line);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
}

TEST(LegacyTest, NaturalFormatMinuteResolution) {
  ClientEvent ev = SampleEvent();
  ev.timestamp = MakeDate(2012, 8, 21) + 13 * kMillisPerHour +
                 45 * kMillisPerMinute + 33 * kMillisPerSecond;
  ev.details = {{"query", "vldb 2012"}};
  std::string line = LegacyNaturalFormat::Format(ev);
  EXPECT_NE(line.find("user 123456789 performed profile_click at"),
            std::string::npos);
  EXPECT_NE(line.find("[vldb 2012]"), std::string::npos);
  auto rec = LegacyNaturalFormat::Parse(line);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->user_id, ev.user_id);
  // Seconds truncated: minute resolution only.
  EXPECT_EQ(rec->timestamp,
            MakeDate(2012, 8, 21) + 13 * kMillisPerHour + 45 * kMillisPerMinute);
  EXPECT_EQ(rec->action, "profile_click");
}

TEST(LegacyTest, MalformedLinesRejected) {
  EXPECT_FALSE(LegacyJsonFormat::Parse("{not json").ok());
  EXPECT_FALSE(LegacyJsonFormat::Parse("{\"other\":1}").ok());
  EXPECT_FALSE(LegacyDelimitedFormat::Parse("only\tthree\tcols").ok());
  EXPECT_FALSE(LegacyDelimitedFormat::Parse("x\t1\tip\tact\tblob").ok());
  EXPECT_FALSE(LegacyNaturalFormat::Parse("nonsense line").ok());
  EXPECT_FALSE(
      LegacyNaturalFormat::Parse("user abc performed x at 2012-01-01 00:00")
          .ok());
}

TEST(LegacyTest, DispatchByCategory) {
  ClientEvent ev = SampleEvent();
  auto a = ParseLegacy(LegacyJsonFormat::kCategory,
                       LegacyJsonFormat::Format(ev));
  auto b = ParseLegacy(LegacyDelimitedFormat::kCategory,
                       LegacyDelimitedFormat::Format(ev));
  auto c = ParseLegacy(LegacyNaturalFormat::kCategory,
                       LegacyNaturalFormat::Format(ev));
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(ParseLegacy("unknown_category", "x").status().IsNotFound());
}

// Property sweep: every format recovers user_id and action exactly for a
// range of users/actions.
class LegacyFormatSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, const char*>> {};

TEST_P(LegacyFormatSweep, AllFormatsRecoverIdentity) {
  auto [uid, action] = GetParam();
  ClientEvent ev = SampleEvent();
  ev.user_id = uid;
  ev.event_name = std::string("web:home:::tweet:") + action;

  for (auto format_and_parse :
       {+[](const ClientEvent& e) {
          return LegacyJsonFormat::Parse(LegacyJsonFormat::Format(e));
        },
        +[](const ClientEvent& e) {
          return LegacyDelimitedFormat::Parse(LegacyDelimitedFormat::Format(e));
        },
        +[](const ClientEvent& e) {
          return LegacyNaturalFormat::Parse(LegacyNaturalFormat::Format(e));
        }}) {
    auto rec = format_and_parse(ev);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->user_id, uid);
    EXPECT_EQ(rec->action, action);
  }
}

INSTANTIATE_TEST_SUITE_P(
    UsersAndActions, LegacyFormatSweep,
    ::testing::Combine(::testing::Values(int64_t{0}, int64_t{1},
                                         int64_t{999999999999}),
                       ::testing::Values("impression", "click", "follow")));

}  // namespace
}  // namespace unilog::events
