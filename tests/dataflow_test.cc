// Tests for the dataflow engine: the Hadoop-shaped cost model, simulated
// MapReduce jobs over MiniHdfs, and the Pig-like relational operators.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/compress.h"
#include "dataflow/columnar_scan.h"
#include "dataflow/cost_model.h"
#include "dataflow/mapreduce.h"
#include "dataflow/plan_fingerprint.h"
#include "dataflow/relation.h"
#include "dataflow/relation_serde.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "scribe/message.h"

namespace unilog::dataflow {
namespace {

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModelTest, MoreMapTasksCostMore) {
  JobCostModel model;
  JobStats few, many;
  few.map_tasks = 10;
  few.bytes_scanned = 10 << 20;
  many.map_tasks = 10000;
  many.bytes_scanned = 10 << 20;  // same bytes, more tasks
  EXPECT_LT(ModelWallTimeMs(model, few), ModelWallTimeMs(model, many));
}

TEST(CostModelTest, MoreBytesCostMore) {
  JobCostModel model;
  JobStats small, big;
  small.map_tasks = big.map_tasks = 100;
  small.bytes_scanned = 1 << 20;
  big.bytes_scanned = 1 << 30;
  EXPECT_LT(ModelWallTimeMs(model, small), ModelWallTimeMs(model, big));
}

TEST(CostModelTest, ShuffleAddsCost) {
  JobCostModel model;
  JobStats map_only, with_shuffle;
  map_only.map_tasks = with_shuffle.map_tasks = 100;
  map_only.bytes_scanned = with_shuffle.bytes_scanned = 1 << 20;
  with_shuffle.reduce_tasks = 16;
  with_shuffle.bytes_shuffled = 1 << 26;
  EXPECT_LT(ModelWallTimeMs(model, map_only),
            ModelWallTimeMs(model, with_shuffle));
}

TEST(CostModelTest, AccumulateSums) {
  JobStats a, b;
  a.map_tasks = 5;
  a.bytes_scanned = 100;
  b.map_tasks = 7;
  b.bytes_scanned = 200;
  a.Accumulate(b);
  EXPECT_EQ(a.map_tasks, 12u);
  EXPECT_EQ(a.bytes_scanned, 300u);
}

// ---------------------------------------------------------------------------
// MapReduce

class MapReduceTest : public ::testing::Test {
 protected:
  MapReduceTest() {
    // Small block size so files split into multiple map tasks.
    hdfs::HdfsOptions opts;
    opts.block_size = 256;
    fs_ = std::make_unique<hdfs::MiniHdfs>(nullptr, opts);
  }

  void WriteFramedCompressed(const std::string& path,
                             const std::vector<std::string>& messages) {
    std::string body = Lz::Compress(scribe::FrameMessages(messages));
    ASSERT_TRUE(fs_->WriteFile(path, body).ok());
  }

  std::unique_ptr<hdfs::MiniHdfs> fs_;
  JobCostModel model_;
};

TEST_F(MapReduceTest, WordCountStyleJob) {
  WriteFramedCompressed("/in/f1", {"a", "b", "a"});
  WriteFramedCompressed("/in/f2", {"b", "a"});
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string& record, Emitter* e) {
    e->Emit(record, "1");
    return Status::OK();
  });
  job.set_reduce([](const std::string& key,
                    const std::vector<std::string>& values, Emitter* e) {
    e->Emit(key, std::to_string(values.size()));
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0], (std::pair<std::string, std::string>{"a", "3"}));
  EXPECT_EQ((*out)[1], (std::pair<std::string, std::string>{"b", "2"}));
  EXPECT_EQ(job.stats().records_read, 5u);
  EXPECT_GE(job.stats().map_tasks, 2u);
  EXPECT_GT(job.stats().bytes_shuffled, 0u);
  EXPECT_GT(job.stats().modeled_ms, 0.0);
}

TEST_F(MapReduceTest, MapOnlyJob) {
  WriteFramedCompressed("/in/f1", {"x", "yy", "zzz"});
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string& record, Emitter* e) {
    if (record.size() >= 2) e->Emit(record, "");
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(job.stats().reduce_tasks, 0u);
  EXPECT_EQ(job.stats().bytes_shuffled, 0u);
}

TEST_F(MapReduceTest, SkipsUnderscoreFiles) {
  WriteFramedCompressed("/in/f1", {"a"});
  ASSERT_TRUE(fs_->WriteFile("/in/_SUCCESS", "").ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  EXPECT_EQ(job.input_file_count(), 1u);
}

TEST_F(MapReduceTest, MapTasksScaleWithBlocks) {
  // One big file spanning many 256-byte blocks.
  std::vector<std::string> many(200, "some-message-payload");
  std::string body = scribe::FrameMessages(many);  // uncompressed
  ASSERT_TRUE(fs_->WriteFile("/in/big", body).ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_input_format(InputFormat::Framed());
  job.set_map([](const std::string&, Emitter*) { return Status::OK(); });
  ASSERT_TRUE(job.Run().ok());
  EXPECT_EQ(job.stats().map_tasks, fs_->Stat("/in/big")->block_count);
  EXPECT_GT(job.stats().map_tasks, 10u);
}

TEST_F(MapReduceTest, FileFilterPushDownSkipsScans) {
  WriteFramedCompressed("/in/keep", {"a", "a"});
  WriteFramedCompressed("/in/skip", {"b", "b", "b"});
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_input_format(InputFormat::CompressedFramed().WithFileFilter(
      [](const std::string& path) {
        return path.find("skip") == std::string::npos;
      }));
  job.set_map([](const std::string& record, Emitter* e) {
    e->Emit(record, "");
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // only "keep" records
  EXPECT_EQ(job.stats().records_read, 2u);
}

TEST_F(MapReduceTest, LinesInputFormat) {
  ASSERT_TRUE(fs_->WriteFile("/in/log.txt", "line1\nline2\n\nline3").ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_input_format(InputFormat::Lines());
  job.set_map([](const std::string& record, Emitter* e) {
    e->Emit(record, "");
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST_F(MapReduceTest, CorruptInputSurfacesError) {
  ASSERT_TRUE(fs_->WriteFile("/in/bad", "not a compressed file").ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string&, Emitter*) { return Status::OK(); });
  EXPECT_FALSE(job.Run().ok());
}

TEST_F(MapReduceTest, MissingInputDirFails) {
  MapReduceJob job(fs_.get(), model_);
  EXPECT_TRUE(job.AddInputDir("/nope").IsNotFound());
}

TEST_F(MapReduceTest, NoMapFunctionFails) {
  MapReduceJob job(fs_.get(), model_);
  EXPECT_TRUE(job.Run().status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Relation

Relation SampleEvents() {
  Relation r({"user_id", "event", "country", "count"});
  auto add = [&r](int64_t uid, const char* ev, const char* c, int64_t n) {
    EXPECT_TRUE(
        r.AddRow({Value::Int(uid), Value::Str(ev), Value::Str(c),
                  Value::Int(n)})
            .ok());
  };
  add(1, "impression", "us", 10);
  add(1, "click", "us", 2);
  add(2, "impression", "uk", 5);
  add(2, "impression", "us", 7);
  add(3, "click", "uk", 1);
  return r;
}

TEST(RelationTest, SchemaAndArity) {
  Relation r({"a", "b"});
  EXPECT_TRUE(r.AddRow({Value::Int(1)}).IsInvalidArgument());
  EXPECT_TRUE(r.AddRow({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.ColumnIndex("a").ok());
  EXPECT_TRUE(r.ColumnIndex("zzz").status().IsNotFound());
}

TEST(RelationTest, FilterAndProject) {
  Relation r = SampleEvents();
  size_t ev_idx = r.ColumnIndex("event").value();
  Relation clicks = r.Filter(
      [&](const Row& row) { return row[ev_idx].str_value() == "click"; });
  EXPECT_EQ(clicks.size(), 2u);

  auto projected = clicks.Project({"user_id", "country"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->columns(),
            (std::vector<std::string>{"user_id", "country"}));
  EXPECT_EQ(projected->rows()[0].size(), 2u);
  EXPECT_FALSE(clicks.Project({"nope"}).ok());
}

TEST(RelationTest, GroupByCountSumMinMax) {
  Relation r = SampleEvents();
  auto grouped = r.GroupBy(
      {"event"},
      {{Aggregate::Op::kCount, "", "n"},
       {Aggregate::Op::kSum, "count", "total"},
       {Aggregate::Op::kMin, "count", "lo"},
       {Aggregate::Op::kMax, "count", "hi"}});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  ASSERT_EQ(grouped->size(), 2u);  // click, impression (sorted)
  const Row& click = grouped->rows()[0];
  EXPECT_EQ(click[0].str_value(), "click");
  EXPECT_EQ(click[1].int_value(), 2);
  EXPECT_EQ(click[2].real_value(), 3.0);
  EXPECT_EQ(click[3].int_value(), 1);
  EXPECT_EQ(click[4].int_value(), 2);
  const Row& imp = grouped->rows()[1];
  EXPECT_EQ(imp[1].int_value(), 3);
  EXPECT_EQ(imp[2].real_value(), 22.0);
}

TEST(RelationTest, GroupByCountDistinct) {
  Relation r = SampleEvents();
  auto grouped = r.GroupBy(
      {"event"}, {{Aggregate::Op::kCountDistinct, "user_id", "users"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->rows()[0][1].int_value(), 2);  // click: users 1,3
  EXPECT_EQ(grouped->rows()[1][1].int_value(), 2);  // impression: users 1,2
}

TEST(RelationTest, MultiKeyGroupBy) {
  Relation r = SampleEvents();
  auto grouped =
      r.GroupBy({"event", "country"}, {{Aggregate::Op::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->size(), 4u);
}

TEST(RelationTest, JoinInner) {
  Relation users({"uid", "name"});
  ASSERT_TRUE(users.AddRow({Value::Int(1), Value::Str("alice")}).ok());
  ASSERT_TRUE(users.AddRow({Value::Int(2), Value::Str("bob")}).ok());
  Relation r = SampleEvents();
  auto joined = r.Join(users, "user_id", "uid");
  ASSERT_TRUE(joined.ok());
  // User 3 has no match → dropped.
  EXPECT_EQ(joined->size(), 4u);
  EXPECT_EQ(joined->columns().back(), "name");
  auto name = joined->Get(joined->rows()[0], "name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->str_value(), "alice");
  EXPECT_FALSE(r.Join(users, "nope", "uid").ok());
}

TEST(RelationTest, DistinctOrderByLimit) {
  Relation r({"x"});
  for (int v : {3, 1, 3, 2, 1}) {
    ASSERT_TRUE(r.AddRow({Value::Int(v)}).ok());
  }
  Relation d = r.Distinct();
  EXPECT_EQ(d.size(), 3u);
  auto sorted = d.OrderBy("x", /*descending=*/true);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->rows()[0][0].int_value(), 3);
  EXPECT_EQ(sorted->rows()[2][0].int_value(), 1);
  EXPECT_EQ(sorted->Limit(2).size(), 2u);
  EXPECT_EQ(sorted->Limit(99).size(), 3u);
}

TEST(RelationTest, WithColumnComputes) {
  Relation r = SampleEvents();
  size_t count_idx = r.ColumnIndex("count").value();
  auto extended = r.WithColumn("doubled", [count_idx](const Row& row) {
    return Value::Int(row[count_idx].int_value() * 2);
  });
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->Get(extended->rows()[0], "doubled")->int_value(), 20);
  EXPECT_TRUE(r.WithColumn("count", [](const Row&) {
                   return Value::Int(0);
                 }).status().IsAlreadyExists());
}

TEST(RelationTest, ValueOrderingAcrossTypes) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Str("a") < Value::Str("b"));
  EXPECT_TRUE(Value::Int(5) == Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Str("5"));
  EXPECT_EQ(Value::Real(2.5).AsNumber(), 2.5);
  EXPECT_EQ(Value::Int(3).AsNumber(), 3.0);
  EXPECT_EQ(Value::Bool(true).AsNumber(), 1.0);
}

TEST(RelationTest, ToStringRendersHeaderAndRows) {
  Relation r({"a", "b"});
  ASSERT_TRUE(r.AddRow({Value::Int(1), Value::Str("x")}).ok());
  std::string s = r.ToString();
  EXPECT_NE(s.find("a\tb"), std::string::npos);
  EXPECT_NE(s.find("1\tx"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Relation serde (the Oink cache payload format)

TEST(RelationSerdeTest, RoundTripsAllValueTypes) {
  Relation r({"i", "r", "s", "b"});
  ASSERT_TRUE(r.AddRow({Value::Int(-42), Value::Real(0.1),
                        Value::Str(std::string("h\0éllo", 7)),
                        Value::Bool(true)})
                  .ok());
  ASSERT_TRUE(r.AddRow({Value::Int(INT64_MAX), Value::Real(-0.0),
                        Value::Str(""), Value::Bool(false)})
                  .ok());
  std::string bytes = SerializeRelation(r);
  auto back = DeserializeRelation(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->columns(), r.columns());
  ASSERT_EQ(back->rows().size(), r.rows().size());
  for (size_t i = 0; i < r.rows().size(); ++i) {
    EXPECT_EQ(back->rows()[i], r.rows()[i]) << i;
  }
  // Bit-exact doubles: -0.0 re-serializes to the same bytes.
  EXPECT_EQ(SerializeRelation(*back), bytes);
}

TEST(RelationSerdeTest, EmptyAndZeroColumnRelations) {
  Relation empty({"a", "b"});
  auto back = DeserializeRelation(SerializeRelation(empty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->columns(), empty.columns());
  EXPECT_EQ(back->size(), 0u);

  Relation none;  // zero columns, zero rows
  auto back2 = DeserializeRelation(SerializeRelation(none));
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2->columns().size(), 0u);
}

TEST(RelationSerdeTest, MalformedInputIsCorruptionNeverCrash) {
  Relation r({"a", "b"});
  ASSERT_TRUE(r.AddRow({Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(r.AddRow({Value::Int(2), Value::Str("yy")}).ok());
  std::string good = SerializeRelation(r);

  // Bad magic.
  std::string bad = good;
  bad[0] ^= 0x20;
  EXPECT_TRUE(DeserializeRelation(bad).status().IsCorruption());
  // Every truncation fails cleanly.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    auto st = DeserializeRelation(std::string_view(good).substr(0, cut));
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
  // Trailing garbage is rejected (a silent prefix-parse would let a
  // corrupt artifact half-match).
  EXPECT_TRUE(DeserializeRelation(good + "z").status().IsCorruption());
  // Unknown value tag.
  bad = good;
  bad[bad.size() - 4] = static_cast<char>(0x7f);
  EXPECT_FALSE(DeserializeRelation(bad).ok());
}

// ---------------------------------------------------------------------------
// Canonical ScanSpec serialization + union merge (plan fingerprints)

TEST(PlanFingerprintTest, CanonicalSpecDistinguishesAbsentFromEmpty) {
  columnar::ScanSpec absent;
  columnar::ScanSpec empty;
  empty.event_names = std::set<std::string>{};
  EXPECT_NE(CanonicalScanSpec(absent), CanonicalScanSpec(empty));
}

TEST(PlanFingerprintTest, CanonicalSpecIsOrderInsensitiveWhereSemanticsAre) {
  columnar::ScanSpec a, b;
  a.event_names = {"x", "y"};
  b.event_names = {"y", "x"};
  a.user_ids = {3, 1};
  b.user_ids = {1, 3};
  a.event_name_patterns = {"web:*", "*:click", "web:*"};
  b.event_name_patterns = {"*:click", "web:*"};  // dup removed, order free
  EXPECT_EQ(CanonicalScanSpec(a), CanonicalScanSpec(b));

  columnar::ScanSpec c = a;
  c.event_name_patterns.push_back("api:*");
  EXPECT_NE(CanonicalScanSpec(c), CanonicalScanSpec(a));
}

TEST(PlanFingerprintTest, FingerprintIsStableAndSensitive) {
  Fingerprint fp1, fp2;
  fp1.Mix("hello");
  fp2.Mix("hello");
  EXPECT_EQ(fp1.value(), fp2.value());
  EXPECT_EQ(fp1.Hex().size(), 16u);
  Fingerprint fp3;
  fp3.Mix("hellp");
  EXPECT_NE(fp3.value(), fp1.value());
  EXPECT_EQ(Fingerprint::OfBytes("abc"), Fingerprint::OfBytes("abc"));
  EXPECT_NE(Fingerprint::OfBytes("abc"), Fingerprint::OfBytes("abd"));
}

TEST(MergeScanSpecsTest, MergedSpecIsWeakerThanEveryMember) {
  columnar::ScanSpec a;
  a.columns = columnar::ColumnBit(columnar::EventColumn::kEventName);
  a.min_timestamp = 100;
  a.max_timestamp = 200;
  a.event_names = {"x"};
  columnar::ScanSpec b;
  b.columns = columnar::ColumnBit(columnar::EventColumn::kUserId);
  b.min_timestamp = 150;
  b.max_timestamp = 400;
  b.event_names = {"y", "z"};

  columnar::ScanSpec m = MergeScanSpecs({a, b});
  EXPECT_EQ(*m.min_timestamp, 100);
  EXPECT_EQ(*m.max_timestamp, 400);
  ASSERT_TRUE(m.event_names.has_value());
  EXPECT_EQ(m.event_names->size(), 3u);
  // Both members' output columns survive...
  EXPECT_TRUE(m.columns & columnar::ColumnBit(columnar::EventColumn::kEventName));
  EXPECT_TRUE(m.columns & columnar::ColumnBit(columnar::EventColumn::kUserId));
  // ...plus the columns residual re-filters must see (both members have
  // timestamp + name predicates).
  EXPECT_TRUE(m.columns & columnar::ColumnBit(columnar::EventColumn::kTimestamp));
}

TEST(MergeScanSpecsTest, ConstraintSurvivesOnlyWhenAllMembersImposeIt) {
  columnar::ScanSpec a;
  a.min_timestamp = 100;
  a.event_names = {"x"};
  a.user_ids = {1};
  columnar::ScanSpec b;  // no constraints at all

  columnar::ScanSpec m = MergeScanSpecs({a, b});
  EXPECT_FALSE(m.min_timestamp.has_value());
  EXPECT_FALSE(m.event_names.has_value());
  EXPECT_FALSE(m.user_ids.has_value());
  EXPECT_TRUE(m.event_name_patterns.empty());
}

TEST(MergeScanSpecsTest, PatternsIntersectAcrossMembers) {
  columnar::ScanSpec a;
  a.event_name_patterns = {"web:*", "*:click"};
  columnar::ScanSpec b;
  b.event_name_patterns = {"*:click", "api:*"};
  columnar::ScanSpec m = MergeScanSpecs({a, b});
  // Only the pattern every member imposes may constrain the union scan.
  ASSERT_EQ(m.event_name_patterns.size(), 1u);
  EXPECT_EQ(m.event_name_patterns[0], "*:click");
}

// ---------------------------------------------------------------------------
// Hidden warehouse paths: '_'-prefixed components below the scanned dir
// are invisible to scans and manifests, however deeply nested — the rule
// that keeps /warehouse/_cache artifacts out of the inputs they memoize.

TEST(HiddenWarehousePathTest, AnyUnderscoreComponentBelowDirHides) {
  const std::string dir = "/logs/client_events/2012/08/21";
  EXPECT_FALSE(IsHiddenWarehousePath(dir, dir + "/00/part-00000"));
  EXPECT_TRUE(IsHiddenWarehousePath(dir, dir + "/00/_SUCCESS"));
  EXPECT_TRUE(IsHiddenWarehousePath(dir, dir + "/_cache/ab12.okc"));
  EXPECT_TRUE(IsHiddenWarehousePath(dir, dir + "/_cache/sub/deep.okc"));
  // Underscores in the dir prefix itself never hide anything: listing
  // "/warehouse/_cache" directly sees its own files.
  EXPECT_FALSE(IsHiddenWarehousePath("/warehouse/_cache",
                                     "/warehouse/_cache/ab12.okc"));
  // Non-leading underscores are ordinary characters.
  EXPECT_FALSE(IsHiddenWarehousePath(dir, dir + "/00/part_0"));
}

// ---------------------------------------------------------------------------
// Shared scans: one union scan fanned out per member must be
// byte-identical to independent scans, at any thread count.

class SharedScanTest : public ::testing::Test {
 protected:
  SharedScanTest() {
    std::string columnar_body;
    columnar::RcFileWriter writer(&columnar_body, 16);
    std::string legacy_body;
    events::ClientEventWriter legacy(&legacy_body);
    for (int i = 0; i < 150; ++i) {
      events::ClientEvent ev;
      ev.initiator = static_cast<events::EventInitiator>(i % 2);
      ev.event_name = i % 3 == 0 ? "web:home:::tweet:click"
                                 : "web:home:::tweet:impression";
      ev.user_id = 100 + i % 7;
      ev.session_id = "s" + std::to_string(i % 5);
      ev.ip = "10.0.0.1";
      ev.timestamp = 1345507200000 + static_cast<TimeMs>(i) * 60000;
      if (i < 100) {
        EXPECT_TRUE(writer.Add(ev).ok());
      } else {
        legacy.Add(ev);
      }
    }
    EXPECT_TRUE(writer.Finish().ok());
    EXPECT_TRUE(fs_.WriteFile(kDir + std::string("/part-00000"),
                              columnar_body)
                    .ok());
    EXPECT_TRUE(fs_.WriteFile(kDir + std::string("/part-00001"),
                              Lz::Compress(legacy_body))
                    .ok());
  }

  static constexpr const char* kDir = "/warehouse/client_events/2012/08/21/00";

  // Three deliberately different plans over the same hour.
  std::vector<std::shared_ptr<ColumnarEventScan>> MakeMembers(
      const std::shared_ptr<ColumnarEventScan>& base) {
    auto clicks = std::static_pointer_cast<ColumnarEventScan>(base->Clone());
    EXPECT_TRUE(clicks->PushFilter("event_name", "==",
                                   Value::Str("web:home:::tweet:click")));
    EXPECT_TRUE(clicks->PushProject({"user_id"}, {"uid"}));

    auto window = std::static_pointer_cast<ColumnarEventScan>(base->Clone());
    EXPECT_TRUE(window->PushFilter("timestamp", ">=",
                                   Value::Int(1345507200000 + 30 * 60000)));
    EXPECT_TRUE(window->PushFilter("timestamp", "<",
                                   Value::Int(1345507200000 + 90 * 60000)));

    auto user = std::static_pointer_cast<ColumnarEventScan>(base->Clone());
    EXPECT_TRUE(user->PushFilter("user_id", "==", Value::Int(103)));
    EXPECT_TRUE(user->PushProject({"event_name", "timestamp"}, {"n", "t"}));
    return {clicks, window, user};
  }

  hdfs::MiniHdfs fs_;
};

TEST_F(SharedScanTest, SharedEqualsIndependentAtEveryThreadCount) {
  // Reference: independent materialization, serial.
  auto base = ColumnarEventScan::Open(&fs_, kDir);
  ASSERT_TRUE(base.ok());
  std::vector<std::string> want;
  for (auto& member : MakeMembers(*base)) {
    auto rel = member->Materialize(nullptr);
    ASSERT_TRUE(rel.ok());
    want.push_back(SerializeRelation(*rel));
  }
  ASSERT_EQ(want.size(), 3u);

  for (int threads : {0, 1, 2, 8}) {
    auto fresh = ColumnarEventScan::Open(&fs_, kDir);
    ASSERT_TRUE(fresh.ok());
    auto members = MakeMembers(*fresh);
    std::unique_ptr<exec::Executor> executor;
    if (threads > 0) {
      exec::ExecOptions eo;
      eo.threads = threads;
      executor = std::make_unique<exec::Executor>(eo);
    }
    columnar::ScanStats stats;
    auto rels =
        ColumnarEventScan::MaterializeShared(members, executor.get(), &stats);
    ASSERT_TRUE(rels.ok()) << rels.status().ToString();
    ASSERT_EQ(rels->size(), 3u);
    for (size_t i = 0; i < rels->size(); ++i) {
      EXPECT_EQ(SerializeRelation((*rels)[i]), want[i])
          << "threads=" << threads << " member=" << i;
    }
    EXPECT_GT(stats.bytes_decompressed, 0u);
    // Members' caches were filled: re-materializing is free and identical.
    auto again = members[0]->Materialize(nullptr);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(SerializeRelation(*again), want[0]);
  }
}

TEST_F(SharedScanTest, SharedScanDecompressesLessThanIndependentScans) {
  // Independent: each member pays for the file bytes it touches.
  auto base = ColumnarEventScan::Open(&fs_, kDir);
  ASSERT_TRUE(base.ok());
  uint64_t independent = 0;
  for (auto& member : MakeMembers(*base)) {
    ASSERT_TRUE(member->Materialize(nullptr).ok());
    independent += member->last_stats().bytes_decompressed;
  }
  auto fresh = ColumnarEventScan::Open(&fs_, kDir);
  ASSERT_TRUE(fresh.ok());
  auto members = MakeMembers(*fresh);
  columnar::ScanStats stats;
  ASSERT_TRUE(
      ColumnarEventScan::MaterializeShared(members, nullptr, &stats).ok());
  EXPECT_LT(stats.bytes_decompressed, independent);
}

TEST_F(SharedScanTest, MembersMustShareOneOpenedScan) {
  auto a = ColumnarEventScan::Open(&fs_, kDir);
  auto b = ColumnarEventScan::Open(&fs_, kDir);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto clone_a = std::static_pointer_cast<ColumnarEventScan>((*a)->Clone());
  EXPECT_TRUE(ColumnarEventScan::MaterializeShared({*a, *b}, nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ColumnarEventScan::MaterializeShared({*a, clone_a}, nullptr).ok());
  // Degenerate cases: empty and singleton member lists.
  auto none = ColumnarEventScan::MaterializeShared({}, nullptr);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// ---------------------------------------------------------------------------
// Corrupt-input quarantine: a part whose decode fails with Corruption is
// renamed aside and skipped instead of failing the whole job.

class QuarantineTest : public ::testing::Test {
 protected:
  static std::string ColumnarBody(int rows) {
    std::string body;
    columnar::RcFileWriter writer(&body, 16);
    for (int i = 0; i < rows; ++i) {
      events::ClientEvent ev;
      ev.initiator = events::EventInitiator::kClientUser;
      ev.event_name = "web:home:::tweet:click";
      ev.user_id = 100 + i;
      ev.session_id = "s" + std::to_string(i % 5);
      ev.ip = "10.0.0.1";
      ev.timestamp = 1345507200000 + static_cast<TimeMs>(i) * 1000;
      EXPECT_TRUE(writer.Add(ev).ok());
    }
    EXPECT_TRUE(writer.Finish().ok());
    return body;
  }

  // Counts records across all inputs under "rows".
  static void ConfigureCountJob(MapReduceJob* job) {
    job->set_input_format(InputFormat::CompressedFramedOrColumnar());
    job->set_map([](const std::string&, Emitter* e) {
      e->Emit("rows", "1");
      return Status::OK();
    });
    job->set_reduce([](const std::string& key,
                       const std::vector<std::string>& values, Emitter* e) {
      e->Emit(key, std::to_string(values.size()));
      return Status::OK();
    });
  }

  JobCostModel model_;
};

TEST_F(QuarantineTest, CorruptColumnarInputFailsJobByDefault) {
  hdfs::MiniHdfs fs;
  ASSERT_TRUE(fs.WriteFile("/in/part-00000", ColumnarBody(40)).ok());
  ASSERT_TRUE(fs.CorruptFile("/in/part-00000", 100).ok());

  MapReduceJob job(&fs, model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  ConfigureCountJob(&job);
  auto out = job.Run();
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCorruption()) << out.status().ToString();
  EXPECT_TRUE(fs.Exists("/in/part-00000"));  // nothing renamed
}

TEST_F(QuarantineTest, QuarantineSkipsCorruptPartOnBothEngines) {
  for (int threads : {0, 4}) {
    hdfs::MiniHdfs fs;
    ASSERT_TRUE(fs.WriteFile("/in/part-00000", ColumnarBody(60)).ok());
    ASSERT_TRUE(fs.WriteFile("/in/part-00001", ColumnarBody(25)).ok());
    ASSERT_TRUE(fs.CorruptFile("/in/part-00001", 100).ok());

    std::unique_ptr<exec::Executor> executor;
    if (threads > 0) {
      exec::ExecOptions eo;
      eo.threads = threads;
      executor = std::make_unique<exec::Executor>(eo);
    }
    MapReduceJob job(&fs, model_);
    ASSERT_TRUE(job.AddInputDir("/in").ok());
    ConfigureCountJob(&job);
    job.set_quarantine_fs(&fs);
    job.set_executor(executor.get());
    auto out = job.Run();
    ASSERT_TRUE(out.ok()) << "threads=" << threads << ": "
                          << out.status().ToString();
    ASSERT_EQ(out->size(), 1u);
    EXPECT_EQ((*out)[0].second, "60") << "threads=" << threads;
    EXPECT_EQ(job.stats().corrupt_inputs_quarantined, 1u);

    // The bad part moved aside under the hidden convention, so the next
    // scan of the same directory never sees it again.
    EXPECT_FALSE(fs.Exists("/in/part-00001"));
    EXPECT_TRUE(fs.Exists("/in/_quarantined.part-00001"));
    MapReduceJob again(&fs, model_);
    ASSERT_TRUE(again.AddInputDir("/in").ok());
    EXPECT_EQ(again.input_file_count(), 1u);
  }
}

}  // namespace
}  // namespace unilog::dataflow
