// Tests for the dataflow engine: the Hadoop-shaped cost model, simulated
// MapReduce jobs over MiniHdfs, and the Pig-like relational operators.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/compress.h"
#include "dataflow/cost_model.h"
#include "dataflow/mapreduce.h"
#include "dataflow/relation.h"
#include "hdfs/mini_hdfs.h"
#include "scribe/message.h"

namespace unilog::dataflow {
namespace {

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModelTest, MoreMapTasksCostMore) {
  JobCostModel model;
  JobStats few, many;
  few.map_tasks = 10;
  few.bytes_scanned = 10 << 20;
  many.map_tasks = 10000;
  many.bytes_scanned = 10 << 20;  // same bytes, more tasks
  EXPECT_LT(ModelWallTimeMs(model, few), ModelWallTimeMs(model, many));
}

TEST(CostModelTest, MoreBytesCostMore) {
  JobCostModel model;
  JobStats small, big;
  small.map_tasks = big.map_tasks = 100;
  small.bytes_scanned = 1 << 20;
  big.bytes_scanned = 1 << 30;
  EXPECT_LT(ModelWallTimeMs(model, small), ModelWallTimeMs(model, big));
}

TEST(CostModelTest, ShuffleAddsCost) {
  JobCostModel model;
  JobStats map_only, with_shuffle;
  map_only.map_tasks = with_shuffle.map_tasks = 100;
  map_only.bytes_scanned = with_shuffle.bytes_scanned = 1 << 20;
  with_shuffle.reduce_tasks = 16;
  with_shuffle.bytes_shuffled = 1 << 26;
  EXPECT_LT(ModelWallTimeMs(model, map_only),
            ModelWallTimeMs(model, with_shuffle));
}

TEST(CostModelTest, AccumulateSums) {
  JobStats a, b;
  a.map_tasks = 5;
  a.bytes_scanned = 100;
  b.map_tasks = 7;
  b.bytes_scanned = 200;
  a.Accumulate(b);
  EXPECT_EQ(a.map_tasks, 12u);
  EXPECT_EQ(a.bytes_scanned, 300u);
}

// ---------------------------------------------------------------------------
// MapReduce

class MapReduceTest : public ::testing::Test {
 protected:
  MapReduceTest() {
    // Small block size so files split into multiple map tasks.
    hdfs::HdfsOptions opts;
    opts.block_size = 256;
    fs_ = std::make_unique<hdfs::MiniHdfs>(nullptr, opts);
  }

  void WriteFramedCompressed(const std::string& path,
                             const std::vector<std::string>& messages) {
    std::string body = Lz::Compress(scribe::FrameMessages(messages));
    ASSERT_TRUE(fs_->WriteFile(path, body).ok());
  }

  std::unique_ptr<hdfs::MiniHdfs> fs_;
  JobCostModel model_;
};

TEST_F(MapReduceTest, WordCountStyleJob) {
  WriteFramedCompressed("/in/f1", {"a", "b", "a"});
  WriteFramedCompressed("/in/f2", {"b", "a"});
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string& record, Emitter* e) {
    e->Emit(record, "1");
    return Status::OK();
  });
  job.set_reduce([](const std::string& key,
                    const std::vector<std::string>& values, Emitter* e) {
    e->Emit(key, std::to_string(values.size()));
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0], (std::pair<std::string, std::string>{"a", "3"}));
  EXPECT_EQ((*out)[1], (std::pair<std::string, std::string>{"b", "2"}));
  EXPECT_EQ(job.stats().records_read, 5u);
  EXPECT_GE(job.stats().map_tasks, 2u);
  EXPECT_GT(job.stats().bytes_shuffled, 0u);
  EXPECT_GT(job.stats().modeled_ms, 0.0);
}

TEST_F(MapReduceTest, MapOnlyJob) {
  WriteFramedCompressed("/in/f1", {"x", "yy", "zzz"});
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string& record, Emitter* e) {
    if (record.size() >= 2) e->Emit(record, "");
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(job.stats().reduce_tasks, 0u);
  EXPECT_EQ(job.stats().bytes_shuffled, 0u);
}

TEST_F(MapReduceTest, SkipsUnderscoreFiles) {
  WriteFramedCompressed("/in/f1", {"a"});
  ASSERT_TRUE(fs_->WriteFile("/in/_SUCCESS", "").ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  EXPECT_EQ(job.input_file_count(), 1u);
}

TEST_F(MapReduceTest, MapTasksScaleWithBlocks) {
  // One big file spanning many 256-byte blocks.
  std::vector<std::string> many(200, "some-message-payload");
  std::string body = scribe::FrameMessages(many);  // uncompressed
  ASSERT_TRUE(fs_->WriteFile("/in/big", body).ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_input_format(InputFormat::Framed());
  job.set_map([](const std::string&, Emitter*) { return Status::OK(); });
  ASSERT_TRUE(job.Run().ok());
  EXPECT_EQ(job.stats().map_tasks, fs_->Stat("/in/big")->block_count);
  EXPECT_GT(job.stats().map_tasks, 10u);
}

TEST_F(MapReduceTest, FileFilterPushDownSkipsScans) {
  WriteFramedCompressed("/in/keep", {"a", "a"});
  WriteFramedCompressed("/in/skip", {"b", "b", "b"});
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_input_format(InputFormat::CompressedFramed().WithFileFilter(
      [](const std::string& path) {
        return path.find("skip") == std::string::npos;
      }));
  job.set_map([](const std::string& record, Emitter* e) {
    e->Emit(record, "");
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // only "keep" records
  EXPECT_EQ(job.stats().records_read, 2u);
}

TEST_F(MapReduceTest, LinesInputFormat) {
  ASSERT_TRUE(fs_->WriteFile("/in/log.txt", "line1\nline2\n\nline3").ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_input_format(InputFormat::Lines());
  job.set_map([](const std::string& record, Emitter* e) {
    e->Emit(record, "");
    return Status::OK();
  });
  auto out = job.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST_F(MapReduceTest, CorruptInputSurfacesError) {
  ASSERT_TRUE(fs_->WriteFile("/in/bad", "not a compressed file").ok());
  MapReduceJob job(fs_.get(), model_);
  ASSERT_TRUE(job.AddInputDir("/in").ok());
  job.set_map([](const std::string&, Emitter*) { return Status::OK(); });
  EXPECT_FALSE(job.Run().ok());
}

TEST_F(MapReduceTest, MissingInputDirFails) {
  MapReduceJob job(fs_.get(), model_);
  EXPECT_TRUE(job.AddInputDir("/nope").IsNotFound());
}

TEST_F(MapReduceTest, NoMapFunctionFails) {
  MapReduceJob job(fs_.get(), model_);
  EXPECT_TRUE(job.Run().status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Relation

Relation SampleEvents() {
  Relation r({"user_id", "event", "country", "count"});
  auto add = [&r](int64_t uid, const char* ev, const char* c, int64_t n) {
    EXPECT_TRUE(
        r.AddRow({Value::Int(uid), Value::Str(ev), Value::Str(c),
                  Value::Int(n)})
            .ok());
  };
  add(1, "impression", "us", 10);
  add(1, "click", "us", 2);
  add(2, "impression", "uk", 5);
  add(2, "impression", "us", 7);
  add(3, "click", "uk", 1);
  return r;
}

TEST(RelationTest, SchemaAndArity) {
  Relation r({"a", "b"});
  EXPECT_TRUE(r.AddRow({Value::Int(1)}).IsInvalidArgument());
  EXPECT_TRUE(r.AddRow({Value::Int(1), Value::Str("x")}).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.ColumnIndex("a").ok());
  EXPECT_TRUE(r.ColumnIndex("zzz").status().IsNotFound());
}

TEST(RelationTest, FilterAndProject) {
  Relation r = SampleEvents();
  size_t ev_idx = r.ColumnIndex("event").value();
  Relation clicks = r.Filter(
      [&](const Row& row) { return row[ev_idx].str_value() == "click"; });
  EXPECT_EQ(clicks.size(), 2u);

  auto projected = clicks.Project({"user_id", "country"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->columns(),
            (std::vector<std::string>{"user_id", "country"}));
  EXPECT_EQ(projected->rows()[0].size(), 2u);
  EXPECT_FALSE(clicks.Project({"nope"}).ok());
}

TEST(RelationTest, GroupByCountSumMinMax) {
  Relation r = SampleEvents();
  auto grouped = r.GroupBy(
      {"event"},
      {{Aggregate::Op::kCount, "", "n"},
       {Aggregate::Op::kSum, "count", "total"},
       {Aggregate::Op::kMin, "count", "lo"},
       {Aggregate::Op::kMax, "count", "hi"}});
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  ASSERT_EQ(grouped->size(), 2u);  // click, impression (sorted)
  const Row& click = grouped->rows()[0];
  EXPECT_EQ(click[0].str_value(), "click");
  EXPECT_EQ(click[1].int_value(), 2);
  EXPECT_EQ(click[2].real_value(), 3.0);
  EXPECT_EQ(click[3].int_value(), 1);
  EXPECT_EQ(click[4].int_value(), 2);
  const Row& imp = grouped->rows()[1];
  EXPECT_EQ(imp[1].int_value(), 3);
  EXPECT_EQ(imp[2].real_value(), 22.0);
}

TEST(RelationTest, GroupByCountDistinct) {
  Relation r = SampleEvents();
  auto grouped = r.GroupBy(
      {"event"}, {{Aggregate::Op::kCountDistinct, "user_id", "users"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->rows()[0][1].int_value(), 2);  // click: users 1,3
  EXPECT_EQ(grouped->rows()[1][1].int_value(), 2);  // impression: users 1,2
}

TEST(RelationTest, MultiKeyGroupBy) {
  Relation r = SampleEvents();
  auto grouped =
      r.GroupBy({"event", "country"}, {{Aggregate::Op::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->size(), 4u);
}

TEST(RelationTest, JoinInner) {
  Relation users({"uid", "name"});
  ASSERT_TRUE(users.AddRow({Value::Int(1), Value::Str("alice")}).ok());
  ASSERT_TRUE(users.AddRow({Value::Int(2), Value::Str("bob")}).ok());
  Relation r = SampleEvents();
  auto joined = r.Join(users, "user_id", "uid");
  ASSERT_TRUE(joined.ok());
  // User 3 has no match → dropped.
  EXPECT_EQ(joined->size(), 4u);
  EXPECT_EQ(joined->columns().back(), "name");
  auto name = joined->Get(joined->rows()[0], "name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->str_value(), "alice");
  EXPECT_FALSE(r.Join(users, "nope", "uid").ok());
}

TEST(RelationTest, DistinctOrderByLimit) {
  Relation r({"x"});
  for (int v : {3, 1, 3, 2, 1}) {
    ASSERT_TRUE(r.AddRow({Value::Int(v)}).ok());
  }
  Relation d = r.Distinct();
  EXPECT_EQ(d.size(), 3u);
  auto sorted = d.OrderBy("x", /*descending=*/true);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->rows()[0][0].int_value(), 3);
  EXPECT_EQ(sorted->rows()[2][0].int_value(), 1);
  EXPECT_EQ(sorted->Limit(2).size(), 2u);
  EXPECT_EQ(sorted->Limit(99).size(), 3u);
}

TEST(RelationTest, WithColumnComputes) {
  Relation r = SampleEvents();
  size_t count_idx = r.ColumnIndex("count").value();
  auto extended = r.WithColumn("doubled", [count_idx](const Row& row) {
    return Value::Int(row[count_idx].int_value() * 2);
  });
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->Get(extended->rows()[0], "doubled")->int_value(), 20);
  EXPECT_TRUE(r.WithColumn("count", [](const Row&) {
                   return Value::Int(0);
                 }).status().IsAlreadyExists());
}

TEST(RelationTest, ValueOrderingAcrossTypes) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Str("a") < Value::Str("b"));
  EXPECT_TRUE(Value::Int(5) == Value::Int(5));
  EXPECT_FALSE(Value::Int(5) == Value::Str("5"));
  EXPECT_EQ(Value::Real(2.5).AsNumber(), 2.5);
  EXPECT_EQ(Value::Int(3).AsNumber(), 3.0);
  EXPECT_EQ(Value::Bool(true).AsNumber(), 1.0);
}

TEST(RelationTest, ToStringRendersHeaderAndRows) {
  Relation r({"a", "b"});
  ASSERT_TRUE(r.AddRow({Value::Int(1), Value::Str("x")}).ok());
  std::string s = r.ToString();
  EXPECT_NE(s.find("a\tb"), std::string::npos);
  EXPECT_NE(s.find("1\tx"), std::string::npos);
}

}  // namespace
}  // namespace unilog::dataflow
