// Tests for the BirdBrain dashboard time series (§5.1) and catalog
// persistence across daily rebuilds (§4.3).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analytics/birdbrain.h"
#include "catalog/catalog.h"
#include "events/client_event.h"
#include "hdfs/mini_hdfs.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"

namespace unilog {
namespace {

constexpr TimeMs kDay = 1345507200000;  // 2012-08-21

analytics::DailySummary MakeSummary(uint64_t sessions) {
  analytics::DailySummary s;
  s.sessions = sessions;
  s.events = sessions * 15;
  s.distinct_users = sessions / 2;
  s.sessions_by_client = {{"web", sessions / 2}, {"iphone", sessions / 4}};
  s.sessions_by_duration_bucket = {{"1-5m", sessions / 2},
                                   {"5-30m", sessions / 3}};
  return s;
}

TEST(BirdBrainTest, RecordAndSeries) {
  analytics::BirdBrain bb;
  bb.Record(kDay, MakeSummary(100));
  bb.Record(kDay + kMillisPerDay, MakeSummary(120));
  bb.Record(kDay + 2 * kMillisPerDay, MakeSummary(150));
  EXPECT_EQ(bb.days(), 3u);
  auto series = bb.SessionsSeries();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].second, 100u);
  EXPECT_EQ(series[2].second, 150u);
  EXPECT_NEAR(bb.GrowthRatio().value(), 1.5, 1e-9);
  ASSERT_NE(bb.Day(kDay + kMillisPerDay), nullptr);
  EXPECT_EQ(bb.Day(kDay + kMillisPerDay)->sessions, 120u);
  EXPECT_EQ(bb.Day(kDay + 30 * kMillisPerDay), nullptr);
}

TEST(BirdBrainTest, RecordOverwritesSameDay) {
  analytics::BirdBrain bb;
  bb.Record(kDay, MakeSummary(100));
  bb.Record(kDay + kMillisPerHour, MakeSummary(110));  // same civil day
  EXPECT_EQ(bb.days(), 1u);
  EXPECT_EQ(bb.Day(kDay)->sessions, 110u);
}

TEST(BirdBrainTest, GrowthRequiresTwoDays) {
  analytics::BirdBrain bb;
  EXPECT_TRUE(bb.GrowthRatio().status().IsFailedPrecondition());
  bb.Record(kDay, MakeSummary(100));
  EXPECT_TRUE(bb.GrowthRatio().status().IsFailedPrecondition());
}

TEST(BirdBrainTest, RenderShowsTrendAndDrillDowns) {
  analytics::BirdBrain bb;
  bb.Record(kDay, MakeSummary(50));
  bb.Record(kDay + kMillisPerDay, MakeSummary(100));
  std::string rendered = bb.Render();
  EXPECT_NE(rendered.find("2012-08-21"), std::string::npos);
  EXPECT_NE(rendered.find("2012-08-22"), std::string::npos);
  // The 100-session day has a longer bar than the 50-session day.
  size_t line1 = rendered.find("2012-08-21");
  size_t line2 = rendered.find("2012-08-22");
  std::string l1 = rendered.substr(line1, rendered.find('\n', line1) - line1);
  std::string l2 = rendered.substr(line2, rendered.find('\n', line2) - line2);
  auto hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_GT(hashes(l2), hashes(l1));
  EXPECT_NE(rendered.find("by client: iphone=25 web=50"), std::string::npos);

  auto by_client = bb.RenderDrillDown("client");
  ASSERT_TRUE(by_client.ok());
  EXPECT_NE(by_client->find("web"), std::string::npos);
  auto by_duration = bb.RenderDrillDown("duration");
  ASSERT_TRUE(by_duration.ok());
  EXPECT_TRUE(bb.RenderDrillDown("nope").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Catalog persistence

catalog::EventCatalog MakeCatalog(int count) {
  sessions::EventHistogram hist;
  events::ClientEvent ev;
  ev.event_name = "web:home:::tweet:click";
  ev.user_id = 1;
  std::string payload = ev.Serialize();
  for (int i = 0; i < count; ++i) hist.Add("web:home:::tweet:click", &payload);
  hist.AddCount("web:home:::tweet:impression", count * 3);
  auto dict = sessions::EventDictionary::FromSortedCounts(
      hist.SortedByFrequency());
  return catalog::EventCatalog::Build(hist, *dict);
}

TEST(CatalogPersistenceTest, SaveLoadRoundTrip) {
  hdfs::MiniHdfs fs;
  catalog::EventCatalog today = MakeCatalog(10);
  ASSERT_TRUE(
      today.AttachDescription("web:home:::tweet:click", "a click").ok());
  ASSERT_TRUE(today.SaveTo(&fs, "/catalog/2012-08-21.json").ok());

  auto loaded = catalog::EventCatalog::LoadFrom(fs, "/catalog/2012-08-21.json");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), today.size());
  const catalog::CatalogEntry* e = loaded->Find("web:home:::tweet:click");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 10u);
  EXPECT_EQ(e->description, "a click");
  EXPECT_FALSE(e->samples.empty());
  // Save again (overwrite) works.
  ASSERT_TRUE(loaded->SaveTo(&fs, "/catalog/2012-08-21.json").ok());
}

TEST(CatalogPersistenceTest, LoadMissingOrCorrupt) {
  hdfs::MiniHdfs fs;
  EXPECT_TRUE(catalog::EventCatalog::LoadFrom(fs, "/nope.json")
                  .status().IsNotFound());
  ASSERT_TRUE(fs.WriteFile("/bad.json", "{not json").ok());
  EXPECT_FALSE(catalog::EventCatalog::LoadFrom(fs, "/bad.json").ok());
  ASSERT_TRUE(fs.WriteFile("/notarray.json", "{\"a\":1}").ok());
  EXPECT_TRUE(catalog::EventCatalog::LoadFrom(fs, "/notarray.json")
                  .status().IsCorruption());
}

}  // namespace
}  // namespace unilog
