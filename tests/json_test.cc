// Unit tests for the minimal JSON codec used by legacy formats and the
// client event catalog.

#include <gtest/gtest.h>

#include "common/json.h"

namespace unilog {
namespace {

TEST(JsonTest, BuildAndDump) {
  Json root = Json::Object();
  root.Set("name", Json::Str("profile_click"));
  root.Set("count", Json::Int(42));
  root.Set("rate", Json::Number(0.5));
  root.Set("ok", Json::Bool(true));
  root.Set("missing", Json::Null());
  Json arr = Json::Array();
  arr.Push(Json::Int(1));
  arr.Push(Json::Int(2));
  root.Set("items", std::move(arr));
  EXPECT_EQ(root.Dump(),
            "{\"count\":42,\"items\":[1,2],\"missing\":null,"
            "\"name\":\"profile_click\",\"ok\":true,\"rate\":0.5}");
}

TEST(JsonTest, ParseRoundTrip) {
  std::string text =
      "{\"a\":1,\"b\":[true,false,null],\"c\":{\"nested\":\"x\"}}";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, AccessorsNavigateNesting) {
  auto doc = Json::Parse(
      R"({"eventData":{"actionName":"click","timestampMs":12345},)"
      R"("requestContext":{"userId":99}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["eventData"]["actionName"].string_value(), "click");
  EXPECT_EQ((*doc)["eventData"]["timestampMs"].int_value(), 12345);
  EXPECT_EQ((*doc)["requestContext"]["userId"].int_value(), 99);
  EXPECT_TRUE((*doc)["nope"].is_null());
  EXPECT_TRUE((*doc)["eventData"]["nope"].is_null());
}

TEST(JsonTest, StringEscapes) {
  Json j = Json::Str("line1\nline2\t\"quoted\"\\slash");
  std::string dumped = j.Dump();
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "line1\nline2\t\"quoted\"\\slash");
}

TEST(JsonTest, UnicodeEscapeParsing) {
  auto parsed = Json::Parse(R"("Aé中")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "A\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonTest, Numbers) {
  auto parsed = Json::Parse("[0,-1,3.25,1e3,-2.5e-2]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0).number_value(), 0);
  EXPECT_EQ(parsed->at(1).number_value(), -1);
  EXPECT_EQ(parsed->at(2).number_value(), 3.25);
  EXPECT_EQ(parsed->at(3).number_value(), 1000);
  EXPECT_EQ(parsed->at(4).number_value(), -0.025);
}

TEST(JsonTest, MalformedInputsRejected) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,2,]").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("truish").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
}

TEST(JsonTest, WhitespaceTolerated) {
  auto parsed = Json::Parse("  {\n \"a\" : [ 1 , 2 ] \t}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)["a"].at(1).int_value(), 2);
}

TEST(JsonTest, EmptyContainers) {
  auto parsed = Json::Parse("{\"a\":{},\"b\":[]}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)["a"].is_object());
  EXPECT_TRUE((*parsed)["a"].object_items().empty());
  EXPECT_TRUE((*parsed)["b"].is_array());
  EXPECT_TRUE((*parsed)["b"].array_items().empty());
}

TEST(JsonTest, DeepNesting) {
  Json j = Json::Str("leaf");
  for (int i = 0; i < 20; ++i) {
    Json outer = Json::Object();
    outer.Set("inner", std::move(j));
    j = std::move(outer);
  }
  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  const Json* cur = &*parsed;
  for (int i = 0; i < 20; ++i) cur = &(*cur)["inner"];
  EXPECT_EQ(cur->string_value(), "leaf");
}

}  // namespace
}  // namespace unilog
