// Tests for the synthetic workload: view hierarchy, user population, event
// generation, ground truth, and the statistical properties downstream
// experiments rely on.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "events/event_name.h"
#include "workload/generator.h"
#include "workload/hierarchy.h"

namespace unilog::workload {
namespace {

constexpr TimeMs kDay = 1345507200000;  // 2012-08-21

TEST(ViewHierarchyTest, AllNamesAreValidSixLevelNames) {
  ViewHierarchy h = ViewHierarchy::TwitterLike();
  ASSERT_GT(h.size(), 100u);
  for (const auto& name : h.event_names()) {
    auto parsed = events::EventName::Parse(name);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
  }
}

TEST(ViewHierarchyTest, NamesAreUnique) {
  ViewHierarchy h = ViewHierarchy::TwitterLike();
  std::set<std::string> unique(h.event_names().begin(),
                               h.event_names().end());
  EXPECT_EQ(unique.size(), h.size());
}

TEST(ViewHierarchyTest, EveryClientHasSameLogicalSurfaces) {
  // §3.2: events of the same type across clients get the same name modulo
  // the client component.
  ViewHierarchy h = ViewHierarchy::TwitterLike();
  auto web = h.NamesForClient("web");
  auto iphone = h.NamesForClient("iphone");
  ASSERT_EQ(web.size(), iphone.size());
  std::set<std::string> web_suffixes, iphone_suffixes;
  for (const auto& n : web) web_suffixes.insert(n.substr(n.find(':')));
  for (const auto& n : iphone) iphone_suffixes.insert(n.substr(n.find(':')));
  EXPECT_EQ(web_suffixes, iphone_suffixes);
}

TEST(ViewHierarchyTest, ScaleGrowsUniverse) {
  EXPECT_GT(ViewHierarchy::TwitterLike(3).size(),
            2 * ViewHierarchy::TwitterLike(1).size());
}

TEST(ViewHierarchyTest, SignupStagesExist) {
  ViewHierarchy h = ViewHierarchy::TwitterLike();
  std::string stage0 = ViewHierarchy::SignupStageEvent("web", 0);
  EXPECT_EQ(stage0, "web:signup:flow:form:page:stage_00");
  std::set<std::string> names(h.event_names().begin(), h.event_names().end());
  for (int s = 0; s < ViewHierarchy::kSignupStages; ++s) {
    EXPECT_TRUE(names.count(ViewHierarchy::SignupStageEvent("iphone", s)));
  }
}

TEST(ViewHierarchyTest, FollowUpsArePlanted) {
  ViewHierarchy h = ViewHierarchy::TwitterLike();
  // impression → click on the home timeline tweet surface.
  std::string imp = "web:home:timeline:stream:tweet:impression";
  const std::string* follow = h.FollowUpOf(imp);
  ASSERT_NE(follow, nullptr);
  EXPECT_EQ(*follow, "web:home:timeline:stream:tweet:click");
  // Terminal actions have no follow-up.
  EXPECT_EQ(h.FollowUpOf("web:home:timeline:stream:tweet:favorite"), nullptr);
}

class GeneratorTest : public ::testing::Test {
 protected:
  static WorkloadOptions SmallOptions() {
    WorkloadOptions opts;
    opts.seed = 7;
    opts.num_users = 100;
    opts.start = kDay;
    opts.duration = kMillisPerDay;
    opts.sessions_per_user_mean = 1.5;
    opts.events_per_session_mean = 12;
    return opts;
  }
};

TEST_F(GeneratorTest, UsersHavePlausibleAttributes) {
  WorkloadGenerator gen(SmallOptions());
  ASSERT_EQ(gen.users().size(), 100u);
  std::set<std::string> countries, clients;
  for (const auto& u : gen.users()) {
    countries.insert(u.country);
    clients.insert(u.client);
    EXPECT_GE(u.user_id, 1000000);
    EXPECT_FALSE(u.ip.empty());
    EXPECT_GT(u.activity, 0);
  }
  EXPECT_GE(countries.size(), 3u);
  EXPECT_GE(clients.size(), 2u);
  EXPECT_NE(gen.FindUser(1000000), nullptr);
  EXPECT_EQ(gen.FindUser(999), nullptr);
}

TEST_F(GeneratorTest, EventsSortedValidAndInWindow) {
  WorkloadGenerator gen(SmallOptions());
  TimeMs last = 0;
  uint64_t count = 0;
  ASSERT_TRUE(gen.Generate([&](const events::ClientEvent& ev) {
    EXPECT_GE(ev.timestamp, last);
    last = ev.timestamp;
    EXPECT_GE(ev.timestamp, kDay);
    EXPECT_LT(ev.timestamp, kDay + kMillisPerDay);
    EXPECT_TRUE(events::EventName::Parse(ev.event_name).ok()) << ev.event_name;
    EXPECT_FALSE(ev.session_id.empty());
    ++count;
  }).ok());
  EXPECT_GT(count, 500u);
  EXPECT_EQ(count, gen.truth().total_events);
}

TEST_F(GeneratorTest, GenerateTwiceFails) {
  WorkloadGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Generate([](const events::ClientEvent&) {}).ok());
  EXPECT_TRUE(
      gen.Generate([](const events::ClientEvent&) {}).IsFailedPrecondition());
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    WorkloadOptions opts = SmallOptions();
    opts.seed = seed;
    WorkloadGenerator gen(opts);
    std::vector<std::string> fingerprint;
    EXPECT_TRUE(gen.Generate([&](const events::ClientEvent& ev) {
      fingerprint.push_back(std::to_string(ev.user_id) + ev.event_name +
                            std::to_string(ev.timestamp));
    }).ok());
    return fingerprint;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST_F(GeneratorTest, GroundTruthConsistent) {
  WorkloadGenerator gen(SmallOptions());
  std::map<std::string, uint64_t> observed;
  ASSERT_TRUE(gen.Generate([&](const events::ClientEvent& ev) {
    ++observed[ev.event_name];
  }).ok());
  const GroundTruth& truth = gen.truth();
  EXPECT_EQ(observed, truth.event_counts);
  uint64_t session_total = 0;
  for (const auto& [client, n] : truth.sessions_per_client) session_total += n;
  EXPECT_EQ(session_total, truth.total_sessions);
}

TEST_F(GeneratorTest, FunnelStageCountsMonotoneDecreasing) {
  WorkloadOptions opts = SmallOptions();
  opts.num_users = 400;
  opts.signup_session_fraction = 0.5;  // lots of funnel traffic
  WorkloadGenerator gen(opts);
  ASSERT_TRUE(gen.Generate([](const events::ClientEvent&) {}).ok());
  const auto& stages = gen.truth().funnel_stage_sessions;
  ASSERT_EQ(stages.size(),
            static_cast<size_t>(ViewHierarchy::kSignupStages));
  EXPECT_GT(stages[0], 50u);
  for (size_t i = 1; i < stages.size(); ++i) {
    EXPECT_LE(stages[i], stages[i - 1]) << "stage " << i;
  }
  // With continue probs {.75,.65,.8,.6} stage4/stage0 ≈ 23%.
  double completion = static_cast<double>(stages.back()) /
                      static_cast<double>(stages[0]);
  EXPECT_GT(completion, 0.10);
  EXPECT_LT(completion, 0.40);
}

TEST_F(GeneratorTest, EventPopularityIsSkewed) {
  WorkloadOptions opts = SmallOptions();
  opts.num_users = 300;
  WorkloadGenerator gen(opts);
  ASSERT_TRUE(gen.Generate([](const events::ClientEvent&) {}).ok());
  std::vector<uint64_t> counts;
  for (const auto& [name, n] : gen.truth().event_counts) {
    counts.push_back(n);
  }
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GT(counts.size(), 20u);
  // Top decile carries a large share of the mass (Zipf skew).
  uint64_t total = 0, head = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < counts.size() / 10) head += counts[i];
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.3);
}

TEST_F(GeneratorTest, SessionsSeparableByThirtyMinuteGap) {
  // Within one generated session, consecutive events are < 30 min apart
  // (so sessionization recovers exactly the generated sessions).
  WorkloadGenerator gen(SmallOptions());
  std::map<std::string, TimeMs> last_seen;
  ASSERT_TRUE(gen.Generate([&](const events::ClientEvent& ev) {
    std::string key = std::to_string(ev.user_id) + "|" + ev.session_id;
    auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      EXPECT_LE(ev.timestamp - it->second, kSessionInactivityGapMs)
          << key;
    }
    last_seen[key] = ev.timestamp;
  }).ok());
}

TEST_F(GeneratorTest, FollowUpCorrelationPresent) {
  // P(click | preceding impression on same surface) should be visibly
  // larger than the base rate of that click — the signal E9/E10 detect.
  WorkloadOptions opts = SmallOptions();
  opts.num_users = 400;
  WorkloadGenerator gen(opts);
  const std::string imp = "web:home:timeline:stream:tweet:impression";
  const std::string click = "web:home:timeline:stream:tweet:click";
  std::map<std::string, std::string> prev_by_session;
  uint64_t imp_then_click = 0, imp_then_other = 0, total = 0, clicks = 0;
  ASSERT_TRUE(gen.Generate([&](const events::ClientEvent& ev) {
    std::string key = std::to_string(ev.user_id) + "|" + ev.session_id;
    auto it = prev_by_session.find(key);
    if (it != prev_by_session.end() && it->second == imp) {
      if (ev.event_name == click) {
        ++imp_then_click;
      } else {
        ++imp_then_other;
      }
    }
    if (ev.event_name == click) ++clicks;
    ++total;
    prev_by_session[key] = ev.event_name;
  }).ok());
  ASSERT_GT(imp_then_click + imp_then_other, 20u);
  double p_follow = static_cast<double>(imp_then_click) /
                    static_cast<double>(imp_then_click + imp_then_other);
  double base_rate = static_cast<double>(clicks) / static_cast<double>(total);
  EXPECT_GT(p_follow, 5 * base_rate);
}

}  // namespace
}  // namespace unilog::workload
