// Tests for the session-sequence machinery of §4: event histograms, the
// frequency-ordered dictionary, sessionization with the 30-minute gap, the
// UTF-8 sequence encoding, and the daily sequence store.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/utf8.h"
#include "events/client_event.h"
#include "events/event_name.h"
#include "hdfs/mini_hdfs.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"
#include "sessions/session_sequence.h"
#include "sessions/sessionizer.h"

namespace unilog::sessions {
namespace {

constexpr TimeMs kT0 = 1345507200000;  // 2012-08-21 00:00 UTC

// ---------------------------------------------------------------------------
// EventHistogram

TEST(HistogramTest, CountsAndTotals) {
  EventHistogram hist;
  hist.Add("a");
  hist.Add("a");
  hist.Add("b");
  EXPECT_EQ(hist.CountOf("a"), 2u);
  EXPECT_EQ(hist.CountOf("b"), 1u);
  EXPECT_EQ(hist.CountOf("nope"), 0u);
  EXPECT_EQ(hist.total_events(), 3u);
  EXPECT_EQ(hist.distinct_events(), 2u);
}

TEST(HistogramTest, SamplesCappedAtMax) {
  EventHistogram hist;
  for (int i = 0; i < 10; ++i) {
    std::string payload = "payload" + std::to_string(i);
    hist.Add("a", &payload);
  }
  EXPECT_EQ(hist.SamplesOf("a").size(), EventHistogram::kMaxSamples);
  EXPECT_EQ(hist.SamplesOf("a")[0], "payload0");
  EXPECT_TRUE(hist.SamplesOf("nope").empty());
}

TEST(HistogramTest, MergeCombinesCountsAndSamples) {
  EventHistogram a, b;
  std::string pa = "pa", pb = "pb";
  a.Add("x", &pa);
  b.Add("x", &pb);
  b.Add("y");
  b.AddCount("z", 5);
  a.Merge(b);
  EXPECT_EQ(a.CountOf("x"), 2u);
  EXPECT_EQ(a.CountOf("y"), 1u);
  EXPECT_EQ(a.CountOf("z"), 5u);
  EXPECT_EQ(a.total_events(), 8u);
  EXPECT_EQ(a.SamplesOf("x").size(), 2u);
}

TEST(HistogramTest, SortedByFrequencyDescendingWithNameTiebreak) {
  EventHistogram hist;
  hist.AddCount("mid", 5);
  hist.AddCount("top", 10);
  hist.AddCount("tie_b", 3);
  hist.AddCount("tie_a", 3);
  auto sorted = hist.SortedByFrequency();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].first, "top");
  EXPECT_EQ(sorted[1].first, "mid");
  EXPECT_EQ(sorted[2].first, "tie_a");
  EXPECT_EQ(sorted[3].first, "tie_b");
}

// ---------------------------------------------------------------------------
// EventDictionary

TEST(DictionaryTest, NthCodePointSkipsSurrogatesAndZero) {
  EXPECT_EQ(EventDictionary::NthCodePoint(0).value(), 1u);
  EXPECT_EQ(EventDictionary::NthCodePoint(1).value(), 2u);
  // The code point just before the surrogate block.
  EXPECT_EQ(EventDictionary::NthCodePoint(0xD7FF - 1).value(), 0xD7FFu);
  // The next assignment jumps the block.
  EXPECT_EQ(EventDictionary::NthCodePoint(0xD7FF).value(), 0xE000u);
  // Every produced code point is valid UTF-8 scalar.
  for (uint64_t n : {uint64_t{0}, uint64_t{100}, uint64_t{0xD7FE},
                     uint64_t{0xD7FF}, uint64_t{0x10000}, uint64_t{500000}}) {
    auto cp = EventDictionary::NthCodePoint(n);
    ASSERT_TRUE(cp.ok());
    EXPECT_TRUE(IsValidCodePoint(*cp)) << n;
  }
  // Exhaustion.
  EXPECT_TRUE(EventDictionary::NthCodePoint(0x110000).status().IsOutOfRange());
}

TEST(DictionaryTest, FrequentEventsGetSmallerCodePoints) {
  EventHistogram hist;
  hist.AddCount("web:home:::tweet:impression", 1000);
  hist.AddCount("web:home:::tweet:click", 100);
  hist.AddCount("web:profile:::page:view", 10);
  auto dict = EventDictionary::FromSortedCounts(hist.SortedByFrequency());
  ASSERT_TRUE(dict.ok());
  uint32_t cp_imp = dict->CodePointFor("web:home:::tweet:impression").value();
  uint32_t cp_click = dict->CodePointFor("web:home:::tweet:click").value();
  uint32_t cp_view = dict->CodePointFor("web:profile:::page:view").value();
  EXPECT_LT(cp_imp, cp_click);
  EXPECT_LT(cp_click, cp_view);
}

TEST(DictionaryTest, BijectiveMapping) {
  auto dict = EventDictionary::FromNamesInGivenOrder({"a", "b", "c"});
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->size(), 3u);
  for (const auto& name : {"a", "b", "c"}) {
    uint32_t cp = dict->CodePointFor(name).value();
    EXPECT_EQ(dict->NameFor(cp).value(), name);
  }
  EXPECT_TRUE(dict->CodePointFor("zzz").status().IsNotFound());
  EXPECT_TRUE(dict->NameFor(9999).status().IsNotFound());
  EXPECT_TRUE(dict->Contains("a"));
  EXPECT_FALSE(dict->Contains("zzz"));
}

TEST(DictionaryTest, DuplicateNamesRejected) {
  EXPECT_TRUE(EventDictionary::FromNamesInGivenOrder({"a", "a"})
                  .status().IsInvalidArgument());
}

TEST(DictionaryTest, ExpandPattern) {
  auto dict = EventDictionary::FromNamesInGivenOrder(
      {"web:home:mentions:stream:avatar:profile_click",
       "web:home:mentions:stream:tweet:impression",
       "iphone:home:::tweet:profile_click"});
  ASSERT_TRUE(dict.ok());
  auto clicks = dict->Expand(events::EventPattern("*:profile_click"));
  EXPECT_EQ(clicks.size(), 2u);
  auto mentions = dict->Expand(events::EventPattern("web:home:mentions:*"));
  EXPECT_EQ(mentions.size(), 2u);
  auto none = dict->Expand(events::EventPattern("android:*"));
  EXPECT_TRUE(none.empty());
}

TEST(DictionaryTest, EncodeDecodeNamesRoundTrip) {
  auto dict = EventDictionary::FromNamesInGivenOrder({"a", "b", "c"});
  ASSERT_TRUE(dict.ok());
  std::vector<std::string> names = {"c", "a", "a", "b", "c"};
  auto encoded = dict->EncodeNames(names);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(Utf8Length(*encoded), 5u);
  auto decoded = dict->DecodeToNames(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, names);
}

TEST(DictionaryTest, EncodeUnknownNameFails) {
  auto dict = EventDictionary::FromNamesInGivenOrder({"a"});
  ASSERT_TRUE(dict.ok());
  EXPECT_TRUE(dict->EncodeNames({"a", "mystery"}).status().IsNotFound());
}

TEST(DictionaryTest, SerializationRoundTrip) {
  std::vector<std::string> names;
  for (int i = 0; i < 500; ++i) {
    names.push_back("web:page" + std::to_string(i) + ":::tweet:click");
  }
  auto dict = EventDictionary::FromNamesInGivenOrder(names);
  ASSERT_TRUE(dict.ok());
  std::string blob = dict->Serialize();
  auto back = EventDictionary::Deserialize(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 500u);
  for (const auto& name : names) {
    EXPECT_EQ(back->CodePointFor(name).value(),
              dict->CodePointFor(name).value());
  }
  EXPECT_FALSE(EventDictionary::Deserialize(blob.substr(0, 10)).ok());
}

TEST(DictionaryTest, VariableLengthCodingProperty) {
  // With >128 events, encoding a sequence of only the most frequent event
  // is strictly smaller than the same-length sequence of a rare event.
  std::vector<std::string> names;
  for (int i = 0; i < 300; ++i) names.push_back("e" + std::to_string(i));
  auto dict = EventDictionary::FromNamesInGivenOrder(names);
  ASSERT_TRUE(dict.ok());
  std::vector<std::string> frequent(50, "e0"), rare(50, "e299");
  EXPECT_LT(dict->EncodeNames(frequent)->size(),
            dict->EncodeNames(rare)->size());
}

// ---------------------------------------------------------------------------
// Sessionizer

events::ClientEvent MakeEvent(int64_t user, const std::string& sess,
                              TimeMs ts, const std::string& name) {
  events::ClientEvent ev;
  ev.user_id = user;
  ev.session_id = sess;
  ev.ip = "10.0.0.1";
  ev.timestamp = ts;
  ev.event_name = name;
  return ev;
}

TEST(SessionizerTest, GroupsByUserAndSession) {
  Sessionizer szr;
  szr.Add(MakeEvent(1, "s1", kT0, "a"));
  szr.Add(MakeEvent(1, "s1", kT0 + 1000, "b"));
  szr.Add(MakeEvent(2, "s2", kT0, "c"));
  szr.Add(MakeEvent(1, "s9", kT0, "d"));
  auto sessions = szr.Build();
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0].user_id, 1);
  EXPECT_EQ(sessions[0].session_id, "s1");
  EXPECT_EQ(sessions[0].event_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(sessions[1].session_id, "s9");
  EXPECT_EQ(sessions[2].user_id, 2);
  EXPECT_EQ(szr.event_count(), 4u);
}

TEST(SessionizerTest, OutOfOrderEventsSortedByTimestamp) {
  // Warehouse files are only partially time-ordered (§2); order of Add
  // must not matter.
  Sessionizer szr;
  szr.Add(MakeEvent(1, "s", kT0 + 2000, "third"));
  szr.Add(MakeEvent(1, "s", kT0, "first"));
  szr.Add(MakeEvent(1, "s", kT0 + 1000, "second"));
  auto sessions = szr.Build();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].event_names,
            (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_EQ(sessions[0].start, kT0);
  EXPECT_EQ(sessions[0].end, kT0 + 2000);
}

TEST(SessionizerTest, ThirtyMinuteGapSplitsSessions) {
  Sessionizer szr;
  szr.Add(MakeEvent(1, "s", kT0, "a"));
  // 29:59.999 later: same session (gap is NOT strictly greater).
  szr.Add(MakeEvent(1, "s", kT0 + kSessionInactivityGapMs, "b"));
  // Another 30:00.001 later: new session.
  szr.Add(MakeEvent(1, "s", kT0 + 2 * kSessionInactivityGapMs + 1, "c"));
  auto sessions = szr.Build();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].event_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(sessions[1].event_names, (std::vector<std::string>{"c"}));
}

TEST(SessionizerTest, DurationIsFirstToLastEvent) {
  Sessionizer szr;
  szr.Add(MakeEvent(1, "s", kT0, "a"));
  szr.Add(MakeEvent(1, "s", kT0 + 95 * kMillisPerSecond, "b"));
  auto sessions = szr.Build();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].DurationSeconds(), 95);
}

TEST(SessionizerTest, SingleEventSessionHasZeroDuration) {
  Sessionizer szr;
  szr.Add(MakeEvent(1, "s", kT0, "a"));
  auto sessions = szr.Build();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].DurationSeconds(), 0);
  EXPECT_EQ(sessions[0].event_names.size(), 1u);
}

TEST(SessionizerTest, CustomGap) {
  SessionizerOptions opts;
  opts.inactivity_gap_ms = 5 * kMillisPerMinute;
  Sessionizer szr(opts);
  szr.Add(MakeEvent(1, "s", kT0, "a"));
  szr.Add(MakeEvent(1, "s", kT0 + 6 * kMillisPerMinute, "b"));
  EXPECT_EQ(szr.Build().size(), 2u);
}

TEST(SessionizerTest, SameSessionIdDifferentUsersSeparate) {
  // The group-by key is (user_id, session_id): cookie collisions across
  // users must not merge.
  Sessionizer szr;
  szr.Add(MakeEvent(1, "cookie", kT0, "a"));
  szr.Add(MakeEvent(2, "cookie", kT0 + 1000, "b"));
  EXPECT_EQ(szr.Build().size(), 2u);
}

// ---------------------------------------------------------------------------
// SessionSequence encoding

TEST(SessionSequenceTest, EncodeSessionThroughDictionary) {
  auto dict = EventDictionary::FromNamesInGivenOrder({"imp", "click"});
  ASSERT_TRUE(dict.ok());
  Session session;
  session.user_id = 7;
  session.session_id = "s";
  session.ip = "1.2.3.4";
  session.start = kT0;
  session.end = kT0 + 60 * kMillisPerSecond;
  session.event_names = {"imp", "imp", "click"};
  auto seq = EncodeSession(session, *dict);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->EventCount(), 3u);
  EXPECT_EQ(seq->duration_seconds, 60);
  auto names = dict->DecodeToNames(seq->sequence);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, session.event_names);
}

TEST(SessionSequenceTest, RecordSerializationRoundTrip) {
  SessionSequence seq;
  seq.user_id = -5;  // negative ids survive zigzag
  seq.session_id = "sess";
  seq.ip = "10.0.0.1";
  seq.sequence = "\x01\x02\x03";
  seq.duration_seconds = 1234;
  std::string body;
  AppendSequenceRecord(&body, seq);
  AppendSequenceRecord(&body, seq);
  SequenceRecordReader reader(body);
  SessionSequence a, b, c;
  ASSERT_TRUE(reader.Next(&a).ok());
  ASSERT_TRUE(reader.Next(&b).ok());
  EXPECT_EQ(a, seq);
  EXPECT_EQ(b, seq);
  EXPECT_TRUE(reader.Next(&c).IsNotFound());
}

TEST(SessionSequenceTest, TruncatedRecordIsCorruption) {
  SessionSequence seq;
  seq.session_id = "sess";
  std::string body;
  AppendSequenceRecord(&body, seq);
  SequenceRecordReader reader(std::string_view(body).substr(0, 3));
  SessionSequence out;
  EXPECT_TRUE(reader.Next(&out).IsCorruption());
}

// ---------------------------------------------------------------------------
// SequenceStore

class SequenceStoreTest : public ::testing::Test {
 protected:
  SequenceStoreTest() {
    auto dict = EventDictionary::FromNamesInGivenOrder({"imp", "click"});
    dict_ = *dict;
    for (int i = 0; i < 100; ++i) {
      SessionSequence seq;
      seq.user_id = i;
      seq.session_id = "s" + std::to_string(i);
      seq.ip = "10.0.0.1";
      seq.sequence = dict_.EncodeNames({"imp", "click"}).value();
      seq.duration_seconds = i;
      seqs_.push_back(seq);
    }
  }

  hdfs::MiniHdfs fs_;
  EventDictionary dict_;
  std::vector<SessionSequence> seqs_;
};

TEST_F(SequenceStoreTest, WriteAndLoadDaily) {
  ASSERT_TRUE(SequenceStore::WriteDaily(&fs_, kT0, seqs_, dict_).ok());
  EXPECT_TRUE(fs_.Exists("/session_sequences/2012-08-21/_SUCCESS"));
  EXPECT_TRUE(fs_.Exists("/session_sequences/2012-08-21/_dictionary"));

  auto loaded = SequenceStore::LoadDaily(fs_, kT0);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), seqs_.size());
  for (size_t i = 0; i < seqs_.size(); ++i) {
    EXPECT_EQ((*loaded)[i], seqs_[i]);
  }

  auto dict = SequenceStore::LoadDictionary(fs_, kT0);
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->CodePointFor("imp").value(),
            dict_.CodePointFor("imp").value());
}

TEST_F(SequenceStoreTest, WriteOncePerDay) {
  ASSERT_TRUE(SequenceStore::WriteDaily(&fs_, kT0, seqs_, dict_).ok());
  EXPECT_TRUE(
      SequenceStore::WriteDaily(&fs_, kT0, seqs_, dict_).IsAlreadyExists());
  // A different day is fine.
  EXPECT_TRUE(
      SequenceStore::WriteDaily(&fs_, kT0 + kMillisPerDay, seqs_, dict_).ok());
}

TEST_F(SequenceStoreTest, SmallTargetSplitsIntoMultipleParts) {
  SequenceStore::WriteOptions opts;
  opts.target_file_bytes = 64;
  ASSERT_TRUE(SequenceStore::WriteDaily(&fs_, kT0, seqs_, dict_, opts).ok());
  auto files = fs_.ListRecursive("/session_sequences/2012-08-21");
  ASSERT_TRUE(files.ok());
  int parts = 0;
  for (const auto& f : *files) {
    if (f.path.find("/part-") != std::string::npos) ++parts;
  }
  EXPECT_GT(parts, 1);
  auto loaded = SequenceStore::LoadDaily(fs_, kT0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), seqs_.size());
}

TEST_F(SequenceStoreTest, MissingPartitionNotFound) {
  EXPECT_TRUE(SequenceStore::LoadDaily(fs_, kT0).status().IsNotFound());
  EXPECT_TRUE(SequenceStore::LoadDictionary(fs_, kT0).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// End-to-end §4.2 property: compression factor vs raw client event logs.

TEST(SessionSequenceCompressionTest, SequencesAreMuchSmallerThanRawEvents) {
  // 200 users x 20-event sessions over a small alphabet.
  std::vector<std::string> alphabet;
  for (int i = 0; i < 50; ++i) {
    alphabet.push_back("web:home:::tweet:action" + std::to_string(i));
  }
  EventHistogram hist;
  Sessionizer szr;
  std::string raw_logs;
  events::ClientEventWriter writer(&raw_logs);
  for (int u = 0; u < 200; ++u) {
    for (int e = 0; e < 20; ++e) {
      events::ClientEvent ev;
      ev.user_id = u;
      ev.session_id = "sess" + std::to_string(u);
      ev.ip = "10.1.2.3";
      ev.timestamp = kT0 + e * 10000;
      ev.event_name = alphabet[(u * 7 + e) % alphabet.size()];
      ev.details = {{"src", "test"}, {"pos", std::to_string(e)}};
      hist.Add(ev.event_name);
      szr.Add(ev);
      writer.Add(ev);
    }
  }
  auto dict = EventDictionary::FromSortedCounts(hist.SortedByFrequency());
  ASSERT_TRUE(dict.ok());
  std::string seq_blob;
  for (const auto& session : szr.Build()) {
    auto seq = EncodeSession(session, *dict);
    ASSERT_TRUE(seq.ok());
    AppendSequenceRecord(&seq_blob, *seq);
  }
  // The paper reports ~50x; at minimum the sequences must be an order of
  // magnitude smaller, uncompressed-to-uncompressed.
  EXPECT_LT(seq_blob.size() * 10, raw_logs.size());
}

// ---------------------------------------------------------------------------
// Parallel determinism: Build(executor) sessionizes (user, session) groups
// across worker threads but must return exactly the sessions the serial
// Build() produces, in the same order.

TEST(SessionizerTest, ParallelBuildMatchesSerial) {
  Sessionizer serial_szr;
  Sessionizer parallel_szr;
  // Many interleaved users/sessions, with ties and gap splits mixed in.
  for (int i = 0; i < 2500; ++i) {
    int64_t user = (i * 17) % 40;
    std::string sess = "s" + std::to_string((i * 5) % 3);
    TimeMs ts = kT0 + (i % 2 == 0 ? i : 2500 - i) * 45000;
    auto ev = MakeEvent(user, sess, ts, "e" + std::to_string(i % 11));
    serial_szr.Add(ev);
    parallel_szr.Add(ev);
  }
  auto serial = serial_szr.Build();
  for (int threads : {2, 8}) {
    exec::ExecOptions opts;
    opts.threads = threads;
    exec::Executor executor(opts);
    auto parallel = parallel_szr.Build(&executor);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (size_t s = 0; s < serial.size(); ++s) {
      EXPECT_EQ(parallel[s].user_id, serial[s].user_id) << "session " << s;
      EXPECT_EQ(parallel[s].session_id, serial[s].session_id);
      EXPECT_EQ(parallel[s].ip, serial[s].ip);
      EXPECT_EQ(parallel[s].start, serial[s].start);
      EXPECT_EQ(parallel[s].end, serial[s].end);
      EXPECT_EQ(parallel[s].event_names, serial[s].event_names);
    }
  }
}

}  // namespace
}  // namespace unilog::sessions
